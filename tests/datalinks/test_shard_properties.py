"""Seeded randomized property test for the sharded deployment.

The invariant: after *any* interleaving of link / unlink / commit / abort /
group-drain / shard-crash operations, once every transaction is resolved the
set of linked files on every DLFM exactly equals the DATALINK column
contents of the host database.

The test never models the expected state itself -- the host database and the
DLFM repositories are two independently-maintained views that two-phase
commit promises to keep identical, and the assertion compares them directly.
"""

import random

import pytest

from repro.datalinks.control_modes import ControlMode
from repro.datalinks.datalink_type import DatalinkOptions, datalink_column
from repro.datalinks.sharding import ShardedDataLinksDeployment, ShardRouter
from repro.datalinks.tokens import TokenType
from repro.errors import FencedNodeError, ReproError
from repro.storage.schema import Column, TableSchema
from repro.storage.values import DataType
from repro.util.urls import parse_url

TABLE = "sharded_docs"


def assert_agreement(deployment):
    """Every DLFM's linked files == the host's DATALINK column contents."""

    expected = {name: set() for name in deployment.shard_names}
    for row in deployment.host_db.select(TABLE, lock=False):
        url = row.get("body")
        if url:
            parsed = parse_url(url)
            expected[parsed.server].add(parsed.path)
    for name in deployment.shard_names:
        linked = deployment.linked_paths(name)
        assert linked == expected[name], (
            f"{name}: DLFM has {sorted(linked)}, host says "
            f"{sorted(expected[name])}")


class _Driver:
    """Random operation generator over a sharded deployment."""

    def __init__(self, seed: int, shards: int = 4, window: int = 3,
                 replication: bool = False):
        self.rng = random.Random(seed)
        self.deployment = ShardedDataLinksDeployment(
            shards, flush_policy="group", group_commit_window=window,
            replication=replication)
        self.deployment.create_table(TableSchema(TABLE, [
            Column("doc_id", DataType.INTEGER, nullable=False),
            datalink_column("body", DatalinkOptions(
                control_mode=ControlMode.RFF, recovery=False)),
        ], primary_key=("doc_id",)))
        self.session = self.deployment.session("prop", uid=4001)
        self.next_doc = 0
        self.open_txns = []          # [(host_txn, [doc_ids])]
        self.enqueued = []           # host txns sitting in the commit queue

    # ------------------------------------------------------------------ helpers --
    def _new_rows(self, count: int):
        rows = []
        for _ in range(count):
            doc_id = self.next_doc
            self.next_doc += 1
            path = f"/part{self.rng.randrange(10)}/doc{doc_id:05d}.dat"
            url = self.deployment.put_file(self.session, path,
                                           f"doc {doc_id}".encode())
            rows.append({"doc_id": doc_id, "body": url})
        return rows

    def _commit_via_queue(self, host_txn) -> None:
        drained = self.deployment.commit(host_txn)
        if drained is None:
            self.enqueued.append(host_txn)
        else:
            self.enqueued.clear()

    def settle(self) -> None:
        """Resolve every open transaction and drain the commit queue."""

        while self.open_txns:
            host_txn, _ = self.open_txns.pop()
            try:
                self.deployment.engine.commit(host_txn)
            except ReproError:
                self.deployment.abort(host_txn)
        try:
            self.deployment.drain()
        except ReproError:
            pass
        self.enqueued.clear()

    # --------------------------------------------------------------- operations --
    def op_insert_commit(self) -> None:
        host_txn = self.deployment.begin()
        rows = self._new_rows(self.rng.randint(1, 3))
        if self.rng.random() < 0.5:
            self.deployment.engine.insert_many(TABLE, rows, host_txn)
        else:
            for row in rows:
                self.deployment.engine.insert(TABLE, row, host_txn)
        self._commit_via_queue(host_txn)

    def op_open_txn(self) -> None:
        if len(self.open_txns) >= 2:
            return
        host_txn = self.deployment.begin()
        rows = self._new_rows(self.rng.randint(1, 2))
        self.deployment.engine.insert_many(TABLE, rows, host_txn)
        self.open_txns.append((host_txn, [row["doc_id"] for row in rows]))

    def op_finish_open(self) -> None:
        if not self.open_txns:
            return
        host_txn, _ = self.open_txns.pop(self.rng.randrange(len(self.open_txns)))
        if self.rng.random() < 0.6:
            try:
                self._commit_via_queue(host_txn)
            except ReproError:
                self.deployment.abort(host_txn)
        else:
            self.deployment.abort(host_txn)

    def op_delete(self) -> None:
        # Only rows not owned by an open transaction are fair game (their
        # locks are still held); skip entirely while a commit group is
        # enqueued, since those transactions also hold their locks.
        if self.enqueued:
            return
        held = {doc_id for _, ids in self.open_txns for doc_id in ids}
        candidates = [row["doc_id"]
                      for row in self.deployment.host_db.select(TABLE, lock=False)
                      if row["doc_id"] not in held]
        if not candidates:
            return
        victim = self.rng.choice(candidates)
        self.deployment.engine.delete(TABLE, {"doc_id": victim})

    def op_crash_recover_shard(self) -> None:
        shard = self.rng.choice(self.deployment.shard_names)
        self.deployment.crash_shard(shard)
        # Connection loss dooms everything in flight: enqueued groups fail
        # at prepare, open transactions abort.
        try:
            self.deployment.drain()
        except ReproError:
            pass
        self.enqueued.clear()
        while self.open_txns:
            host_txn, _ = self.open_txns.pop()
            try:
                self.deployment.abort(host_txn)
            except ReproError:
                pass
        self.deployment.recover_shard(shard)
        assert_agreement(self.deployment)

    def op_drain(self) -> None:
        self.deployment.drain()
        self.enqueued.clear()

    def step(self) -> None:
        operation = self.rng.choices(
            [self.op_insert_commit, self.op_open_txn, self.op_finish_open,
             self.op_delete, self.op_drain, self.op_crash_recover_shard],
            weights=[8, 3, 4, 4, 2, 1])[0]
        operation()


@pytest.mark.parametrize("seed", [7, 23, 1789, 40490])
def test_random_interleavings_preserve_host_dlfm_agreement(seed):
    driver = _Driver(seed)
    for step in range(80):
        driver.step()
        if step % 10 == 9:
            driver.settle()
            assert_agreement(driver.deployment)
    driver.settle()
    assert_agreement(driver.deployment)
    # the run actually linked a meaningful number of files
    total_linked = sum(len(driver.deployment.linked_paths(name))
                       for name in driver.deployment.shard_names)
    assert total_linked == len(driver.deployment.host_db.select(TABLE, lock=False))
    assert driver.next_doc > 40


def test_drain_failure_after_host_commit_redrives_participants():
    """A shard crash *after* the host commit must not roll the batch back:
    the host outcome is durable, so surviving shards get their commits
    re-driven and the crashed shard resolves its in-doubt branch on
    recovery -- agreement holds with the rows present."""

    deployment = ShardedDataLinksDeployment(4, group_commit_window=4)
    deployment.create_table(TableSchema(TABLE, [
        Column("doc_id", DataType.INTEGER, nullable=False),
        datalink_column("body", DatalinkOptions(
            control_mode=ControlMode.RFF, recovery=False)),
    ], primary_key=("doc_id",)))
    user = deployment.session("user", uid=4002)

    host_txn = deployment.begin()
    rows = []
    for doc_id in range(12):
        path = f"/zone{doc_id}/doc{doc_id}.dat"
        url = deployment.put_file(user, path, b"payload")
        rows.append({"doc_id": doc_id, "body": url})
    deployment.engine.insert_many(TABLE, rows, host_txn)
    enlisted = sorted(host_txn.servers)
    assert len(enlisted) >= 2
    victim = enlisted[0]  # sorted first => its commit_many fails first

    deployment.engine.failpoints["group:after_host_commit"] = \
        lambda: deployment.crash_shard(victim)
    deployment.commit(host_txn)
    with pytest.raises(ReproError):
        deployment.drain()
    deployment.engine.failpoints.clear()

    deployment.recover_shard(victim)
    assert_agreement(deployment)
    assert len(deployment.host_db.select(TABLE, lock=False)) == 12
    assert deployment.host_db.txn_outcome(host_txn.txn_id) == "committed"


class _ReplicatedDriver(_Driver):
    """The random driver over a deployment with witness replication.

    Adds failover cycles (crash primary -> promote witness -> verify the
    fenced ex-primary refuses a *valid* token -> fail back) and witness
    outages to the operation mix, and checks replica convergence: after
    every settle, each witness repository holds exactly the primary's (and
    therefore the host's) linked-file state.
    """

    def __init__(self, seed: int, shards: int = 2, window: int = 3):
        super().__init__(seed, shards, window, replication=True)
        self.fenced_validations = 0
        self.failovers = 0

    # ------------------------------------------------------------- operations --
    def _doom_in_flight(self) -> None:
        try:
            self.deployment.drain()
        except ReproError:
            pass
        self.enqueued.clear()
        while self.open_txns:
            host_txn, _ = self.open_txns.pop()
            try:
                self.deployment.abort(host_txn)
            except ReproError:
                pass

    def op_failover_cycle(self) -> None:
        deployment = self.deployment
        shard = self.rng.choice(deployment.shard_names)
        deployment.crash_shard(shard)
        self._doom_in_flight()
        deployment.fail_over(shard)
        self.failovers += 1

        # The witness now serves exactly what the host database says.
        assert_agreement(deployment)

        # Property: a fenced ex-primary never accepts a token, even a
        # cryptographically valid, unexpired one.
        deployment.recover_shard(shard)
        manager = deployment.shard(shard).dlfm
        rows = manager.repository.linked_files()
        if rows:
            row = self.rng.choice(rows)
            token = manager.generate_token(row["path"], TokenType.READ, ttl=1e9)
            with pytest.raises(FencedNodeError):
                manager.upcall_validate_token(row["ino"], token, 4001)
            self.fenced_validations += 1

        deployment.fail_back(shard)
        assert_agreement(deployment)

    def op_witness_outage(self) -> None:
        deployment = self.deployment
        shard = self.rng.choice(deployment.shard_names)
        if deployment.replicas[shard].failed_over:
            return
        deployment.crash_witness(shard)
        # the primary keeps serving and committing while the witness is down
        self.op_insert_commit()
        deployment.recover_witness(shard)

    def op_drain(self) -> None:
        try:
            self.deployment.drain()
        except ReproError:
            pass
        self.enqueued.clear()

    def step(self) -> None:
        operation = self.rng.choices(
            [self.op_insert_commit, self.op_open_txn, self.op_finish_open,
             self.op_delete, self.op_drain, self.op_failover_cycle,
             self.op_witness_outage],
            weights=[8, 3, 4, 4, 2, 2, 1])[0]
        operation()

    # ------------------------------------------------------------ convergence --
    def assert_convergence(self) -> None:
        """Primary and witness repositories hold identical link state."""

        deployment = self.deployment
        deployment.system.flush_logs()
        for name in deployment.shard_names:
            replica = deployment.replicas[name]
            primary_linked = deployment.linked_paths(name)
            witness_linked = {row["path"] for row in
                              replica.witness.dlfm.repository.linked_files()}
            assert witness_linked == primary_linked, (
                f"{name}: witness {sorted(witness_linked)} != "
                f"primary {sorted(primary_linked)}")
            assert replica.shipper.lag() == 0


@pytest.mark.parametrize("seed", [11, 5150])
def test_random_failovers_converge_primary_and_replica(seed):
    driver = _ReplicatedDriver(seed)
    for step in range(60):
        driver.step()
        if step % 12 == 11:
            driver.settle()
            assert_agreement(driver.deployment)
            driver.assert_convergence()
    driver.settle()
    assert_agreement(driver.deployment)
    driver.assert_convergence()
    # the run exercised what it claims to: real links, real failovers, and
    # at least one refused fenced validation
    assert driver.next_doc > 20
    assert driver.failovers > 0
    assert driver.fenced_validations > 0


def test_router_is_stable_and_prefix_local():
    router = ShardRouter([f"s{i}" for i in range(8)], prefix_depth=1)
    assert router.shard_of("/a/x.dat") == router.shard_of("/a/deep/y.dat")
    assert router.shard_of("/a/x.dat") == router.shard_of("/a/x.dat")
    spread = {router.shard_of(f"/dir{i}/f.dat") for i in range(64)}
    assert len(spread) >= 4  # 64 prefixes land on many of the 8 shards
