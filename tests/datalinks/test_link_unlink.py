"""Link/unlink semantics: constraints applied, transactionality, integrity."""

import pytest

from repro.datalinks.control_modes import ControlMode
from repro.datalinks.datalink_type import OnUnlink
from repro.errors import (
    DataLinksError,
    Errno,
    FileAlreadyLinkedError,
    FileSystemError,
    LinkConflictError,
    ReferentialIntegrityError,
)
from repro.fs.vfs import OpenFlags
from tests.conftest import FILES_TABLE, build_system


class TestLinkConstraints:
    def test_rfd_link_marks_file_read_only(self):
        system, alice, paths, _ = build_system(ControlMode.RFD)
        attrs = system.file_server("fs1").files.stat(paths[0])
        assert attrs.mode & 0o222 == 0              # write bits cleared
        assert attrs.uid == alice.cred.uid           # ownership unchanged

    def test_rdd_link_takes_over_ownership(self):
        system, _, paths, _ = build_system(ControlMode.RDD)
        server = system.file_server("fs1")
        attrs = server.files.stat(paths[0])
        assert attrs.uid == server.dbms_uid
        assert attrs.mode == 0o400

    def test_rff_link_leaves_file_untouched(self):
        system, alice, paths, _ = build_system(ControlMode.RFF)
        attrs = system.file_server("fs1").files.stat(paths[0])
        assert attrs.uid == alice.cred.uid
        assert attrs.mode & 0o200                   # still writable by owner

    def test_linking_missing_file_fails_and_aborts_insert(self):
        system, alice, _, _ = build_system(None)
        url = system.engine.make_url("fs1", "/library/ghost.dat")
        with pytest.raises(ReferentialIntegrityError):
            alice.insert(FILES_TABLE, {"doc_id": 7, "body": url,
                                       "body_size": 0, "body_mtime": 0.0})
        # the SQL insert was rolled back together with the failed link
        assert system.host_db.select(FILES_TABLE, {"doc_id": 7}) == []

    def test_double_link_rejected(self):
        system, alice, _, urls = build_system(ControlMode.RFD)
        with pytest.raises(FileAlreadyLinkedError):
            alice.insert(FILES_TABLE, {"doc_id": 50, "body": urls[0],
                                       "body_size": 0, "body_mtime": 0.0})

    def test_link_rollback_restores_permissions(self):
        system, alice, paths, _ = build_system(ControlMode.RFD, link=False)
        before = system.file_server("fs1").files.stat(paths[0])
        url = system.engine.make_url("fs1", paths[0])
        alice.begin()
        alice.insert(FILES_TABLE, {"doc_id": 0, "body": url,
                                   "body_size": 0, "body_mtime": 0.0})
        # while the transaction is open the constraints are already applied
        during = system.file_server("fs1").files.stat(paths[0])
        assert during.mode & 0o222 == 0
        alice.abort()
        after = system.file_server("fs1").files.stat(paths[0])
        assert after.mode == before.mode
        assert system.file_server("fs1").dlfm.repository.linked_file(paths[0]) is None

    def test_link_commit_schedules_initial_archive(self):
        system, _, paths, _ = build_system(ControlMode.RFD, recovery=True)
        dlfm = system.file_server("fs1").dlfm
        assert dlfm.repository.versions(paths[0]) != []

    def test_link_without_recovery_archives_nothing(self):
        system, _, paths, _ = build_system(ControlMode.RFD, recovery=False)
        dlfm = system.file_server("fs1").dlfm
        assert dlfm.repository.versions(paths[0]) == []
        assert not dlfm.has_pending_archives(paths[0])


class TestReferentialIntegrity:
    def test_remove_of_linked_file_rejected(self, rfd_system):
        system, alice, paths, _ = rfd_system
        with pytest.raises(FileSystemError) as info:
            alice.fs("fs1").unlink(paths[0])
        assert info.value.errno is Errno.EBUSY

    def test_rename_of_linked_file_rejected(self, rfd_system):
        system, alice, paths, _ = rfd_system
        with pytest.raises(FileSystemError) as info:
            alice.fs("fs1").rename(paths[0], "/library/renamed.dat")
        assert info.value.errno is Errno.EBUSY

    def test_unlinked_files_can_still_be_removed(self, rfd_system):
        system, alice, _, _ = rfd_system
        alice.fs("fs1").write_file("/library/scratch.txt", b"temporary")
        alice.fs("fs1").unlink("/library/scratch.txt")
        assert not alice.fs("fs1").exists("/library/scratch.txt")

    def test_nff_mode_does_not_guarantee_integrity(self):
        system, alice, paths, _ = build_system(ControlMode.NFF)
        # nff: no referential integrity, the file system may remove the file
        alice.fs("fs1").unlink(paths[0])
        assert not alice.fs("fs1").exists(paths[0])


class TestUnlink:
    def test_delete_row_unlinks_and_restores_ownership(self, rdd_system):
        system, alice, paths, _ = rdd_system
        alice.delete(FILES_TABLE, {"doc_id": 0})
        dlfm = system.file_server("fs1").dlfm
        assert dlfm.repository.linked_file(paths[0]) is None
        attrs = system.file_server("fs1").files.stat(paths[0])
        assert attrs.uid == alice.cred.uid
        # the owner can write to the file again
        alice.fs("fs1").write_file(paths[0], b"mine again", create=False)

    def test_unlink_with_delete_option_removes_file(self):
        system, alice, paths, _ = build_system(ControlMode.RFD,
                                               on_unlink=OnUnlink.DELETE)
        alice.delete(FILES_TABLE, {"doc_id": 0})
        assert not system.file_server("fs1").files.exists(paths[0])

    def test_unlink_rejected_while_file_open(self, rdd_system):
        system, alice, _, _ = rdd_system
        url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="read")
        fd = alice.open_url(url, OpenFlags.READ)
        with pytest.raises((LinkConflictError, DataLinksError)):
            alice.delete(FILES_TABLE, {"doc_id": 0})
        system.file_server("fs1").lfs.close(fd)
        # once closed, the unlink goes through
        assert alice.delete(FILES_TABLE, {"doc_id": 0}) == 1

    def test_unlink_rollback_keeps_file_linked(self, rfd_system):
        system, alice, paths, _ = rfd_system
        alice.begin()
        alice.delete(FILES_TABLE, {"doc_id": 0})
        alice.abort()
        assert system.file_server("fs1").dlfm.repository.linked_file(paths[0]) is not None
        # constraints still in force after the rollback
        with pytest.raises(FileSystemError):
            alice.fs("fs1").unlink(paths[0])

    def test_update_of_datalink_column_relinks(self, rfd_system):
        system, alice, paths, _ = rfd_system
        new_url = alice.put_file("fs1", "/library/replacement.dat", b"new file body")
        alice.update(FILES_TABLE, {"doc_id": 0}, {"body": new_url})
        dlfm = system.file_server("fs1").dlfm
        assert dlfm.repository.linked_file(paths[0]) is None
        assert dlfm.repository.linked_file("/library/replacement.dat") is not None

    def test_update_to_same_url_is_a_noop_for_linking(self, rfd_system):
        system, alice, paths, urls = rfd_system
        alice.update(FILES_TABLE, {"doc_id": 0}, {"body": urls[0], "title": "same"})
        assert system.file_server("fs1").dlfm.repository.linked_file(paths[0]) is not None
