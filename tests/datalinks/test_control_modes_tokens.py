"""Unit tests for control modes, DATALINK URLs/options and access tokens."""

import pytest

from repro.datalinks.control_modes import AccessControl, ControlMode
from repro.datalinks.datalink_type import (
    DatalinkOptions,
    OnUnlink,
    datalink_column,
    options_of_column,
)
from repro.datalinks.tokens import AccessToken, TokenManager, TokenType
from repro.errors import (
    ControlModeError,
    FileSystemError,
    InvalidTokenError,
    TokenExpiredError,
)
from repro.simclock import SimClock
from repro.storage.values import DataType
from repro.util.urls import (
    embed_token_in_name,
    format_url,
    parse_url,
    split_token_from_name,
)


class TestControlModes:
    def test_parse_from_string(self):
        assert ControlMode.from_string("RFD") is ControlMode.RFD
        with pytest.raises(ControlModeError):
            ControlMode.from_string("zzz")

    # This table mirrors Table 1 of the paper plus the two new modes.
    @pytest.mark.parametrize("mode, integrity, read_ctl, write_ctl", [
        (ControlMode.NFF, False, AccessControl.FILE_SYSTEM, AccessControl.FILE_SYSTEM),
        (ControlMode.RFF, True, AccessControl.FILE_SYSTEM, AccessControl.FILE_SYSTEM),
        (ControlMode.RFB, True, AccessControl.FILE_SYSTEM, AccessControl.BLOCKED),
        (ControlMode.RDB, True, AccessControl.DBMS, AccessControl.BLOCKED),
        (ControlMode.RFD, True, AccessControl.FILE_SYSTEM, AccessControl.DBMS),
        (ControlMode.RDD, True, AccessControl.DBMS, AccessControl.DBMS),
    ])
    def test_attribute_decomposition(self, mode, integrity, read_ctl, write_ctl):
        assert mode.referential_integrity is integrity
        assert mode.read_control is read_ctl
        assert mode.write_control is write_ctl

    def test_full_control_modes(self):
        assert {m for m in ControlMode if m.full_control} == \
            {ControlMode.RDB, ControlMode.RDD}

    def test_update_modes_are_the_papers_new_ones(self):
        assert {m for m in ControlMode if m.supports_update} == \
            {ControlMode.RFD, ControlMode.RDD}

    def test_token_requirements(self):
        assert ControlMode.RDD.requires_read_token
        assert ControlMode.RDB.requires_read_token
        assert not ControlMode.RFD.requires_read_token
        assert ControlMode.RFD.requires_write_token
        assert not ControlMode.RFB.requires_write_token

    def test_read_write_serialization_only_under_full_control(self):
        assert ControlMode.RDD.reads_serialized_with_writes
        assert not ControlMode.RFD.reads_serialized_with_writes


class TestDatalinkURLs:
    def test_parse_and_render_roundtrip(self):
        url = parse_url("dlfs://fs1/movies/clip.mpg")
        assert url.server == "fs1"
        assert url.path == "/movies/clip.mpg"
        assert url.filename == "clip.mpg"
        assert url.directory == "/movies"
        assert url.render() == "dlfs://fs1/movies/clip.mpg"

    def test_token_embedding(self):
        url = parse_url("dlfs://fs1/a/b.txt").with_token("R-1-abc")
        assert url.render() == "dlfs://fs1/a/b.txt;token=R-1-abc"
        parsed = parse_url(url.render())
        assert parsed.token == "R-1-abc"
        assert parsed.path == "/a/b.txt"

    def test_format_url_normalizes_leading_slash(self):
        assert format_url("srv", "x/y.txt") == "dlfs://srv/x/y.txt"

    @pytest.mark.parametrize("bad", ["no-scheme", "dlfs://", "dlfs://serveronly"])
    def test_malformed_urls_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_url(bad)

    def test_name_token_split_and_embed(self):
        assert split_token_from_name("f.txt;token=abc") == ("f.txt", "abc")
        assert split_token_from_name("f.txt") == ("f.txt", None)
        assert embed_token_in_name("f.txt", "abc") == "f.txt;token=abc"
        assert embed_token_in_name("f.txt", None) == "f.txt"


class TestDatalinkOptions:
    def test_roundtrip_through_column_options(self):
        options = DatalinkOptions(control_mode=ControlMode.RDD, recovery=False,
                                  on_unlink=OnUnlink.DELETE, token_ttl=5.0)
        column = datalink_column("clip", options, nullable=False)
        assert column.dtype is DataType.DATALINK
        assert not column.nullable
        recovered = options_of_column(column)
        assert recovered == options

    def test_defaults(self):
        column = datalink_column("clip")
        options = options_of_column(column)
        assert options.control_mode is ControlMode.RFF
        assert options.recovery is True
        assert options.on_unlink is OnUnlink.RESTORE


class TestTokens:
    def test_generate_validate_roundtrip(self):
        clock = SimClock()
        manager = TokenManager("secret", clock)
        token = manager.generate("/a/b.txt", TokenType.WRITE)
        parsed = manager.validate(token, "/a/b.txt")
        assert parsed.token_type is TokenType.WRITE

    def test_token_bound_to_path(self):
        manager = TokenManager("secret", SimClock())
        token = manager.generate("/a/b.txt", TokenType.READ)
        with pytest.raises(InvalidTokenError):
            manager.validate(token, "/a/OTHER.txt")

    def test_token_expires(self):
        clock = SimClock()
        manager = TokenManager("secret", clock, default_ttl=1.0)
        token = manager.generate("/f", TokenType.READ)
        clock.advance(2.0)
        with pytest.raises(TokenExpiredError):
            manager.validate(token, "/f")

    def test_tampered_token_rejected(self):
        manager = TokenManager("secret", SimClock())
        token = manager.generate("/f", TokenType.READ)
        tampered = token.replace("R-", "W-")
        with pytest.raises(InvalidTokenError):
            manager.validate(tampered, "/f")

    def test_different_secrets_do_not_validate(self):
        clock = SimClock()
        token = TokenManager("secret-a", clock).generate("/f", TokenType.READ)
        with pytest.raises(InvalidTokenError):
            TokenManager("secret-b", clock).validate(token, "/f")

    def test_malformed_token_text(self):
        with pytest.raises(InvalidTokenError):
            AccessToken.parse("garbage")
        with pytest.raises(InvalidTokenError):
            AccessToken.parse("X-notanumber-sig")

    def test_write_token_subsumes_read(self):
        assert TokenType.WRITE.allows_read and TokenType.WRITE.allows_write
        assert TokenType.READ.allows_read and not TokenType.READ.allows_write

    def test_generation_charges_clock(self):
        clock = SimClock()
        manager = TokenManager("s", clock)
        manager.generate("/f", TokenType.READ)
        assert clock.stats.count("token_generate") == 1


class TestTokenExpiryEdges:
    """TTL boundary semantics under :class:`SimClock`.

    A token is valid up to and *including* its expiry instant (the paper's
    "valid till time t"); one simulated instant later it is rejected, and
    the DLFM's token registry applies the same closed-interval rule.
    """

    def test_token_valid_at_exact_ttl_boundary(self):
        # A zero-cost model keeps validation from advancing the clock, so
        # the boundary instant can be hit exactly.
        from repro.simclock import CostModel

        clock = SimClock(CostModel().scaled(0.0))
        manager = TokenManager("secret", clock, default_ttl=5.0)
        token = manager.generate("/f", TokenType.READ)
        clock.advance(5.0)  # now == expires_at exactly
        parsed = manager.validate(token, "/f")
        assert parsed.expires_at == pytest.approx(clock.now())
        clock.advance(1e-9)
        with pytest.raises(TokenExpiredError):
            manager.validate(token, "/f")

    def test_token_reusable_while_live_but_dead_after_expiry(self):
        clock = SimClock()
        manager = TokenManager("secret", clock, default_ttl=2.0)
        token = manager.generate("/f", TokenType.WRITE)
        # tokens are capabilities, not nonces: reuse before expiry is fine
        manager.validate(token, "/f")
        manager.validate(token, "/f")
        clock.advance(3.0)
        with pytest.raises(TokenExpiredError):
            manager.validate(token, "/f")

    def test_registry_entry_boundary_matches_token_boundary(self):
        from repro.datalinks.dlfm.repository import DLFMRepository
        from repro.storage.database import Database

        repository = DLFMRepository(Database("dlfm-test"))
        repository.add_token_entry("/f", 1001, "R", expires_at=5.0)
        assert repository.find_token_entry("/f", 1001, for_write=False,
                                           now=5.0) is not None
        assert repository.find_token_entry("/f", 1001, for_write=False,
                                           now=5.0 + 1e-9) is None
        # housekeeping purges only strictly-expired entries
        assert repository.purge_expired_tokens(now=5.0) == 0
        assert repository.purge_expired_tokens(now=5.0 + 1e-9) == 1

    def test_clock_shared_across_shards_expires_tokens_everywhere(self):
        """One SimClock drives every shard: tokens minted against files on
        different shards all die when the shared clock passes their TTL."""

        from repro.datalinks.datalink_type import DatalinkOptions, datalink_column
        from repro.datalinks.sharding import ShardedDataLinksDeployment
        from repro.storage.schema import Column, TableSchema

        deployment = ShardedDataLinksDeployment(
            4, flush_policy="immediate", group_commit_window=1)
        deployment.create_table(TableSchema("vault", [
            Column("doc_id", DataType.INTEGER, nullable=False),
            datalink_column("body", DatalinkOptions(
                control_mode=ControlMode.RDB, token_ttl=1000.0)),
        ], primary_key=("doc_id",)))
        user = deployment.session("user", uid=1001)
        paths = [f"/area{letter}/doc.dat" for letter in "ABCDEF"]
        assert len({deployment.shard_of(path) for path in paths}) >= 2
        for doc_id, path in enumerate(paths):
            url = deployment.put_file(user, path, b"secret")
            user.insert("vault", {"doc_id": doc_id, "body": url})

        urls = [user.get_datalink("vault", {"doc_id": doc_id}, "body",
                                  access="read", ttl=1000.0)
                for doc_id in range(len(paths))]
        for url in urls:
            assert user.read_url(url) == b"secret"

        # The DLFS layer surfaces the expired token as EACCES at the
        # file-system boundary, with the DLFM's expiry detail chained.
        deployment.clock.advance(2000.0)
        for url in urls:
            with pytest.raises(FileSystemError, match="expired"):
                user.read_url(url)

        # a token minted after the advance is valid again on every shard
        fresh = user.get_datalink("vault", {"doc_id": 0}, "body",
                                  access="read", ttl=1000.0)
        assert user.read_url(fresh) == b"secret"


class TestTokenCache:
    """The host-side token cache (read-caching roadmap, first slice)."""

    def _cache(self, default_ttl=60.0):
        from repro.datalinks.tokens import TokenCache, TokenManager

        clock = SimClock()
        manager = TokenManager("secret", clock, default_ttl=default_ttl)
        return TokenCache(clock), manager, clock

    def test_hit_skips_generation_and_returns_same_token(self):
        cache, manager, clock = self._cache()
        token = manager.generate("/f", TokenType.READ, 60.0)
        cache.store("fs1", "/f", TokenType.READ, 60.0, token)
        generated_before = clock.stats.count("token_generate")
        assert cache.lookup("fs1", "/f", TokenType.READ, 60.0) == token
        assert clock.stats.count("token_generate") == generated_before
        assert cache.stats()["hits"] == 1

    def test_stale_entry_missed_and_dropped(self):
        cache, manager, clock = self._cache()
        token = manager.generate("/f", TokenType.READ, 1.0)
        cache.store("fs1", "/f", TokenType.READ, 1.0, token)
        clock.advance(0.9)   # 0.1 s of life left < 0.5 * 1.0
        assert cache.lookup("fs1", "/f", TokenType.READ, 1.0) is None
        assert cache.stats() == {"hits": 0, "misses": 1, "entries": 0,
                                 "hit_rate": 0.0, "evictions": 1,
                                 "max_entries": cache.max_entries}

    def test_short_ttl_request_never_gets_long_lived_token(self):
        """A caller asking for a short-lived capability must not receive a
        cached token that outlives the requested TTL (TTL is in the key)."""

        cache, manager, clock = self._cache()
        long_lived = manager.generate("/f", TokenType.READ, 10_000.0)
        cache.store("fs1", "/f", TokenType.READ, 10_000.0, long_lived)
        assert cache.lookup("fs1", "/f", TokenType.READ, 60.0) is None
        # the long-lived entry stays cached for callers that do want it
        assert cache.lookup("fs1", "/f", TokenType.READ, 10_000.0) == long_lived

    def test_mixed_ttl_callers_do_not_thrash_each_other(self):
        """Each requested-TTL class caches independently: alternating long
        and short requests both hit after their first miss."""

        cache, manager, clock = self._cache()
        long_lived = manager.generate("/f", TokenType.READ, 10_000.0)
        short_lived = manager.generate("/f", TokenType.READ, 60.0)
        cache.store("fs1", "/f", TokenType.READ, 10_000.0, long_lived)
        cache.store("fs1", "/f", TokenType.READ, 60.0, short_lived)
        for _ in range(3):
            assert cache.lookup("fs1", "/f", TokenType.READ,
                                10_000.0) == long_lived
            assert cache.lookup("fs1", "/f", TokenType.READ,
                                60.0) == short_lived
        assert cache.stats()["hits"] == 6 and cache.stats()["misses"] == 0

    def test_engine_cache_respects_requested_ttl(self):
        from tests.conftest import FILES_TABLE, build_system

        system, alice, _, _ = build_system(ControlMode.RDB)
        system.engine.enable_token_cache()
        long_url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body",
                                      access="read", ttl=10_000.0)
        short_url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body",
                                       access="read", ttl=60.0)
        assert short_url != long_url   # fresh short-lived token generated
        # and a repeat of the short request now hits
        assert alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body",
                                  access="read", ttl=60.0) == short_url
