"""Seeded property test for epoched placement and online rebalancing.

Across random interleavings of links, reads, prefix rebalances, serving-node
crashes, failovers, recoveries and fail-backs, the placement invariants must
hold after every step:

1. **Exactly one writable owner per prefix per epoch** -- the placement map
   names one owning shard for every prefix ever linked under, the router
   resolves writes there, and every *other* shard's placement guard refuses
   a write for that prefix with
   :class:`~repro.errors.PlacementEpochError` (naming the owner -- the
   redirect), no matter how many moves and failovers have interleaved;
2. **No committed link is ever orphaned** -- every committed DATALINK row's
   path has a ``linked_files`` row on its current owner's serving
   repository (whenever that node is up to be asked), across any sequence
   of moves;
3. **Stale-epoch requests are always redirected, never applied** -- a link
   sent through a connection stamped with an old placement epoch is
   refused at the daemon boundary: no repository row appears, no branch is
   created, and the error names the current epoch;
4. **The placement epoch is monotone** -- it never decreases, and it bumps
   exactly when a move commits.

Like the routing property test, this never models expected state on its
own: it replays the map, the router and the DLFM guards against each other
and asserts they agree.
"""

import random

import pytest

from repro.datalinks.control_modes import ControlMode
from repro.datalinks.datalink_type import DatalinkOptions, datalink_column
from repro.datalinks.dlfm.daemons import DLFMConnection
from repro.datalinks.sharding import ShardedDataLinksDeployment
from repro.errors import PlacementEpochError, PlacementError, ReproError
from repro.storage.schema import Column, TableSchema
from repro.storage.values import DataType
from repro.util.urls import parse_url

TABLE = "placed_docs"


def known_prefixes(deployment, urls) -> set:
    prefixes = {deployment.router.prefix_of(parse_url(url).path)
                for url in urls}
    prefixes.update(deployment.router.placement.overrides)
    return prefixes


def assert_placement_invariants(deployment, urls, last_epoch: int) -> int:
    router = deployment.router
    pmap = router.placement

    # -- invariant 4: the epoch is monotone ------------------------------------
    assert pmap.epoch >= last_epoch
    assert not pmap.moving          # no hand-off leaks past its call

    for prefix in known_prefixes(deployment, urls):
        probe = f"{prefix}/__placement_probe__"
        owner = pmap.shard_of(probe)
        assert owner in deployment.shard_names

        # -- invariant 1: exactly one shard accepts writes for the prefix ------
        accepting = []
        for shard in deployment.shard_names:
            replica = deployment.replicas[shard]
            node = replica.serving
            if not node.running:
                continue
            try:
                node.dlfm.check_placement(probe)
                accepting.append(shard)
            except PlacementEpochError as error:
                assert error.owner == owner      # the redirect names the owner
                assert error.epoch == pmap.epoch
        assert accepting in ([owner], []), (
            f"prefix {prefix!r}: owner {owner!r} but "
            f"{accepting} accept writes at epoch {pmap.epoch}")

    # -- invariant 2: no committed link is orphaned ----------------------------
    for url in urls:
        parsed = parse_url(url)
        owner = router.owner_shard(parsed.server, parsed.path)
        replica = deployment.replicas[owner]
        if not replica.serving.running:
            continue
        row = replica.serving.dlfm.repository.linked_file(parsed.path)
        assert row is not None, (
            f"committed link {parsed.path!r} orphaned: owner {owner!r} "
            f"(epoch {pmap.epoch}) has no repository row")

    return pmap.epoch


class _PlacementDriver:
    """Random link/read/move/crash interleavings with invariants after each."""

    def __init__(self, seed: int, shards: int = 3, witnesses: int = 1):
        self.rng = random.Random(seed)
        # Immediate flush: links become durable (and ship) at commit, so
        # repository state settles step by step -- the driver probes
        # placement transitions, not group-commit windows.
        self.deployment = ShardedDataLinksDeployment(
            shards, replication=True, witnesses=witnesses,
            flush_policy="immediate", group_commit_window=1)
        self.deployment.create_table(TableSchema(TABLE, [
            Column("doc_id", DataType.INTEGER, nullable=False),
            datalink_column("body", DatalinkOptions(
                control_mode=ControlMode.RDB, recovery=False)),
        ], primary_key=("doc_id",)))
        self.session = self.deployment.session("placer", uid=5001)
        self.urls: list[str] = []
        self.next_doc = 0
        self.last_epoch = 1
        self.rebalances = 0
        self.stale_rejections = 0

    # --------------------------------------------------------------- operations --
    def _shard(self) -> str:
        return self.rng.choice(self.deployment.shard_names)

    def op_link(self) -> None:
        doc_id = self.next_doc
        self.next_doc += 1
        path = f"/area{self.rng.randrange(6)}/doc{doc_id:05d}.dat"
        try:
            url = self.deployment.put_file(self.session, path,
                                           f"doc {doc_id}".encode())
            self.session.insert(TABLE, {"doc_id": doc_id, "body": url})
        except ReproError:
            return      # owner down or mid-anything: write unavailable
        self.urls.append(url)

    def op_read(self) -> None:
        if not self.urls:
            return
        doc_id = self.rng.randrange(len(self.urls))
        try:
            tokenized = self.session.get_datalink(
                TABLE, {"doc_id": doc_id}, "body", access="read", ttl=1e9)
            if tokenized is not None:
                assert self.deployment.read_url(self.session, tokenized) \
                    == f"doc {doc_id}".encode()
        except ReproError:
            pass        # no read-eligible node right now

    def op_rebalance(self) -> None:
        prefixes = sorted(known_prefixes(self.deployment, self.urls))
        if not prefixes:
            return
        prefix = self.rng.choice(prefixes)
        dest = self._shard()
        try:
            summary = self.deployment.rebalance_prefix(prefix, dest)
        except (PlacementError, ReproError):
            return      # same shard, node down, in-flight opens: legitimate
        assert summary["moved"]
        self.rebalances += 1

    def op_crash_serving(self) -> None:
        shard = self._shard()
        replica = self.deployment.replicas[shard]
        serving = replica.serving_name
        if not replica.nodes[serving].running:
            return
        if serving == replica.home_primary:
            self.deployment.crash_shard(shard)
        else:
            self.deployment.crash_witness(shard, serving)

    def op_fail_over(self) -> None:
        shard = self._shard()
        if self.deployment.replicas[shard].serving.running:
            return
        try:
            self.deployment.fail_over(shard)
        except ReproError:
            pass

    def op_recover(self) -> None:
        shard = self._shard()
        replica = self.deployment.replicas[shard]
        downed = [name for name, node in replica.nodes.items()
                  if not node.running]
        if not downed:
            return
        name = self.rng.choice(downed)
        if name == replica.home_primary:
            self.deployment.recover_shard(shard)
        else:
            self.deployment.recover_witness(shard, name)

    def op_fail_back(self) -> None:
        shard = self._shard()
        replica = self.deployment.replicas[shard]
        if not replica.failed_over or not replica.serving.running:
            return
        if not replica.primary.running:
            self.deployment.recover_shard(shard)
        try:
            self.deployment.fail_back(shard)
        except ReproError:
            pass

    def op_probe_stale(self) -> None:
        """A link stamped with an old epoch is redirected, never applied."""

        pmap = self.deployment.router.placement
        if pmap.epoch <= 1:
            return
        shard = self._shard()
        replica = self.deployment.replicas[shard]
        node = replica.serving
        if not node.running:
            return
        holder = {"epoch": pmap.epoch}
        connection = DLFMConnection(node.main_daemon, None,
                                    client_name="stale-probe",
                                    epoch_provider=lambda: holder["epoch"])
        holder["epoch"] = pmap.epoch - 1
        repo = node.dlfm.repository
        rows_before = len(repo.linked_files())
        probe_txn = 10_000_000 + self.next_doc
        with pytest.raises(PlacementEpochError) as excinfo:
            connection.link_file(
                probe_txn, "/stale/probe.dat",
                DatalinkOptions(control_mode=ControlMode.RFF, recovery=False))
        assert excinfo.value.epoch == pmap.epoch
        assert len(repo.linked_files()) == rows_before
        assert not node.dlfm.has_branch(probe_txn)
        self.stale_rejections += 1

    def step(self) -> None:
        operation = self.rng.choices(
            [self.op_link, self.op_read, self.op_rebalance,
             self.op_crash_serving, self.op_fail_over, self.op_recover,
             self.op_fail_back, self.op_probe_stale],
            weights=[6, 5, 4, 2, 3, 3, 2, 3])[0]
        operation()
        self.last_epoch = assert_placement_invariants(
            self.deployment, self.urls, self.last_epoch)


@pytest.mark.parametrize("seed", [7, 1989, 52064])
def test_random_rebalance_interleavings_preserve_placement_invariants(seed):
    driver = _PlacementDriver(seed)
    for _ in range(100):
        driver.step()
    # the run exercised what it claims to
    assert driver.next_doc > 10
    assert driver.rebalances > 0
    assert driver.stale_rejections > 0
    assert driver.last_epoch == 1 + driver.rebalances


def test_stale_epoch_rejected_even_when_the_map_would_agree():
    """The envelope check alone refuses a stale sender, without any move
    of the probed prefix -- staleness is a property of the map version,
    not of which prefix the request touches."""

    deployment = ShardedDataLinksDeployment(2, replication=True,
                                            flush_policy="immediate",
                                            group_commit_window=1)
    deployment.create_table(TableSchema(TABLE, [
        Column("doc_id", DataType.INTEGER, nullable=False),
        datalink_column("body", DatalinkOptions(
            control_mode=ControlMode.RFF, recovery=False)),
    ], primary_key=("doc_id",)))
    session = deployment.session("stale", uid=5002)
    url = deployment.put_file(session, "/m0/doc.dat", b"m0")
    session.insert(TABLE, {"doc_id": 0, "body": url})
    moved = deployment.router.prefix_of("/m0/doc.dat")
    dest = next(name for name in deployment.shard_names
                if name != deployment.shard_of("/m0/doc.dat"))
    deployment.rebalance_prefix(moved, dest)

    # Probe a *different* prefix on its rightful owner with a stale epoch:
    # the path-level guard would pass, the envelope gate must still refuse.
    other_path = next(f"/other{i}/doc.dat" for i in range(64)
                      if deployment.router.prefix_of(f"/other{i}/doc.dat")
                      != moved)
    owner = deployment.shard_of(other_path)
    node = deployment.replicas[owner].serving
    holder = {"epoch": deployment.router.placement.epoch}
    connection = DLFMConnection(node.main_daemon, None,
                                client_name="stale-probe",
                                epoch_provider=lambda: holder["epoch"])
    holder["epoch"] = 1
    with pytest.raises(PlacementEpochError):
        connection.link_file(
            9_999_999, other_path,
            DatalinkOptions(control_mode=ControlMode.RFF, recovery=False))
    assert not node.dlfm.has_branch(9_999_999)
