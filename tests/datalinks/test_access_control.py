"""Access-control tests: tokens, control modes and the open-time checks."""

import pytest

from repro.datalinks.control_modes import ControlMode
from repro.errors import ControlModeError, Errno, FileSystemError
from repro.fs.vfs import OpenFlags
from tests.conftest import BOB_UID, FILES_TABLE, build_system


class TestReadAccess:
    def test_rfd_read_needs_no_token(self, rfd_system):
        system, alice, paths, _ = rfd_system
        data = alice.fs("fs1").read_file(paths[0])
        assert len(data) == 4096

    def test_rdd_read_without_token_denied(self, rdd_system):
        system, alice, paths, _ = rdd_system
        with pytest.raises(FileSystemError) as info:
            alice.fs("fs1").read_file(paths[0])
        assert info.value.errno is Errno.EACCES

    def test_rdd_read_with_token_allowed(self, rdd_system):
        system, alice, _, _ = rdd_system
        url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="read")
        assert ";token=" in url
        assert len(alice.read_url(url)) == 4096

    def test_rdb_read_with_token_allowed_but_write_blocked(self, rdb_system):
        system, alice, _, _ = rdb_system
        url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="read")
        assert len(alice.read_url(url)) == 4096
        with pytest.raises(ControlModeError):
            alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")

    def test_read_token_of_another_user_does_not_help(self, rdd_system):
        """Token entries are keyed by user id (Section 4.1)."""

        system, alice, paths, _ = rdd_system
        bob = system.session("bob", uid=BOB_UID)
        alice_url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="read")
        # Alice's lookup registers *her* token entry; Bob opening with the
        # same tokenized name registers an entry for Bob (the token itself is
        # not user-bound), so both users can read -- but Bob cannot reuse
        # Alice's *entry* without presenting the token: a bare open fails.
        with pytest.raises(FileSystemError):
            bob.fs("fs1").read_file(paths[0])
        assert len(bob.read_url(alice_url)) == 4096

    def test_rff_read_goes_through_plain_file_system(self):
        system, alice, paths, _ = build_system(ControlMode.RFF)
        # upcalls charge the file server's clock domain; count cluster-wide
        before = system.clocks.stats.count("upcall_round_trip")
        alice.fs("fs1").read_file(paths[0])
        assert system.clocks.stats.count("upcall_round_trip") == before


class TestWriteAccess:
    def test_write_without_token_denied_in_every_update_mode(self):
        for mode in (ControlMode.RFD, ControlMode.RDD):
            system, alice, paths, _ = build_system(mode)
            with pytest.raises(FileSystemError) as info:
                alice.fs("fs1").write_file(paths[0], b"overwrite", create=False)
            assert info.value.errno is Errno.EACCES

    def test_write_blocked_modes_cannot_get_write_tokens(self):
        for mode in (ControlMode.RFB, ControlMode.RDB):
            system, alice, _, _ = build_system(mode)
            with pytest.raises(ControlModeError):
                alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")

    def test_rfb_file_is_read_only_for_everyone(self):
        system, alice, paths, _ = build_system(ControlMode.RFB)
        with pytest.raises(FileSystemError):
            alice.fs("fs1").write_file(paths[0], b"x", create=False)
        assert len(alice.fs("fs1").read_file(paths[0])) == 4096

    def test_read_token_cannot_be_used_for_write(self, rdd_system):
        """The token type must match the open mode (Section 4.1)."""

        system, alice, _, _ = rdd_system
        read_url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="read")
        with pytest.raises(FileSystemError) as info:
            alice.open_url(read_url, OpenFlags.READ | OpenFlags.WRITE)
        assert info.value.errno is Errno.EACCES

    def test_write_token_allows_update(self, rfd_system):
        system, alice, paths, _ = rfd_system
        url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")
        with alice.update_file(url, truncate=True) as update:
            update.replace(b"new content")
        assert alice.fs("fs1").read_file(paths[0]) == b"new content"

    def test_expired_write_token_rejected(self, rfd_system):
        system, alice, _, _ = rfd_system
        url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body",
                                 access="write", ttl=0.5)
        system.clock.advance(2.0)
        with pytest.raises(FileSystemError) as info:
            alice.update_file(url).begin()
        assert info.value.errno is Errno.EACCES

    def test_forged_token_rejected(self, rfd_system):
        system, alice, _, _ = rfd_system
        url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")
        forged = url.replace(";token=W-", ";token=W-9")
        with pytest.raises(FileSystemError):
            alice.update_file(forged).begin()

    def test_token_for_one_file_does_not_open_another(self):
        system, alice, paths, _ = build_system(ControlMode.RFD, files=2)
        url0 = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")
        token = url0.rsplit(";token=", 1)[1]
        with pytest.raises(FileSystemError):
            alice.fs("fs1").open(f"{paths[1]};token={token}",
                                 OpenFlags.READ | OpenFlags.WRITE)

    def test_unlinked_file_with_token_suffix_opens_normally(self):
        system, alice, _, _ = build_system(None)
        alice.fs("fs1").write_file("/library/free.txt", b"not linked")
        data = alice.fs("fs1").read_file("/library/free.txt;token=R-1.0-bogus")
        assert data == b"not linked"


class TestTokenHandout:
    def test_get_datalink_returns_none_for_missing_row(self, rfd_system):
        _, alice, _, _ = rfd_system
        assert alice.get_datalink(FILES_TABLE, {"doc_id": 99}, "body") is None

    def test_get_datalink_requires_datalink_column(self, rfd_system):
        _, alice, _, _ = rfd_system
        with pytest.raises(ControlModeError):
            alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "title")

    def test_read_of_fs_controlled_mode_gets_no_token(self):
        system, alice, _, _ = build_system(ControlMode.RFF)
        url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="read")
        assert ";token=" not in url

    def test_unknown_access_kind_rejected(self, rfd_system):
        _, alice, _, _ = rfd_system
        with pytest.raises(ControlModeError):
            alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="execute")
