"""File-server crash recovery and coordinated backup/restore."""

import pytest

from repro.datalinks.control_modes import ControlMode
from repro.errors import FileSystemError
from tests.conftest import FILES_TABLE, build_system


def _update(system, session, doc_id, content, archive=True):
    url = session.get_datalink(FILES_TABLE, {"doc_id": doc_id}, "body", access="write")
    with session.update_file(url, truncate=True) as update:
        update.replace(content)
    if archive:
        system.run_archiver()


class TestCrashRecovery:
    def test_in_flight_update_rolled_back_on_recovery(self, rfd_system):
        system, alice, paths, _ = rfd_system
        before = system.file_server("fs1").files.read(paths[0])
        url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")
        update = alice.update_file(url, truncate=True)
        update.begin()
        update.write(b"doomed")
        system.crash_file_server("fs1")
        summary = system.recover_file_server("fs1")
        assert paths[0] in summary["rolled_back_updates"]
        assert system.file_server("fs1").files.read(paths[0]) == before

    def test_committed_update_survives_crash_before_archiving(self, rfd_system):
        system, alice, paths, _ = rfd_system
        _update(system, alice, 0, b"committed content", archive=False)
        system.crash_file_server("fs1")
        system.recover_file_server("fs1")
        assert system.file_server("fs1").files.read(paths[0]) == b"committed content"
        # the pending archive job survived the crash and can still run
        assert system.run_archiver() >= 1

    def test_recovery_clears_sync_entries_and_allows_new_updates(self, rfd_system):
        system, alice, paths, _ = rfd_system
        url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")
        update = alice.update_file(url, truncate=True)
        update.begin()
        system.crash_file_server("fs1")
        system.recover_file_server("fs1")
        dlfm = system.file_server("fs1").dlfm
        assert dlfm.repository.sync_entries(paths[0]) == []
        assert dlfm.repository.all_tracking() == []
        # the writer slot is free again
        url2 = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")
        with alice.update_file(url2, truncate=True) as retry:
            retry.replace(b"after recovery")

    def test_rfd_takeover_released_by_recovery(self, rfd_system):
        system, alice, paths, _ = rfd_system
        url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")
        update = alice.update_file(url)
        update.begin()
        system.crash_file_server("fs1")
        system.recover_file_server("fs1")
        attrs = system.file_server("fs1").files.stat(paths[0])
        assert attrs.uid == alice.cred.uid
        assert attrs.mode & 0o222 == 0

    def test_upcalls_rejected_while_file_server_down(self, rdd_system):
        system, alice, _, _ = rdd_system
        system.crash_file_server("fs1")
        url_ok = False
        try:
            url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="read")
            alice.read_url(url)
            url_ok = True
        except (FileSystemError, Exception):
            pass
        assert not url_ok
        system.recover_file_server("fs1")

    def test_link_state_survives_crash(self, rfd_system):
        system, alice, paths, _ = rfd_system
        system.crash_file_server("fs1")
        system.recover_file_server("fs1")
        dlfm = system.file_server("fs1").dlfm
        row = dlfm.repository.linked_file(paths[0])
        assert row is not None and row["control_mode"] == "rfd"
        # integrity still enforced after recovery
        with pytest.raises(FileSystemError):
            alice.fs("fs1").unlink(paths[0])


class TestCoordinatedBackupRestore:
    def test_restore_brings_metadata_and_content_back_in_sync(self, rfd_system):
        system, alice, paths, _ = rfd_system
        original = system.file_server("fs1").files.read(paths[0])
        backup = system.backup("baseline")
        _update(system, alice, 0, b"post-backup content " * 10)
        restored = system.restore(backup)
        assert paths[0] in restored["fs1"]
        assert system.file_server("fs1").files.read(paths[0]) == original
        row = system.host_db.select_one(FILES_TABLE, {"doc_id": 0}, lock=False)
        assert row["body_size"] == len(original)

    def test_point_in_time_restore_selects_version_by_state_id(self, rfd_system):
        system, alice, paths, _ = rfd_system
        contents = {}
        backups = {}
        for version in (1, 2, 3):
            content = f"version {version}".encode() * 100
            _update(system, alice, 0, content)
            contents[version] = content
            backups[version] = system.backup(f"v{version}")
        for version in (2, 1, 3):
            system.restore(backups[version])
            assert system.file_server("fs1").files.read(paths[0]) == contents[version]

    def test_restore_covers_multiple_files_and_servers(self):
        system, alice, paths, _ = build_system(ControlMode.RFD, files=3)
        system.add_file_server("fs2")
        extra_url = alice.put_file("fs2", "/other/file.bin", b"fs2 original")
        alice.insert(FILES_TABLE, {"doc_id": 10, "body": extra_url,
                                   "body_size": 12, "body_mtime": 0.0})
        system.run_archiver()
        backup = system.backup("two-servers")
        _update(system, alice, 1, b"changed on fs1")
        url = alice.get_datalink(FILES_TABLE, {"doc_id": 10}, "body", access="write")
        with alice.update_file(url, truncate=True) as update:
            update.replace(b"changed on fs2")
        system.run_archiver()
        restored = system.restore(backup)
        assert paths[1] in restored["fs1"]
        assert "/other/file.bin" in restored["fs2"]
        assert system.file_server("fs2").files.read("/other/file.bin") == b"fs2 original"

    def test_rows_inserted_after_backup_disappear_on_restore(self, rfd_system):
        system, alice, _, _ = rfd_system
        backup = system.backup()
        new_url = alice.put_file("fs1", "/library/late.dat", b"late arrival")
        alice.insert(FILES_TABLE, {"doc_id": 99, "body": new_url,
                                   "body_size": 12, "body_mtime": 0.0})
        system.restore(backup)
        assert system.host_db.select(FILES_TABLE, {"doc_id": 99}) == []
        assert system.file_server("fs1").dlfm.repository.linked_file(
            "/library/late.dat") is None

    def test_backup_drains_pending_archive_jobs(self, rfd_system):
        system, alice, paths, _ = rfd_system
        _update(system, alice, 0, b"not yet archived", archive=False)
        dlfm = system.file_server("fs1").dlfm
        assert dlfm.has_pending_archives(paths[0])
        system.backup("drain")
        assert not dlfm.has_pending_archives(paths[0])
