"""File-server crash recovery, the 2PC crash matrix, and backup/restore.

Includes the replication failover matrix: an injected primary crash swept
through every replication step (ship, apply, promote, catch-up, fence) and
through every two-phase-commit step with witness replication enabled,
asserting host/DLFM agreement after recovery in every case.
"""

import pytest

from repro.datalinks.control_modes import ControlMode
from repro.datalinks.datalink_type import DatalinkOptions, datalink_column
from repro.datalinks.sharding import ShardedDataLinksDeployment
from repro.errors import FileSystemError, PlacementEpochError, ReproError
from repro.storage.schema import Column, TableSchema
from repro.storage.values import DataType
from repro.util.urls import parse_url
from tests.conftest import FILES_TABLE, build_system


def _update(system, session, doc_id, content, archive=True):
    url = session.get_datalink(FILES_TABLE, {"doc_id": doc_id}, "body", access="write")
    with session.update_file(url, truncate=True) as update:
        update.replace(content)
    if archive:
        system.run_archiver()


class TestCrashRecovery:
    def test_in_flight_update_rolled_back_on_recovery(self, rfd_system):
        system, alice, paths, _ = rfd_system
        before = system.file_server("fs1").files.read(paths[0])
        url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")
        update = alice.update_file(url, truncate=True)
        update.begin()
        update.write(b"doomed")
        system.crash_file_server("fs1")
        summary = system.recover_file_server("fs1")
        assert paths[0] in summary["rolled_back_updates"]
        assert system.file_server("fs1").files.read(paths[0]) == before

    def test_committed_update_survives_crash_before_archiving(self, rfd_system):
        system, alice, paths, _ = rfd_system
        _update(system, alice, 0, b"committed content", archive=False)
        system.crash_file_server("fs1")
        system.recover_file_server("fs1")
        assert system.file_server("fs1").files.read(paths[0]) == b"committed content"
        # the pending archive job survived the crash and can still run
        assert system.run_archiver() >= 1

    def test_recovery_clears_sync_entries_and_allows_new_updates(self, rfd_system):
        system, alice, paths, _ = rfd_system
        url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")
        update = alice.update_file(url, truncate=True)
        update.begin()
        system.crash_file_server("fs1")
        system.recover_file_server("fs1")
        dlfm = system.file_server("fs1").dlfm
        assert dlfm.repository.sync_entries(paths[0]) == []
        assert dlfm.repository.all_tracking() == []
        # the writer slot is free again
        url2 = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")
        with alice.update_file(url2, truncate=True) as retry:
            retry.replace(b"after recovery")

    def test_rfd_takeover_released_by_recovery(self, rfd_system):
        system, alice, paths, _ = rfd_system
        url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")
        update = alice.update_file(url)
        update.begin()
        system.crash_file_server("fs1")
        system.recover_file_server("fs1")
        attrs = system.file_server("fs1").files.stat(paths[0])
        assert attrs.uid == alice.cred.uid
        assert attrs.mode & 0o222 == 0

    def test_upcalls_rejected_while_file_server_down(self, rdd_system):
        system, alice, _, _ = rdd_system
        system.crash_file_server("fs1")
        url_ok = False
        try:
            url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="read")
            alice.read_url(url)
            url_ok = True
        except (FileSystemError, Exception):
            pass
        assert not url_ok
        system.recover_file_server("fs1")

    def test_link_state_survives_crash(self, rfd_system):
        system, alice, paths, _ = rfd_system
        system.crash_file_server("fs1")
        system.recover_file_server("fs1")
        dlfm = system.file_server("fs1").dlfm
        row = dlfm.repository.linked_file(paths[0])
        assert row is not None and row["control_mode"] == "rfd"
        # integrity still enforced after recovery
        with pytest.raises(FileSystemError):
            alice.fs("fs1").unlink(paths[0])


class InjectedCrash(Exception):
    """Raised by a failpoint to stop the coordinator mid-protocol."""


def _boom():
    raise InjectedCrash()


def assert_host_dlfm_agreement(system, table=FILES_TABLE, column="body"):
    """The linked files on every DLFM equal the DATALINK column contents."""

    expected = {name: set() for name in system.file_servers}
    for row in system.host_db.select(table, lock=False):
        url = row.get(column)
        if url:
            parsed = parse_url(url)
            expected[parsed.server].add(parsed.path)
    for name, server in system.file_servers.items():
        linked = {row["path"] for row in server.dlfm.repository.linked_files()}
        assert linked == expected[name], (
            f"{name}: DLFM has {sorted(linked)}, host says {sorted(expected[name])}")


def _two_server_setup():
    """A system with fs1+fs2, one unlinked file on each; returns the URLs."""

    system, alice, paths, urls = build_system(None, files=1)
    system.add_file_server("fs2")
    url2 = alice.put_file("fs2", "/mirror/doc.dat", b"mirror copy")
    return system, alice, urls[0], url2


def _start_linking_txn(system, url1, url2):
    host_txn = system.engine.begin()
    system.engine.insert_many(FILES_TABLE, [
        {"doc_id": 0, "title": "a", "body": url1, "body_size": 0, "body_mtime": 0.0},
        {"doc_id": 1, "title": "b", "body": url2, "body_size": 0, "body_mtime": 0.0},
    ], host_txn)
    return host_txn


class TestCrashMatrix:
    """Sweep a coordinator crash through every step of a linking 2PC.

    Each case injects a crash at one protocol point, crashes and recovers
    the affected components, resolves in-doubt branches, and asserts that
    the host database and every DLFM agree on the set of linked files.
    """

    # (failpoint, also crash+recover fs1, expected durable outcome)
    CRASH_POINTS = [
        ("commit:begin", False, "aborted"),
        ("commit:begin", True, "aborted"),
        ("commit:prepared:fs1", False, "aborted"),
        ("commit:prepared:fs1", True, "aborted"),
        ("commit:before_host_commit", False, "aborted"),
        ("commit:before_host_commit", True, "aborted"),
        ("commit:after_host_commit", False, "committed"),
        ("commit:after_host_commit", True, "committed"),
        ("commit:committed:fs1", False, "committed"),
        ("commit:committed:fs1", True, "committed"),
    ]

    @pytest.mark.parametrize("point,crash_fs1,expected", CRASH_POINTS)
    def test_coordinator_crash_at_every_2pc_step(self, point, crash_fs1, expected):
        system, alice, url1, url2 = _two_server_setup()
        host_txn = _start_linking_txn(system, url1, url2)
        system.engine.failpoints[point] = _boom
        with pytest.raises(InjectedCrash):
            system.engine.commit(host_txn)
        system.engine.failpoints.clear()

        # The coordinator (host database) crashes and recovers; optionally a
        # participant crashes too, exercising durable in-doubt resolution.
        system.host_db.crash()
        system.host_db.recover()
        if crash_fs1:
            system.crash_file_server("fs1")
            system.recover_file_server("fs1")
        system.resolve_in_doubt()

        assert_host_dlfm_agreement(system)
        rows = system.host_db.select(FILES_TABLE, lock=False)
        outcome = system.host_db.txn_outcome(host_txn.txn_id)
        if expected == "committed":
            assert {row["doc_id"] for row in rows} == {0, 1}
            assert outcome == "committed"
        else:
            assert rows == []
            # "unknown" when no record of the transaction survived the crash:
            # presumed abort, the same resolution as a durable ABORT.
            assert outcome in ("aborted", "unknown")

    def test_crash_mid_flush_loses_group_committed_txn(self):
        """Group commit: host crashes after COMMIT is appended but before the
        group flush -- the commit is lost and every branch rolls back."""

        system, alice, url1, url2 = _two_server_setup()
        system.set_flush_policy("group", group_commit_window=8)
        host_txn = _start_linking_txn(system, url1, url2)
        system.engine.failpoints["commit:mid_flush"] = _boom
        with pytest.raises(InjectedCrash):
            system.engine.commit(host_txn)
        system.engine.failpoints.clear()
        assert system.host_db.wal.pending_commits == 1

        system.host_db.crash()
        system.host_db.recover()
        system.resolve_in_doubt()

        assert_host_dlfm_agreement(system)
        assert system.host_db.select(FILES_TABLE, lock=False) == []
        assert system.host_db.txn_outcome(host_txn.txn_id) != "committed"

    def test_group_commit_forces_log_before_participant_commits(self):
        """The positive control for the mid-flush point: a completed commit
        forced the host log before any DLFM committed, so the same crash
        preserves the transaction everywhere."""

        system, alice, url1, url2 = _two_server_setup()
        system.set_flush_policy("group", group_commit_window=8)
        host_txn = _start_linking_txn(system, url1, url2)
        system.engine.commit(host_txn)
        assert system.host_db.wal.pending_commits == 0  # forced by the 2PC rule

        system.host_db.crash()
        system.host_db.recover()
        system.resolve_in_doubt()

        assert_host_dlfm_agreement(system)
        assert len(system.host_db.select(FILES_TABLE, lock=False)) == 2
        assert system.host_db.txn_outcome(host_txn.txn_id) == "committed"

    @pytest.mark.parametrize("point,expected", [
        ("group:begin", "aborted"),
        ("group:prepared:fs1", "aborted"),
        ("group:before_host_commit", "aborted"),
        ("group:after_host_commit", "committed"),
        ("group:committed:fs1", "committed"),
    ])
    def test_coordinator_crash_during_group_commit(self, point, expected):
        system, alice, url1, url2 = _two_server_setup()
        host_txn = _start_linking_txn(system, url1, url2)
        system.engine.failpoints[point] = _boom
        with pytest.raises(InjectedCrash):
            system.engine.commit_group([host_txn])
        system.engine.failpoints.clear()

        system.host_db.crash()
        system.host_db.recover()
        system.crash_file_server("fs2")
        system.recover_file_server("fs2")
        system.resolve_in_doubt()

        assert_host_dlfm_agreement(system)
        rows = system.host_db.select(FILES_TABLE, lock=False)
        assert bool(rows) == (expected == "committed")

    def test_participant_crash_before_prepare_rolls_branch_back(self):
        """A file server that crashes before voting loses its volatile
        branch; the coordinator's commit fails and aborts cleanly."""

        system, alice, url1, url2 = _two_server_setup()
        host_txn = _start_linking_txn(system, url1, url2)
        system.crash_file_server("fs1")
        with pytest.raises(Exception):
            system.engine.commit(host_txn)
        system.engine.abort(host_txn)
        system.recover_file_server("fs1")
        system.resolve_in_doubt()
        assert_host_dlfm_agreement(system)
        assert system.host_db.select(FILES_TABLE, lock=False) == []


REPL_TABLE = "replicated_docs"


def _replicated_setup(flush_policy="immediate", group_commit_window=1):
    """A 2-shard replicated deployment plus one path per shard."""

    deployment = ShardedDataLinksDeployment(
        2, replication=True, flush_policy=flush_policy,
        group_commit_window=group_commit_window)
    deployment.create_table(TableSchema(REPL_TABLE, [
        Column("doc_id", DataType.INTEGER, nullable=False),
        datalink_column("body", DatalinkOptions(control_mode=ControlMode.RFF,
                                                recovery=False)),
    ], primary_key=("doc_id",)))
    session = deployment.session("alice", uid=1001)
    paths = {}
    for index in range(1000):
        path = f"/zone{index}/doc.dat"
        shard = deployment.shard_of(path)
        if shard not in paths:
            paths[shard] = path
        if len(paths) == 2:
            break
    return deployment, session, paths


def assert_replicated_agreement(deployment):
    """Host DATALINK contents == the serving repository of every shard.

    When a shard's primary is up and shipping is drained, the witness must
    agree as well (replica convergence).
    """

    deployment.system.flush_logs()
    expected = {name: set() for name in deployment.shard_names}
    for row in deployment.host_db.select(REPL_TABLE, lock=False):
        url = row.get("body")
        if url:
            parsed = parse_url(url)
            expected[parsed.server].add(parsed.path)
    for name in deployment.shard_names:
        replica = deployment.replicas[name]
        serving_repo = replica.serving.dlfm.repository
        linked = {row["path"] for row in serving_repo.linked_files()}
        assert linked == expected[name], (
            f"{name} (served by {replica.serving_name}): has {sorted(linked)}, "
            f"host says {sorted(expected[name])}")
        if not replica.failed_over and replica.primary.running:
            witness_linked = {row["path"] for row in
                              replica.witness.dlfm.repository.linked_files()}
            assert witness_linked == expected[name], (
                f"{name} witness diverged: {sorted(witness_linked)} != "
                f"{sorted(expected[name])}")


class TestReplicationFailoverMatrix:
    """Injected primary crashes at every replication and 2PC step."""

    VICTIM = "shard0"

    def _start_txn(self, deployment, session, paths):
        host_txn = deployment.begin()
        rows = [{"doc_id": index, "body": deployment.put_file(
                    session, paths[shard], b"payload")}
                for index, shard in enumerate(sorted(paths))]
        deployment.engine.insert_many(REPL_TABLE, rows, host_txn)
        return host_txn

    # -- crash during the shipping pipeline -------------------------------------
    @pytest.mark.parametrize("point", ["replicate:ship", "replicate:apply"])
    @pytest.mark.parametrize("fail_over", [False, True])
    def test_primary_crash_mid_shipping(self, point, fail_over):
        """The primary dies inside a WAL shipment (primary-side hook) or
        while the witness applies it (witness-side hook); the interrupted
        transaction aborts and every surviving view agrees."""

        deployment, session, paths = _replicated_setup()
        replica = deployment.replicas[self.VICTIM]

        def crash_primary():
            deployment.crash_shard(self.VICTIM)
            raise InjectedCrash()

        host_txn = self._start_txn(deployment, session, paths)
        replica.failpoints[point] = crash_primary
        with pytest.raises(InjectedCrash):
            deployment.engine.commit(host_txn)
        replica.failpoints.clear()
        try:
            deployment.engine.abort(host_txn)
        except ReproError:
            pass

        if fail_over:
            deployment.fail_over(self.VICTIM)
            assert_replicated_agreement(deployment)
            deployment.fail_back(self.VICTIM)
        else:
            deployment.recover_shard(self.VICTIM)
            deployment.system.resolve_in_doubt()
        assert_replicated_agreement(deployment)
        assert deployment.host_db.select(REPL_TABLE, lock=False) == []

    # -- crash during promotion ---------------------------------------------------
    @pytest.mark.parametrize("point", ["replicate:promote", "replicate:catchup",
                                       "replicate:fence"])
    def test_interrupted_promotion_retries_to_completion(self, point):
        """A crash inside promotion leaves a retryable, idempotent failover."""

        deployment, session, paths = _replicated_setup()
        replica = deployment.replicas[self.VICTIM]
        for index, shard in enumerate(sorted(paths)):
            url = deployment.put_file(session, paths[shard], b"stable")
            session.insert(REPL_TABLE, {"doc_id": index, "body": url})

        deployment.crash_shard(self.VICTIM)
        replica.failpoints[point] = _boom
        with pytest.raises(InjectedCrash):
            deployment.fail_over(self.VICTIM)
        replica.failpoints.clear()

        summary = deployment.fail_over(self.VICTIM)
        assert summary["promoted"] and summary["serving"] == "shard0-r"
        assert_replicated_agreement(deployment)
        url = session.get_datalink(REPL_TABLE, {"doc_id": 0}, "body",
                                   access="read", ttl=1e9)
        assert deployment.read_url(session, url) == b"stable"
        deployment.fail_back(self.VICTIM)
        assert_replicated_agreement(deployment)

    # -- crash at every 2PC step with replication enabled -------------------------
    TWO_PC_POINTS = [
        ("commit:begin", "aborted"),
        ("commit:prepared:shard0", "aborted"),
        ("commit:before_host_commit", "aborted"),
        ("commit:after_host_commit", "committed"),
        ("commit:committed:shard0", "committed"),
    ]

    @pytest.mark.parametrize("point,expected", TWO_PC_POINTS)
    def test_primary_crash_at_every_2pc_step_with_failover(self, point, expected):
        """In-doubt resolution works across a failover: whatever 2PC step
        the primary dies at, the promoted witness converges to the host's
        durable outcome, and so does the primary after fail-back."""

        deployment, session, paths = _replicated_setup()

        def crash_primary():
            deployment.crash_shard(self.VICTIM)
            raise InjectedCrash()

        host_txn = self._start_txn(deployment, session, paths)
        deployment.engine.failpoints[point] = crash_primary
        with pytest.raises(InjectedCrash):
            deployment.engine.commit(host_txn)
        deployment.engine.failpoints.clear()

        if expected == "aborted":
            try:
                deployment.engine.abort(host_txn)
            except ReproError:
                pass
        else:
            # The host outcome is durable; surviving shards must commit.
            deployment.engine.redrive_commit(host_txn)

        deployment.fail_over(self.VICTIM)
        assert_replicated_agreement(deployment)
        rows = deployment.host_db.select(REPL_TABLE, lock=False)
        assert bool(rows) == (expected == "committed")
        if expected == "committed":
            assert deployment.host_db.txn_outcome(host_txn.txn_id) == "committed"

        deployment.fail_back(self.VICTIM)
        assert_replicated_agreement(deployment)

    def test_group_commit_drain_failure_resolves_through_witness(self):
        """A primary crash after the host group commit: the drain redrives
        the survivors, and the witness resolves the crashed shard's
        in-doubt branch from the host outcome at promotion."""

        deployment, session, paths = _replicated_setup(
            flush_policy="group", group_commit_window=4)
        host_txn = self._start_txn(deployment, session, paths)
        deployment.engine.failpoints["group:after_host_commit"] = \
            lambda: deployment.crash_shard(self.VICTIM)
        deployment.commit(host_txn)
        with pytest.raises(ReproError):
            deployment.drain()
        deployment.engine.failpoints.clear()

        deployment.fail_over(self.VICTIM)
        assert_replicated_agreement(deployment)
        assert len(deployment.host_db.select(REPL_TABLE, lock=False)) == 2
        assert deployment.host_db.txn_outcome(host_txn.txn_id) == "committed"
        deployment.fail_back(self.VICTIM)
        assert_replicated_agreement(deployment)


def _rebalance_setup():
    """A replicated 2-shard deployment with one linked file per shard.

    Returns ``(deployment, session, paths, prefix)`` where *prefix* is the
    URL prefix owned by ``shard0`` (the hand-off source of every case).
    """

    deployment, session, paths = _replicated_setup()
    for index, shard in enumerate(sorted(paths)):
        url = deployment.put_file(session, paths[shard], b"payload")
        session.insert(REPL_TABLE, {"doc_id": index, "body": url})
    deployment.system.flush_logs()
    prefix = deployment.router.prefix_of(paths["shard0"])
    return deployment, session, paths, prefix


def assert_placement_agreement(deployment):
    """Host DATALINK contents == the *owner* shard's serving repository.

    The placement-aware variant of :func:`assert_replicated_agreement`:
    after a rebalance the owning shard differs from the shard the URL
    names, so expectations go through the router's owner resolution.
    """

    deployment.system.flush_logs()
    expected = {name: set() for name in deployment.shard_names}
    for row in deployment.host_db.select(REPL_TABLE, lock=False):
        url = row.get("body")
        if url:
            parsed = parse_url(url)
            owner = deployment.router.owner_shard(parsed.server, parsed.path)
            expected[owner].add(parsed.path)
    for name in deployment.shard_names:
        replica = deployment.replicas[name]
        if not replica.serving.running:
            continue
        linked = {row["path"]
                  for row in replica.serving.dlfm.repository.linked_files()}
        assert linked == expected[name], (
            f"{name} (served by {replica.serving_name}): has {sorted(linked)}, "
            f"placement says {sorted(expected[name])}")


def _read_all(deployment, session):
    """Every committed DATALINK row must be readable through the router."""

    for row in deployment.host_db.select(REPL_TABLE, lock=False):
        url = session.get_datalink(REPL_TABLE, {"doc_id": row["doc_id"]},
                                   "body", access="read", ttl=1e9)
        assert deployment.read_url(session, url) == b"payload"


class TestRebalanceCrashMatrix:
    """Injected crashes at every step of the prefix hand-off 2PC.

    Source crashes at relink (export), archive hand-off and fence must
    roll the move back cleanly (map untouched, prefix still served by the
    source side, retry possible); destination crashes at apply must do the
    same; a destination crash *mid-commit* -- after the coordinator's
    durable outcome -- must complete the move anyway, with the crashed
    side resolving its in-doubt branch from the host outcome during
    recovery or witness promotion.
    """

    SOURCE, DEST = "shard0", "shard1"

    def _crash(self, deployment, shard):
        def hook():
            deployment.crash_shard(shard)
            raise InjectedCrash()
        return hook

    @pytest.mark.parametrize("point", ["rebalance:export",
                                       "rebalance:archive",
                                       "rebalance:fence"])
    @pytest.mark.parametrize("fail_over", [False, True])
    def test_source_crash_during_handoff_rolls_back(self, point, fail_over):
        deployment, session, paths, prefix = _rebalance_setup()
        deployment.rebalance_failpoints[point] = \
            self._crash(deployment, self.SOURCE)
        with pytest.raises(InjectedCrash):
            deployment.rebalance_prefix(prefix, self.DEST)
        deployment.rebalance_failpoints.clear()

        # the move rolled back: map untouched, no hand-off in flight
        assert deployment.router.placement.epoch == 1
        assert not deployment.router.placement.moving
        if fail_over:
            deployment.fail_over(self.SOURCE)
        else:
            deployment.recover_shard(self.SOURCE)
            deployment.system.resolve_in_doubt()
        assert_placement_agreement(deployment)
        _read_all(deployment, session)

        # the hand-off is retryable once the source side serves again
        summary = deployment.rebalance_prefix(prefix, self.DEST)
        assert summary["moved"] and summary["epoch"] == 2
        assert deployment.shard_of(paths[self.SOURCE]) == self.DEST
        assert_placement_agreement(deployment)
        _read_all(deployment, session)

    @pytest.mark.parametrize("point", ["rebalance:import",
                                       "rebalance:fence"])
    def test_dest_crash_at_apply_rolls_back(self, point):
        deployment, session, paths, prefix = _rebalance_setup()
        deployment.rebalance_failpoints[point] = \
            self._crash(deployment, self.DEST)
        with pytest.raises(InjectedCrash):
            deployment.rebalance_prefix(prefix, self.DEST)
        deployment.rebalance_failpoints.clear()

        assert deployment.router.placement.epoch == 1
        deployment.recover_shard(self.DEST)
        deployment.system.resolve_in_doubt()
        assert_placement_agreement(deployment)
        _read_all(deployment, session)

        summary = deployment.rebalance_prefix(prefix, self.DEST)
        assert summary["moved"]
        assert_placement_agreement(deployment)
        _read_all(deployment, session)

    @pytest.mark.parametrize("recovery", ["recover", "fail_over"])
    def test_dest_crash_mid_commit_completes_the_move(self, recovery):
        """Past the coordinator's durable outcome the move must finish:
        the commit is redriven, the map swings, and the crashed
        destination resolves its in-doubt branch from the host outcome --
        on restart, or on its witness at promotion (witness placement
        followed the prefix through the move)."""

        deployment, session, paths, prefix = _rebalance_setup()
        deployment.engine.failpoints["commit:after_host_commit"] = \
            lambda: deployment.crash_shard(self.DEST)
        summary = deployment.rebalance_prefix(prefix, self.DEST)
        deployment.engine.failpoints.clear()

        assert summary["moved"] and summary["redriven_commit"]
        assert deployment.router.placement.epoch == 2
        assert deployment.shard_of(paths[self.SOURCE]) == self.DEST

        if recovery == "recover":
            recovered = deployment.recover_shard(self.DEST)
            assert recovered["repository"]["in_doubt_committed"]
        else:
            deployment.fail_over(self.DEST)
        assert_placement_agreement(deployment)
        _read_all(deployment, session)
        # the source refuses straggler writes for the moved prefix
        with pytest.raises(PlacementEpochError) as excinfo:
            deployment.shard(self.SOURCE).dlfm.check_placement(
                paths[self.SOURCE])
        assert excinfo.value.owner == self.DEST

    def test_crash_between_commit_and_sweep_redrives_the_sweep(self):
        """A source crash after the committed map swing but before the
        source GC sweep: the move stands (it is durable), the sweep entry
        stays pending, and recovery redrives it -- the moved prefix's
        physical bytes leave the fenced source then, not never."""

        deployment, session, paths, prefix = _rebalance_setup()
        moved_path = paths[self.SOURCE]
        deployment.rebalance_failpoints["rebalance:sweep"] = \
            self._crash(deployment, self.SOURCE)
        with pytest.raises(InjectedCrash):
            deployment.rebalance_prefix(prefix, self.DEST)
        deployment.rebalance_failpoints.clear()

        # the move committed before the crash: map swung, sweep pending
        assert deployment.router.placement.epoch == 2
        assert deployment.shard_of(moved_path) == self.DEST
        assert prefix in deployment.pending_sweeps

        recovered = deployment.recover_shard(self.SOURCE)
        assert recovered["redriven_sweeps"].get(prefix, 0) > 0
        assert prefix not in deployment.pending_sweeps
        for node in deployment.replicas[self.SOURCE].nodes.values():
            assert not node.files.exists(moved_path)
        assert_placement_agreement(deployment)
        _read_all(deployment, session)


class TestCoordinatedBackupRestore:
    def test_restore_brings_metadata_and_content_back_in_sync(self, rfd_system):
        system, alice, paths, _ = rfd_system
        original = system.file_server("fs1").files.read(paths[0])
        backup = system.backup("baseline")
        _update(system, alice, 0, b"post-backup content " * 10)
        restored = system.restore(backup)
        assert paths[0] in restored["fs1"]
        assert system.file_server("fs1").files.read(paths[0]) == original
        row = system.host_db.select_one(FILES_TABLE, {"doc_id": 0}, lock=False)
        assert row["body_size"] == len(original)

    def test_point_in_time_restore_selects_version_by_state_id(self, rfd_system):
        system, alice, paths, _ = rfd_system
        contents = {}
        backups = {}
        for version in (1, 2, 3):
            content = f"version {version}".encode() * 100
            _update(system, alice, 0, content)
            contents[version] = content
            backups[version] = system.backup(f"v{version}")
        for version in (2, 1, 3):
            system.restore(backups[version])
            assert system.file_server("fs1").files.read(paths[0]) == contents[version]

    def test_restore_covers_multiple_files_and_servers(self):
        system, alice, paths, _ = build_system(ControlMode.RFD, files=3)
        system.add_file_server("fs2")
        extra_url = alice.put_file("fs2", "/other/file.bin", b"fs2 original")
        alice.insert(FILES_TABLE, {"doc_id": 10, "body": extra_url,
                                   "body_size": 12, "body_mtime": 0.0})
        system.run_archiver()
        backup = system.backup("two-servers")
        _update(system, alice, 1, b"changed on fs1")
        url = alice.get_datalink(FILES_TABLE, {"doc_id": 10}, "body", access="write")
        with alice.update_file(url, truncate=True) as update:
            update.replace(b"changed on fs2")
        system.run_archiver()
        restored = system.restore(backup)
        assert paths[1] in restored["fs1"]
        assert "/other/file.bin" in restored["fs2"]
        assert system.file_server("fs2").files.read("/other/file.bin") == b"fs2 original"

    def test_rows_inserted_after_backup_disappear_on_restore(self, rfd_system):
        system, alice, _, _ = rfd_system
        backup = system.backup()
        new_url = alice.put_file("fs1", "/library/late.dat", b"late arrival")
        alice.insert(FILES_TABLE, {"doc_id": 99, "body": new_url,
                                   "body_size": 12, "body_mtime": 0.0})
        system.restore(backup)
        assert system.host_db.select(FILES_TABLE, {"doc_id": 99}) == []
        assert system.file_server("fs1").dlfm.repository.linked_file(
            "/library/late.dat") is None

    def test_backup_drains_pending_archive_jobs(self, rfd_system):
        system, alice, paths, _ = rfd_system
        _update(system, alice, 0, b"not yet archived", archive=False)
        dlfm = system.file_server("fs1").dlfm
        assert dlfm.has_pending_archives(paths[0])
        system.backup("drain")
        assert not dlfm.has_pending_archives(paths[0])
