"""The optional extensions: strict read synchronization, multi-file updates,
and DLFM housekeeping."""

import pytest

from repro.api.system import DataLinksSystem
from repro.datalinks.control_modes import ControlMode
from repro.datalinks.datalink_type import DatalinkOptions, datalink_column
from repro.errors import Errno, FileSystemError
from repro.fs.vfs import OpenFlags
from repro.storage.schema import Column, TableSchema
from repro.storage.values import DataType
from tests.conftest import BOB_UID, FILES_TABLE, build_system
from repro.workloads.generator import make_content


def build_strict_rfd_system(files: int = 1):
    """An rfd system with strict read synchronization switched on."""

    system = DataLinksSystem()
    system.add_file_server("fs1", strict_read_upcalls=True)
    system.create_table(TableSchema(FILES_TABLE, [
        Column("doc_id", DataType.INTEGER, nullable=False),
        datalink_column("body", DatalinkOptions(control_mode=ControlMode.RFD,
                                                strict_read_sync=True)),
        Column("body_size", DataType.INTEGER),
        Column("body_mtime", DataType.TIMESTAMP),
    ], primary_key=("doc_id",)))
    system.register_metadata_columns(FILES_TABLE, "body", "body_size", "body_mtime")
    alice = system.session("alice", uid=1001)
    paths = []
    for index in range(files):
        path = f"/library/doc{index:03d}.dat"
        url = alice.put_file("fs1", path, make_content(4096, tag=f"doc{index}"))
        alice.insert(FILES_TABLE, {"doc_id": index, "body": url,
                                   "body_size": 0, "body_mtime": 0.0})
        paths.append(path)
    system.run_archiver()
    return system, alice, paths


class TestStrictReadSync:
    def test_reader_blocks_writer_when_strict(self):
        system, alice, paths = build_strict_rfd_system()
        bob = system.session("bob", uid=BOB_UID)
        fd = system.file_server("fs1").lfs.open(paths[0], OpenFlags.READ, bob.cred)
        url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")
        with pytest.raises(FileSystemError) as info:
            alice.update_file(url).begin()
        assert info.value.errno is Errno.EBUSY
        system.file_server("fs1").lfs.close(fd)
        # once the reader is gone the update proceeds
        with alice.update_file(url, truncate=True) as update:
            update.replace(b"after the reader left")

    def test_writer_blocks_new_reader_when_strict(self):
        system, alice, paths = build_strict_rfd_system()
        bob = system.session("bob", uid=BOB_UID)
        url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")
        update = alice.update_file(url)
        update.begin()
        with pytest.raises(FileSystemError):
            system.file_server("fs1").lfs.open(paths[0], OpenFlags.READ, bob.cred)
        update.commit()

    def test_strict_reads_record_and_remove_sync_entries(self):
        system, alice, paths = build_strict_rfd_system()
        dlfm = system.file_server("fs1").dlfm
        fd = system.file_server("fs1").lfs.open(paths[0], OpenFlags.READ, alice.cred)
        entries = dlfm.repository.sync_entries(paths[0])
        assert [entry["access"] for entry in entries] == ["read"]
        system.file_server("fs1").lfs.close(fd)
        assert dlfm.repository.sync_entries(paths[0]) == []

    def test_strict_read_blocks_unlink_of_open_file(self):
        system, alice, paths = build_strict_rfd_system()
        fd = system.file_server("fs1").lfs.open(paths[0], OpenFlags.READ, alice.cred)
        with pytest.raises(Exception):
            alice.delete(FILES_TABLE, {"doc_id": 0})
        system.file_server("fs1").lfs.close(fd)
        assert alice.delete(FILES_TABLE, {"doc_id": 0}) == 1

    def test_default_mode_keeps_reads_upcall_free(self, rfd_system):
        system, alice, paths, _ = rfd_system
        # upcalls charge the file server's clock domain; count cluster-wide
        before = system.clocks.stats.count("upcall_round_trip")
        alice.fs("fs1").read_file(paths[0])
        assert system.clocks.stats.count("upcall_round_trip") == before

    def test_strict_reads_of_unlinked_files_pass_through(self):
        system, alice, _ = build_strict_rfd_system()
        alice.fs("fs1").write_file("/library/unlinked.txt", b"free")
        assert alice.fs("fs1").read_file("/library/unlinked.txt") == b"free"
        dlfm = system.file_server("fs1").dlfm
        assert dlfm.repository.sync_entries("/library/unlinked.txt") == []


class TestMultiFileUpdate:
    def _urls(self, alice, count):
        return [alice.get_datalink(FILES_TABLE, {"doc_id": i}, "body", access="write")
                for i in range(count)]

    def test_all_members_commit_together(self):
        system, alice, paths, _ = build_system(ControlMode.RFD, files=3)
        with alice.update_files(self._urls(alice, 3), truncate=True) as updates:
            for index, update in enumerate(updates):
                update.replace(f"coordinated {index}".encode())
        for index, path in enumerate(paths):
            assert alice.fs("fs1").read_file(path) == f"coordinated {index}".encode()

    def test_failure_rolls_back_every_member(self):
        system, alice, paths, _ = build_system(ControlMode.RFD, files=3)
        before = [alice.fs("fs1").read_file(path) for path in paths]
        try:
            with alice.update_files(self._urls(alice, 3), truncate=True) as updates:
                updates[0].replace(b"changed first file")
                updates[1].replace(b"changed second file")
                raise RuntimeError("fails before the third file is written")
        except RuntimeError:
            pass
        after = [alice.fs("fs1").read_file(path) for path in paths]
        assert after == before

    def test_failed_begin_leaves_nothing_open(self):
        system, alice, paths, _ = build_system(ControlMode.RFD, files=2)
        urls = self._urls(alice, 2)
        # Occupy the second file so the group open fails part-way through.
        blocker_url = alice.get_datalink(FILES_TABLE, {"doc_id": 1}, "body",
                                         access="write")
        blocker = alice.update_file(blocker_url)
        blocker.begin()
        with pytest.raises(FileSystemError):
            alice.update_files(urls).begin()
        dlfm = system.file_server("fs1").dlfm
        # the first file's speculative open was rolled back
        assert dlfm.repository.sync_entries(paths[0]) == []
        blocker.commit()


class TestHousekeeping:
    def test_expired_tokens_are_purged(self, rdd_system):
        system, alice, _, _ = rdd_system
        url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body",
                                 access="read", ttl=0.5)
        alice.read_url(url)
        dlfm = system.file_server("fs1").dlfm
        assert dlfm.repository.db.count("token_entries") >= 1
        system.clock.advance(5.0)
        counts = system.run_housekeeping()
        assert counts["fs1"]["purged_tokens"] >= 1
        assert dlfm.repository.db.count("token_entries") == 0

    def test_version_chain_pruned_but_newest_kept(self, rfd_system):
        system, alice, paths, _ = rfd_system
        for version in range(4):
            url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")
            with alice.update_file(url, truncate=True) as update:
                update.replace(f"v{version}".encode())
            system.run_archiver()
        dlfm = system.file_server("fs1").dlfm
        assert len(dlfm.repository.versions(paths[0])) == 5    # initial + 4 updates
        counts = system.run_housekeeping(keep_versions=2)
        assert counts["fs1"]["pruned_versions"] == 3
        versions = dlfm.repository.versions(paths[0])
        assert len(versions) == 2
        # rollback still works from the retained newest version
        assert dlfm.restore_last_committed(paths[0]) is True
        assert alice.fs("fs1").read_file(paths[0]) == b"v3"

    def test_housekeeping_without_pruning_keeps_versions(self, rfd_system):
        system, alice, paths, _ = rfd_system
        counts = system.run_housekeeping()
        assert counts["fs1"]["pruned_versions"] == 0
        assert len(system.file_server("fs1").dlfm.repository.versions(paths[0])) == 1
