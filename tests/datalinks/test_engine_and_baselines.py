"""DataLinks engine transaction plumbing and the Section 3 baseline schemes."""

import pytest

from repro.datalinks.baselines.blob_store import BlobFileStore
from repro.datalinks.baselines.cau import CopyAndUpdateManager
from repro.datalinks.baselines.cico import CheckInCheckOutManager
from repro.datalinks.baselines.unlink_relink import UnlinkRelinkUpdater
from repro.datalinks.control_modes import ControlMode
from repro.errors import (
    CheckoutConflictError,
    DataLinksError,
    MergeConflictError,
)
from repro.storage.transaction import TxnState
from tests.conftest import ALICE_UID, BOB_UID, FILES_TABLE, build_system


class TestEngineTransactions:
    def test_multi_statement_transaction_commits_links_atomically(self):
        system, alice, paths, _ = build_system(ControlMode.RFD, files=2, link=False)
        urls = [system.engine.make_url("fs1", path) for path in paths]
        alice.begin()
        for doc_id, url in enumerate(urls):
            alice.insert(FILES_TABLE, {"doc_id": doc_id, "body": url,
                                       "body_size": 0, "body_mtime": 0.0})
        dlfm = system.file_server("fs1").dlfm
        # before commit the work is held in one open DLFM branch (sub-transaction)
        assert len(dlfm.branches.active_host_transactions()) == 1
        assert dlfm.repository.db.active_transactions() != []
        alice.commit()
        assert dlfm.branches.active_host_transactions() == []
        assert dlfm.repository.linked_file(paths[0]) is not None
        assert dlfm.repository.linked_file(paths[1]) is not None

    def test_abort_rolls_back_both_sides(self):
        system, alice, paths, _ = build_system(ControlMode.RFD, files=1, link=False)
        url = system.engine.make_url("fs1", paths[0])
        alice.begin()
        alice.insert(FILES_TABLE, {"doc_id": 0, "body": url,
                                   "body_size": 0, "body_mtime": 0.0})
        alice.abort()
        assert system.host_db.select(FILES_TABLE) == []
        assert system.file_server("fs1").dlfm.repository.linked_file(paths[0]) is None

    def test_branch_goes_through_prepared_state(self):
        system, alice, paths, _ = build_system(ControlMode.RFD, files=1, link=False)
        dlfm = system.file_server("fs1").dlfm
        observed_states = []
        original_prepare = dlfm.repository.db.prepare

        def spying_prepare(txn, extra=None):
            original_prepare(txn, extra)
            observed_states.append(txn.state)

        dlfm.repository.db.prepare = spying_prepare
        url = system.engine.make_url("fs1", paths[0])
        alice.insert(FILES_TABLE, {"doc_id": 0, "body": url,
                                   "body_size": 0, "body_mtime": 0.0})
        assert observed_states == [TxnState.PREPARED]

    def test_transaction_spanning_two_file_servers(self):
        system, alice, paths, _ = build_system(ControlMode.RFD, files=1, link=False)
        system.add_file_server("fs2")
        url1 = system.engine.make_url("fs1", paths[0])
        url2 = alice.put_file("fs2", "/mirror/copy.dat", b"mirror")
        alice.begin()
        alice.insert(FILES_TABLE, {"doc_id": 0, "body": url1,
                                   "body_size": 0, "body_mtime": 0.0})
        alice.insert(FILES_TABLE, {"doc_id": 1, "body": url2,
                                   "body_size": 0, "body_mtime": 0.0})
        alice.commit()
        assert system.file_server("fs1").dlfm.repository.linked_file(paths[0])
        assert system.file_server("fs2").dlfm.repository.linked_file("/mirror/copy.dat")

    def test_unknown_file_server_in_url_rejected(self, rfd_system):
        system, alice, _, _ = rfd_system
        with pytest.raises(DataLinksError):
            alice.insert(FILES_TABLE, {"doc_id": 77,
                                       "body": "dlfs://nowhere/f.bin",
                                       "body_size": 0, "body_mtime": 0.0})

    def test_session_requires_matching_begin_commit(self, rfd_system):
        _, alice, _, _ = rfd_system
        with pytest.raises(DataLinksError):
            alice.commit()
        alice.begin()
        with pytest.raises(DataLinksError):
            alice.begin()
        alice.abort()


class TestCheckInCheckOut:
    def test_exclusive_checkout(self, rfd_system):
        system, _, paths, _ = rfd_system
        cico = CheckInCheckOutManager(system.host_db, system.clock)
        cico.check_out("fs1", paths[0], ALICE_UID)
        with pytest.raises(CheckoutConflictError):
            cico.check_out("fs1", paths[0], BOB_UID)
        assert cico.conflicts == 1
        assert cico.holder_of("fs1", paths[0]) == ALICE_UID

    def test_check_in_releases_and_reports_hold_time(self, rfd_system):
        system, _, paths, _ = rfd_system
        cico = CheckInCheckOutManager(system.host_db, system.clock)
        cico.check_out("fs1", paths[0], ALICE_UID)
        system.clock.advance(5.0)
        held = cico.check_in("fs1", paths[0], ALICE_UID)
        assert held >= 5.0
        # now another user can check the file out
        cico.check_out("fs1", paths[0], BOB_UID)

    def test_check_in_by_non_holder_rejected(self, rfd_system):
        system, _, paths, _ = rfd_system
        cico = CheckInCheckOutManager(system.host_db, system.clock)
        cico.check_out("fs1", paths[0], ALICE_UID)
        with pytest.raises(DataLinksError):
            cico.check_in("fs1", paths[0], BOB_UID)

    def test_each_checkout_is_a_database_update(self, rfd_system):
        system, _, paths, _ = rfd_system
        cico = CheckInCheckOutManager(system.host_db, system.clock)
        before = len(system.host_db.wal)
        cico.check_out("fs1", paths[0], ALICE_UID)
        cico.check_in("fs1", paths[0], ALICE_UID)
        assert len(system.host_db.wal) > before


class TestCopyAndUpdate:
    def _manager(self, system):
        return CopyAndUpdateManager({"fs1": system.file_server("fs1").files})

    def test_private_copies_do_not_touch_master(self):
        system, _, paths, _ = build_system(None)
        cau = self._manager(system)
        copy = cau.make_copy("fs1", paths[0], ALICE_UID)
        cau.write_copy(copy, b"private edit")
        assert system.file_server("fs1").files.read(paths[0]) != b"private edit"

    def test_lost_update_with_blind_overwrite(self):
        system, _, paths, _ = build_system(None)
        cau = self._manager(system)
        alice_copy = cau.make_copy("fs1", paths[0], ALICE_UID)
        bob_copy = cau.make_copy("fs1", paths[0], BOB_UID)
        cau.write_copy(alice_copy, b"alice's work")
        cau.write_copy(bob_copy, b"bob's work")
        cau.check_in(alice_copy, policy="overwrite")
        result = cau.check_in(bob_copy, policy="overwrite")
        assert result["lost_update"] is True
        assert cau.lost_updates == 1
        # Bob's blind overwrite erased Alice's published work
        assert system.file_server("fs1").files.read(paths[0]) == b"bob's work"

    def test_detect_policy_raises_merge_conflict(self):
        system, _, paths, _ = build_system(None)
        cau = self._manager(system)
        alice_copy = cau.make_copy("fs1", paths[0], ALICE_UID)
        bob_copy = cau.make_copy("fs1", paths[0], BOB_UID)
        cau.write_copy(alice_copy, b"alice's work")
        cau.check_in(alice_copy)
        cau.write_copy(bob_copy, b"bob's work")
        with pytest.raises(MergeConflictError):
            cau.check_in(bob_copy, policy="detect")
        assert cau.conflicts_detected == 1

    def test_sequential_checkins_conflict_free(self):
        system, _, paths, _ = build_system(None)
        cau = self._manager(system)
        copy = cau.make_copy("fs1", paths[0], ALICE_UID)
        cau.write_copy(copy, b"first")
        cau.check_in(copy)
        copy2 = cau.make_copy("fs1", paths[0], ALICE_UID)
        cau.write_copy(copy2, b"second")
        cau.check_in(copy2)
        assert system.file_server("fs1").files.read(paths[0]) == b"second"
        assert cau.lost_updates == 0


class TestUnlinkRelinkAndBlob:
    def test_unlink_relink_update_works_but_opens_a_window(self, rfd_system):
        system, alice, paths, _ = rfd_system
        updater = UnlinkRelinkUpdater(system)
        updater.update(alice, FILES_TABLE, {"doc_id": 0}, "body", b"updated the old way")
        assert system.file_server("fs1").files.read(paths[0]) == b"updated the old way"
        assert updater.stats.updates == 1
        assert updater.stats.mean_window > 0.0
        # during the window the file was not linked; afterwards it is again
        assert system.file_server("fs1").dlfm.repository.linked_file(paths[0]) is not None

    def test_blob_store_roundtrip_and_stat(self, clock):
        from repro.storage.database import Database

        store = BlobFileStore(Database("host", clock), clock)
        store.write("/pages/a.html", b"<html>a</html>")
        assert store.read("/pages/a.html") == b"<html>a</html>"
        assert store.exists("/pages/a.html")
        assert store.stat("/pages/a.html")["size"] == 14
        store.write("/pages/a.html", b"<html>aa</html>")
        assert store.stat("/pages/a.html")["size"] == 15
        store.delete("/pages/a.html")
        assert not store.exists("/pages/a.html")
        with pytest.raises(DataLinksError):
            store.read("/pages/a.html")

    def test_blob_reads_pay_per_byte_database_cost(self, clock):
        from repro.storage.database import Database

        store = BlobFileStore(Database("host", clock), clock)
        store.write("/big.bin", b"x" * (1024 * 1024))
        before = clock.now()
        store.read("/big.bin")
        elapsed_large = clock.now() - before
        store.write("/small.bin", b"x")
        before = clock.now()
        store.read("/small.bin")
        elapsed_small = clock.now() - before
        assert elapsed_large > elapsed_small * 10
