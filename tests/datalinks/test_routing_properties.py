"""Seeded property test for the replication-aware routing layer.

Under *any* interleaving of link traffic, serving-node crashes, promotions,
witness outages, stream stalls, rejoins and fail-backs, the routing
invariants must hold after every step:

1. **Exactly one writable primary per prefix** -- the epoch registry names
   one lease holder per shard, the router resolves every write to it, and
   every other node refuses link branches with
   :class:`~repro.errors.FencedNodeError` (no split brain);
2. **No fenced node ever serves** -- a deposed node that has not rejoined
   the stream is never a read candidate and refuses token validation even
   for a cryptographically valid token;
3. **Follower reads never exceed the staleness bound** -- every non-serving
   read candidate the router offers is a synced subscriber whose stream lag
   is within ``max_follower_lag`` records, and reads routed while a stream
   is stalled silently fall back to the serving node.

The test never models the expected roles itself: it replays the registry,
the router and the DLFM fences against each other and asserts they agree.
"""

import random

import pytest

from repro.datalinks.control_modes import ControlMode
from repro.datalinks.datalink_type import DatalinkOptions, datalink_column
from repro.datalinks.routing import NodeRole
from repro.datalinks.sharding import ShardedDataLinksDeployment
from repro.datalinks.tokens import TokenType
from repro.errors import FencedNodeError, ReproError
from repro.storage.schema import Column, TableSchema
from repro.storage.values import DataType

TABLE = "routed_docs"
MAX_FOLLOWER_LAG = 0


def assert_routing_invariants(deployment):
    router = deployment.router
    for shard in deployment.shard_names:
        replica = deployment.replicas[shard]
        roles = router.roles(shard)

        # -- invariant 1: one writable lease holder, everyone else fenced --
        lease_holder = router.serving_node(shard)
        assert router.writable_node(shard) == lease_holder
        assert sum(1 for role in roles.values()
                   if role == NodeRole.SERVING) <= 1
        if roles.get(lease_holder) == NodeRole.SERVING:
            assert replica.serving.name == lease_holder
        for name, node in replica.nodes.items():
            if name == lease_holder or not node.running:
                continue
            with pytest.raises(FencedNodeError):
                node.dlfm.begin_branch(999999)

        # -- invariant 2: no fenced node is ever a read candidate ----------
        candidates = {server.name for server in router.read_candidates(shard)}
        for name, role in roles.items():
            if role in (NodeRole.FENCED, NodeRole.DOWN):
                assert name not in candidates
                node = replica.nodes[name]
                if node.running and role == NodeRole.FENCED:
                    rows = node.dlfm.repository.linked_files()
                    if rows:
                        row = rows[0]
                        token = node.dlfm.generate_token(
                            row["path"], TokenType.READ, ttl=1e9)
                        with pytest.raises(FencedNodeError):
                            node.dlfm.upcall_validate_token(
                                row["ino"], token, 4001)

        # -- invariant 3: follower candidates respect the staleness bound --
        for name in candidates:
            if name == lease_holder:
                continue
            assert roles[name] == NodeRole.WITNESS
            lag = router.follower_lag(shard, name)
            assert lag is not None and lag <= MAX_FOLLOWER_LAG


class _RoutingDriver:
    """Random crash/promote/fail-back interleavings over a replicated
    deployment, with the routing invariants asserted after every step."""

    def __init__(self, seed: int, shards: int = 2, witnesses: int = 2):
        self.rng = random.Random(seed)
        # Immediate flush: links become durable (and ship) at commit, so
        # witnesses are read-eligible right after a link -- the driver is
        # probing role rotations, not group-commit settling.
        self.deployment = ShardedDataLinksDeployment(
            shards, replication=True, witnesses=witnesses,
            flush_policy="immediate", group_commit_window=1,
            max_follower_lag=MAX_FOLLOWER_LAG)
        self.deployment.create_table(TableSchema(TABLE, [
            Column("doc_id", DataType.INTEGER, nullable=False),
            datalink_column("body", DatalinkOptions(
                control_mode=ControlMode.RDB, recovery=False)),
        ], primary_key=("doc_id",)))
        self.session = self.deployment.session("router", uid=4001)
        self.next_doc = 0
        self.urls: list[str] = []
        self.failovers = 0
        self.fenced_rejections = 0
        self.follower_reads_served = 0

    # --------------------------------------------------------------- operations --
    def _shard(self) -> str:
        return self.rng.choice(self.deployment.shard_names)

    def op_link(self) -> None:
        deployment = self.deployment
        doc_id = self.next_doc
        self.next_doc += 1
        path = f"/zone{self.rng.randrange(8)}/doc{doc_id:05d}.dat"
        try:
            url = deployment.put_file(self.session, path,
                                      f"doc {doc_id}".encode())
            self.session.insert(TABLE, {"doc_id": doc_id, "body": url})
        except ReproError:
            return      # the shard's lease holder is down: write unavailable
        self.urls.append(url)

    def op_read(self) -> None:
        if not self.urls:
            return
        deployment = self.deployment
        url = self.rng.choice(self.urls)
        doc_id = self.urls.index(url)
        before = dict(deployment.router.reads_by_role)
        try:
            tokenized = self.session.get_datalink(
                TABLE, {"doc_id": doc_id}, "body", access="read", ttl=1e9)
            if tokenized is None:
                return
            deployment.read_url(self.session, tokenized)
        except ReproError:
            return      # no read-eligible node right now
        gained_witness = deployment.router.reads_by_role["witness"] \
            - before["witness"]
        self.follower_reads_served += gained_witness

    def op_crash_serving(self) -> None:
        shard = self._shard()
        replica = self.deployment.replicas[shard]
        serving = replica.serving_name
        if not replica.nodes[serving].running:
            return
        if serving == replica.home_primary:
            self.deployment.crash_shard(shard)
        else:
            self.deployment.crash_witness(shard, serving)

    def op_fail_over(self) -> None:
        shard = self._shard()
        replica = self.deployment.replicas[shard]
        if replica.serving.running:
            return
        try:
            self.deployment.fail_over(shard)
            self.failovers += 1
        except ReproError:
            pass        # no synced running witness; legitimate refusal

    def op_recover(self) -> None:
        shard = self._shard()
        replica = self.deployment.replicas[shard]
        downed = [name for name, node in replica.nodes.items()
                  if not node.running]
        if not downed:
            return
        name = self.rng.choice(downed)
        if name == replica.home_primary:
            self.deployment.recover_shard(shard)
        else:
            self.deployment.recover_witness(shard, name)

    def op_fail_back(self) -> None:
        shard = self._shard()
        replica = self.deployment.replicas[shard]
        if not replica.failed_over or not replica.serving.running:
            return
        if not replica.primary.running:
            self.deployment.recover_shard(shard)
        try:
            self.deployment.fail_back(shard)
        except ReproError:
            pass

    def op_probe_fenced(self) -> None:
        """A valid token against a fenced node must be refused."""

        shard = self._shard()
        replica = self.deployment.replicas[shard]
        roles = self.deployment.router.roles(shard)
        fenced = [name for name, role in roles.items()
                  if role == NodeRole.FENCED]
        if not fenced:
            return
        node = replica.nodes[self.rng.choice(fenced)]
        rows = node.dlfm.repository.linked_files()
        if not rows:
            return
        row = self.rng.choice(rows)
        token = node.dlfm.generate_token(row["path"], TokenType.READ, ttl=1e9)
        with pytest.raises(FencedNodeError):
            node.dlfm.upcall_validate_token(row["ino"], token, 4001)
        self.fenced_rejections += 1

    def step(self) -> None:
        operation = self.rng.choices(
            [self.op_link, self.op_read, self.op_crash_serving,
             self.op_fail_over, self.op_recover, self.op_fail_back,
             self.op_probe_fenced],
            weights=[6, 6, 2, 3, 3, 2, 2])[0]
        operation()
        assert_routing_invariants(self.deployment)


@pytest.mark.parametrize("seed", [13, 2024, 90125])
def test_random_role_rotations_preserve_routing_invariants(seed):
    driver = _RoutingDriver(seed)
    for _ in range(70):
        driver.step()
    # the run exercised what it claims to
    assert driver.next_doc > 10
    assert driver.failovers > 0
    assert driver.follower_reads_served > 0


def test_follower_reads_never_served_past_the_staleness_bound():
    """With a stalled stream the router must route every read to the
    serving node; resuming the stream re-admits the witness."""

    deployment = ShardedDataLinksDeployment(2, replication=True,
                                            flush_policy="immediate",
                                            group_commit_window=1,
                                            max_follower_lag=MAX_FOLLOWER_LAG)
    deployment.create_table(TableSchema(TABLE, [
        Column("doc_id", DataType.INTEGER, nullable=False),
        datalink_column("body", DatalinkOptions(
            control_mode=ControlMode.RDB, recovery=False)),
    ], primary_key=("doc_id",)))
    session = deployment.session("bound", uid=4002)
    path = "/bound0/doc.dat"
    shard = deployment.shard_of(path)
    url = deployment.put_file(session, path, b"bound")
    session.insert(TABLE, {"doc_id": 0, "body": url})
    replica = deployment.replicas[shard]

    replica.shipper.pause()
    url2 = deployment.put_file(session, f"/bound0/doc2.dat", b"bound2")
    session.insert(TABLE, {"doc_id": 1, "body": url2})
    deployment.system.flush_logs()
    assert replica.shipper.lag() > 0

    tokenized = session.get_datalink(TABLE, {"doc_id": 0}, "body",
                                     access="read", ttl=1e9)
    before = dict(deployment.router.reads_by_role)
    for _ in range(4):
        deployment.read_url(session, tokenized)
        assert_routing_invariants(deployment)
    assert deployment.router.reads_by_role["witness"] == before["witness"]
    assert deployment.router.follower_rejects > 0

    replica.shipper.resume()
    replica.shipper.ship()
    for _ in range(2):
        deployment.read_url(session, tokenized)
    assert deployment.router.reads_by_role["witness"] > before["witness"]
