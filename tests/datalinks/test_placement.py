"""Behavioral tests for epoched placement and the online prefix hand-off.

Covers the error polish of ``rebalance_prefix`` (descriptive
:class:`~repro.errors.PlacementError` for every refusal), the end-to-end
semantics of a committed move (old URLs resolve on the new owner, tokens
re-sign with the destination's secret, the archived version chain moves,
new links land on the destination), and the session-routing behavior:
update-in-place through the router across failover, and the retryable
:class:`~repro.errors.LeaseMovedError` when the lease moves mid-update.
"""

import pytest

from repro.datalinks.control_modes import ControlMode
from repro.datalinks.datalink_type import DatalinkOptions, datalink_column
from repro.datalinks.sharding import ShardedDataLinksDeployment
from repro.errors import (
    LeaseMovedError,
    PlacementEpochError,
    PlacementError,
)
from repro.storage.schema import Column, TableSchema
from repro.storage.values import DataType

TABLE = "moved_docs"


def build_deployment(shards=2, witnesses=1, replication=True,
                     mode=ControlMode.RFD, recovery=True,
                     follower_reads=True):
    deployment = ShardedDataLinksDeployment(
        shards, replication=replication, witnesses=witnesses,
        flush_policy="immediate", group_commit_window=1,
        follower_reads=follower_reads)
    deployment.create_table(TableSchema(TABLE, [
        Column("doc_id", DataType.INTEGER, nullable=False),
        datalink_column("body", DatalinkOptions(control_mode=mode,
                                                recovery=recovery)),
        Column("body_size", DataType.INTEGER),
        Column("body_mtime", DataType.TIMESTAMP),
    ], primary_key=("doc_id",)))
    deployment.register_metadata_columns(TABLE, "body", "body_size",
                                         "body_mtime")
    return deployment, deployment.session("mover", uid=6001)


def link_docs(deployment, session, prefix, count, start=0):
    urls = []
    for index in range(count):
        doc_id = start + index
        url = deployment.put_file(session, f"{prefix}/doc{doc_id:04d}.dat",
                                  f"doc {doc_id}".encode())
        session.insert(TABLE, {"doc_id": doc_id, "body": url,
                               "body_size": 0, "body_mtime": 0.0})
        urls.append(url)
    deployment.system.run_archiver()
    deployment.system.flush_logs()
    return urls


def other_shard(deployment, shard):
    return next(name for name in deployment.shard_names if name != shard)


class TestRebalanceErrors:
    def test_unknown_destination_shard(self):
        deployment, session = build_deployment()
        link_docs(deployment, session, "/p", 1)
        with pytest.raises(PlacementError, match="no such shard"):
            deployment.rebalance_prefix("/p", "shard9")

    def test_unknown_prefix(self):
        deployment, session = build_deployment()
        with pytest.raises(PlacementError, match="unknown prefix"):
            deployment.rebalance_prefix("/never-linked", "shard1")

    def test_prefix_already_on_destination(self):
        deployment, session = build_deployment()
        link_docs(deployment, session, "/p", 1)
        home = deployment.shard_of("/p/doc0000.dat")
        with pytest.raises(PlacementError, match="already lives"):
            deployment.rebalance_prefix("/p", home)

    def test_non_replicated_destination(self):
        deployment, session = build_deployment(replication=False)
        link_docs(deployment, session, "/p", 1)
        dest = other_shard(deployment, deployment.shard_of("/p/doc0000.dat"))
        with pytest.raises(PlacementError, match="no witness replica"):
            deployment.rebalance_prefix("/p", dest)

    def test_not_a_routed_prefix(self):
        deployment, session = build_deployment()
        link_docs(deployment, session, "/p", 1)
        with pytest.raises(PlacementError, match="not a routed prefix"):
            deployment.rebalance_prefix("/p/doc0000.dat", "shard1")

    def test_in_flight_open_aborts_the_move_retryably(self):
        deployment, session = build_deployment()
        link_docs(deployment, session, "/p", 1)
        source = deployment.shard_of("/p/doc0000.dat")
        dest = other_shard(deployment, source)
        write_url = session.get_datalink(TABLE, {"doc_id": 0}, "body",
                                         access="write", ttl=1e9)
        update = session.update_file(write_url, truncate=True)
        update.begin()
        with pytest.raises(PlacementError, match="in progress|is open"):
            deployment.rebalance_prefix("/p", dest)
        assert deployment.router.placement.epoch == 1
        update.abort()
        assert deployment.rebalance_prefix("/p", dest)["moved"]


class TestMoveSemantics:
    def test_old_urls_resolve_versions_move_and_new_links_land_on_dest(self):
        deployment, session = build_deployment(mode=ControlMode.RDB)
        urls = link_docs(deployment, session, "/p", 3)
        source = deployment.shard_of("/p/doc0000.dat")
        dest = other_shard(deployment, source)

        summary = deployment.rebalance_prefix("/p", dest)
        assert summary["moved_files"] == 3
        assert summary["moved_versions"] == 3
        assert summary["epoch"] == 2

        # old URLs (naming the source) read through the new owner, with
        # tokens signed by the destination's secret
        for doc_id, url in enumerate(urls):
            assert f"//{source}/" in url
            tokenized = session.get_datalink(TABLE, {"doc_id": doc_id},
                                             "body", access="read", ttl=1e9)
            assert deployment.read_url(session, tokenized) \
                == f"doc {doc_id}".encode()

        # the archived version chain re-attached on the destination
        dest_repo = deployment.replicas[dest].serving.dlfm.repository
        for doc_id in range(3):
            versions = dest_repo.versions(f"/p/doc{doc_id:04d}.dat")
            assert [row["version_no"] for row in versions] == [1]
        source_repo = deployment.replicas[source].serving.dlfm.repository
        assert source_repo.versions("/p/doc0000.dat") == []
        assert source_repo.linked_file("/p/doc0000.dat") is None

        # new links to the moved prefix land on the destination
        url = deployment.put_file(session, "/p/new.dat", b"new")
        session.insert(TABLE, {"doc_id": 99, "body": url,
                               "body_size": 0, "body_mtime": 0.0})
        assert f"//{dest}/" in url
        assert dest_repo.linked_file("/p/new.dat") is not None

    def test_update_in_place_and_rollback_work_on_the_new_owner(self):
        """The moved version chain is live: an aborted update on the
        destination restores the last committed version archived on the
        *source* before the move."""

        deployment, session = build_deployment()
        link_docs(deployment, session, "/p", 1)
        source = deployment.shard_of("/p/doc0000.dat")
        dest = other_shard(deployment, source)
        deployment.rebalance_prefix("/p", dest)

        write_url = session.get_datalink(TABLE, {"doc_id": 0}, "body",
                                         access="write", ttl=1e9)
        try:
            with session.update_file(write_url, truncate=True) as update:
                update.write(b"partial garbage")
                raise RuntimeError("application failure")
        except RuntimeError:
            pass
        read_url = session.get_datalink(TABLE, {"doc_id": 0}, "body",
                                        access="read", ttl=1e9)
        assert deployment.read_url(session, read_url) == b"doc 0"

    def test_metadata_maintenance_follows_the_move(self):
        """Close processing on the destination updates the registered
        size/mtime columns even though the row's URL names the source."""

        deployment, session = build_deployment()
        link_docs(deployment, session, "/p", 1)
        source = deployment.shard_of("/p/doc0000.dat")
        deployment.rebalance_prefix("/p", other_shard(deployment, source))

        write_url = session.get_datalink(TABLE, {"doc_id": 0}, "body",
                                         access="write", ttl=1e9)
        with session.update_file(write_url, truncate=True) as update:
            update.replace(b"resized content after the move")
        row = deployment.host_db.select_one(TABLE, {"doc_id": 0}, lock=False)
        assert row["body_size"] == len(b"resized content after the move")

    def test_moving_prefix_refuses_links_with_retryable_error(self):
        deployment, session = build_deployment()
        link_docs(deployment, session, "/p", 1)
        source = deployment.shard_of("/p/doc0000.dat")
        dest = other_shard(deployment, source)
        observed = {}

        def probe():
            try:
                url = deployment.put_file(session, "/p/mid-move.dat", b"x")
                session.insert(TABLE, {"doc_id": 50, "body": url,
                                       "body_size": 0, "body_mtime": 0.0})
                observed["outcome"] = "linked"
            except PlacementError as error:
                observed["outcome"] = "refused"
                observed["error"] = str(error)

        deployment.rebalance_failpoints["rebalance:import"] = probe
        try:
            deployment.rebalance_prefix("/p", dest)
        finally:
            deployment.rebalance_failpoints.clear()
        assert observed["outcome"] == "refused"
        assert "being rebalanced" in observed["error"]
        # after the hand-off the same link succeeds, on the destination
        url = deployment.put_file(session, "/p/mid-move.dat", b"x")
        session.insert(TABLE, {"doc_id": 50, "body": url,
                               "body_size": 0, "body_mtime": 0.0})
        assert f"//{dest}/" in url

    def test_stale_engine_dispatch_redirects_and_commits(self):
        """An engine acting on a stale map dispatches to the old owner;
        the refusal redirects the batch to the new owner and the
        transaction still *commits* -- the refused server must not stay
        enlisted, or the prepare fan-out would abort it."""

        deployment, session = build_deployment()
        link_docs(deployment, session, "/p", 1)
        source = deployment.shard_of("/p/doc0000.dat")
        dest = other_shard(deployment, source)
        deployment.rebalance_prefix("/p", dest)

        engine = deployment.engine
        deployment.put_file(session, "/p/stale-dispatch.dat", b"late")
        host_txn = engine.begin()
        options = DatalinkOptions(control_mode=ControlMode.RFF,
                                  recovery=False)
        # Simulate the stale consumer: dispatch straight at the ex-owner.
        engine._dispatch_links(host_txn, source, None,
                               [("/p/stale-dispatch.dat", options)])
        assert host_txn.servers == {dest}
        engine.commit(host_txn)
        assert deployment.router.stale_epoch_redirects == 1
        dest_repo = deployment.replicas[dest].serving.dlfm.repository
        assert dest_repo.linked_file("/p/stale-dispatch.dat") is not None
        source_repo = deployment.replicas[source].serving.dlfm.repository
        assert source_repo.linked_file("/p/stale-dispatch.dat") is None

    def test_placement_stats_surface_epoch_and_overrides(self):
        deployment, session = build_deployment()
        link_docs(deployment, session, "/p", 1)
        source = deployment.shard_of("/p/doc0000.dat")
        dest = other_shard(deployment, source)
        deployment.rebalance_prefix("/p", dest)
        placement = deployment.stats()["routing"]["placement"]
        assert placement["epoch"] == 2
        assert placement["moves"] == 1
        assert placement["overrides"] == {"/p": dest}
        assert placement["moving"] == {}


class TestSessionRouting:
    def test_update_in_place_keeps_working_after_crash_failover(self):
        """The ROADMAP satellite: session file handles resolve through the
        router, so a write-token update of a failed-over shard reaches the
        promoted witness instead of the crashed primary."""

        deployment, session = build_deployment()
        link_docs(deployment, session, "/p", 1)
        shard = deployment.shard_of("/p/doc0000.dat")
        write_url = session.get_datalink(TABLE, {"doc_id": 0}, "body",
                                         access="write", ttl=1e9)
        deployment.crash_shard(shard)
        deployment.fail_over(shard)
        with session.update_file(write_url, truncate=True) as update:
            update.replace(b"updated on the promoted witness")
        read_url = session.get_datalink(TABLE, {"doc_id": 0}, "body",
                                        access="read", ttl=1e9)
        assert deployment.read_url(session, read_url) \
            == b"updated on the promoted witness"
        row = deployment.host_db.select_one(TABLE, {"doc_id": 0}, lock=False)
        assert row["body_size"] == len(b"updated on the promoted witness")

    def test_lease_moving_mid_update_aborts_with_retryable_error(self):
        # Follower reads off: in-place updates do not ship file bytes to
        # witnesses yet (the "mirror the data path" ROADMAP item), so the
        # post-retry reads must deterministically hit the serving node.
        deployment, session = build_deployment(follower_reads=False)
        link_docs(deployment, session, "/p", 1)
        shard = deployment.shard_of("/p/doc0000.dat")
        write_url = session.get_datalink(TABLE, {"doc_id": 0}, "body",
                                         access="write", ttl=1e9)
        update = session.update_file(write_url, truncate=True)
        update.begin()
        update.write(b"doomed")
        # a planned hand-off moves the lease mid-update
        replica = deployment.replicas[shard]
        replica.promote_to(replica.witness.name)
        with pytest.raises(LeaseMovedError):
            update.commit()
        assert update.aborted and not update.committed
        # the update rolled back and a retry against the new serving
        # node succeeds
        read_url = session.get_datalink(TABLE, {"doc_id": 0}, "body",
                                        access="read", ttl=1e9)
        assert deployment.read_url(session, read_url) == b"doc 0"
        retry_url = session.get_datalink(TABLE, {"doc_id": 0}, "body",
                                         access="write", ttl=1e9)
        with session.update_file(retry_url, truncate=True) as retry:
            retry.replace(b"retried on the new serving node")
        read_url = session.get_datalink(TABLE, {"doc_id": 0}, "body",
                                        access="read", ttl=1e9)
        assert deployment.read_url(session, read_url) \
            == b"retried on the new serving node"

    def test_session_read_url_routes_without_explicit_server(self):
        """Session.read_url with no server override resolves through the
        router: a crashed primary's URL reads from the promoted witness."""

        deployment, session = build_deployment(mode=ControlMode.RDB)
        link_docs(deployment, session, "/p", 1)
        shard = deployment.shard_of("/p/doc0000.dat")
        tokenized = session.get_datalink(TABLE, {"doc_id": 0}, "body",
                                         access="read", ttl=1e9)
        deployment.crash_shard(shard)
        deployment.fail_over(shard)
        assert session.read_url(tokenized) == b"doc 0"

    def test_straggler_write_to_ex_owner_names_the_new_owner(self):
        deployment, session = build_deployment()
        link_docs(deployment, session, "/p", 1)
        source = deployment.shard_of("/p/doc0000.dat")
        dest = other_shard(deployment, source)
        deployment.rebalance_prefix("/p", dest)
        with pytest.raises(PlacementEpochError) as excinfo:
            deployment.shard(source).dlfm.check_placement("/p/doc0000.dat")
        assert excinfo.value.owner == dest
        assert excinfo.value.prefix == "/p"
        assert excinfo.value.epoch == 2


class TestDualServe:
    """Reads of a moving prefix are served throughout the hand-off window."""

    POINTS = ("rebalance:export", "rebalance:archive",
              "rebalance:import", "rebalance:fence")

    def test_reads_of_moving_prefix_never_fail_mid_move(self):
        """Between rebalance_export's in-branch deletes and the commit the
        source repository has no rows for the moving files; the pre-export
        dual-serve snapshot must keep resolving their ino upcalls so every
        read inside the window succeeds (the move is read-invisible)."""

        deployment, session = build_deployment(mode=ControlMode.RDB)
        link_docs(deployment, session, "/p", 3)
        source = deployment.shard_of("/p/doc0000.dat")
        dest = other_shard(deployment, source)
        tokenized = [session.get_datalink(TABLE, {"doc_id": doc_id}, "body",
                                          access="read", ttl=1e9)
                     for doc_id in range(3)]
        served = {"reads": 0}

        def read_all():
            for doc_id, url in enumerate(tokenized):
                assert deployment.read_url(session, url) \
                    == f"doc {doc_id}".encode()
                served["reads"] += 1

        for point in self.POINTS:
            deployment.rebalance_failpoints[point] = read_all
        try:
            summary = deployment.rebalance_prefix("/p", dest)
        finally:
            deployment.rebalance_failpoints.clear()
        assert summary["moved"]
        assert served["reads"] == 3 * len(self.POINTS)
        # the snapshot is released once the hand-off resolves
        for node in deployment.replicas[source].nodes.values():
            assert not node.dlfm._moving_exports

    def test_snapshot_released_when_the_move_aborts(self):
        deployment, session = build_deployment(mode=ControlMode.RDB)
        link_docs(deployment, session, "/p", 1)
        source = deployment.shard_of("/p/doc0000.dat")
        dest = other_shard(deployment, source)

        def boom():
            raise PlacementError("injected mid-move failure")

        deployment.rebalance_failpoints["rebalance:import"] = boom
        try:
            with pytest.raises(PlacementError, match="injected"):
                deployment.rebalance_prefix("/p", dest)
        finally:
            deployment.rebalance_failpoints.clear()
        for node in deployment.replicas[source].nodes.values():
            assert not node.dlfm._moving_exports
        tokenized = session.get_datalink(TABLE, {"doc_id": 0}, "body",
                                         access="read", ttl=1e9)
        assert deployment.read_url(session, tokenized) == b"doc 0"


class TestSourceSweep:
    """Post-move GC: the moved prefix's bytes leave the fenced source."""

    def test_committed_move_sweeps_source_bytes(self):
        deployment, session = build_deployment()
        link_docs(deployment, session, "/p", 2)
        source = deployment.shard_of("/p/doc0000.dat")
        dest = other_shard(deployment, source)
        paths = ["/p/doc0000.dat", "/p/doc0001.dat"]
        source_nodes = list(deployment.replicas[source].nodes.values())
        for path in paths:
            assert any(node.files.exists(path) for node in source_nodes)

        summary = deployment.rebalance_prefix("/p", dest)
        assert summary["moved"]
        assert summary["swept_files"] > 0
        assert not summary["sweep_deferred"]
        assert not deployment.pending_sweeps
        # physical bytes are gone from every source node, present on dest
        for path in paths:
            for node in source_nodes:
                assert not node.files.exists(path)
            assert deployment.router.serving_server(dest).files.exists(path)
        # and the moved files still read end to end
        for doc_id in range(2):
            tokenized = session.get_datalink(TABLE, {"doc_id": doc_id},
                                             "body", access="read", ttl=1e9)
            assert deployment.read_url(session, tokenized) \
                == f"doc {doc_id}".encode()

    def test_sweep_defers_while_a_source_node_is_down(self):
        """The sweep refuses to delete while any source node is down (a
        partially swept prefix would leak on the recovering node); the
        entry stays pending and redrive_sweeps finishes the job."""

        deployment, session = build_deployment()
        link_docs(deployment, session, "/p", 1)
        source = deployment.shard_of("/p/doc0000.dat")
        dest = other_shard(deployment, source)
        deployment.rebalance_failpoints["rebalance:sweep"] = \
            lambda: deployment.crash_witness(source)
        try:
            summary = deployment.rebalance_prefix("/p", dest)
        finally:
            deployment.rebalance_failpoints.clear()
        assert summary["moved"]
        assert summary["sweep_deferred"]
        assert "/p" in deployment.pending_sweeps

        deployment.recover_witness(source)
        redriven = deployment.redrive_sweeps()
        assert redriven["/p"]["swept_files"] > 0
        assert not deployment.pending_sweeps
        for node in deployment.replicas[source].nodes.values():
            assert not node.files.exists("/p/doc0000.dat")
