"""Seeded property tests for the autonomous placement balancer.

Four governance properties, each driven by deterministic (seeded)
traffic so failures replay exactly:

* the per-tick move budget is never exceeded -- co-location moves for a
  merge count against the same budget;
* a moved prefix is never moved again inside its cooldown window;
* on a *uniform* workload the balancer converges: once the load is
  within tolerance it issues no further moves, however long the traffic
  keeps running;
* a split followed by a merge round-trips: every committed link still
  resolves, and the placement epoch only ever moves forward.
"""

import pytest

from repro.datalinks.balancer import BalancerConfig
from repro.datalinks.control_modes import ControlMode
from repro.datalinks.datalink_type import DatalinkOptions, datalink_column
from repro.datalinks.sharding import ShardedDataLinksDeployment
from repro.errors import PlacementError
from repro.storage.schema import Column, TableSchema
from repro.storage.values import DataType
from repro.workloads.generator import UniformChooser, ZipfChooser

TABLE = "balanced_docs"


class RoundRobinChooser:
    """Deterministically equal per-prefix traffic (zero sampling noise)."""

    def __init__(self, count):
        self.count = count
        self._next = 0

    def choose(self):
        index = self._next
        self._next = (self._next + 1) % self.count
        return index


def build_deployment(shards=3, prefixes=6, docs_per_prefix=2):
    """A replicated deployment with *docs_per_prefix* links per prefix."""

    deployment = ShardedDataLinksDeployment(
        shards, replication=True, witnesses=1,
        flush_policy="immediate", group_commit_window=1)
    deployment.create_table(TableSchema(TABLE, [
        Column("doc_id", DataType.INTEGER, nullable=False),
        datalink_column("body", DatalinkOptions(control_mode=ControlMode.RDB,
                                                recovery=True)),
    ], primary_key=("doc_id",)))
    session = deployment.session("prop", uid=7001)
    urls = {}
    doc_id = 0
    for prefix_index in range(prefixes):
        for sub in range(docs_per_prefix):
            path = f"/b{prefix_index:02d}/d{sub}/doc{doc_id:04d}.dat"
            url = deployment.put_file(session, path, f"doc {doc_id}".encode())
            session.insert(TABLE, {"doc_id": doc_id, "body": url})
            urls[doc_id] = url
            doc_id += 1
    deployment.system.run_archiver()
    deployment.system.flush_logs()
    return deployment, session, urls


def drive_reads(deployment, session, chooser, prefixes, count,
                docs_per_prefix=2):
    """*count* routed reads whose prefix is picked by *chooser*."""

    for index in range(count):
        prefix_index = chooser.choose()
        doc_id = prefix_index * docs_per_prefix + index % docs_per_prefix
        url = session.get_datalink(TABLE, {"doc_id": doc_id}, "body",
                                   access="read", ttl=1e9)
        deployment.read_url(session, url)


def assert_all_readable(deployment, session, urls):
    for doc_id in urls:
        url = session.get_datalink(TABLE, {"doc_id": doc_id}, "body",
                                   access="read", ttl=1e9)
        assert deployment.read_url(session, url) == f"doc {doc_id}".encode()


class TestIncrementalWindows:
    """The router's per-window deltas partition the noted traffic.

    ``take_traffic_window`` must agree exactly with the reference the
    balancer used to compute -- diffing snapshots of the cumulative
    ``prefix_reads``/``prefix_writes`` dicts -- for any drain schedule.
    """

    def test_windows_match_cumulative_diffs(self):
        deployment, session, urls = build_deployment()
        router = deployment.router
        chooser = ZipfChooser(self_count := 6, theta=1.2, seed=11)
        last_reads: dict[str, int] = {}
        last_writes: dict[str, int] = {}
        for round_index in range(5):
            drive_reads(deployment, session, chooser, self_count,
                        count=7 + round_index)
            expected: dict[str, int] = {}
            for current, last in ((router.prefix_reads, last_reads),
                                  (router.prefix_writes, last_writes)):
                for prefix, count in current.items():
                    delta = count - last.get(prefix, 0)
                    if delta > 0:
                        expected[prefix] = expected.get(prefix, 0) + delta
            last_reads = dict(router.prefix_reads)
            last_writes = dict(router.prefix_writes)
            assert router.take_traffic_window() == expected

    def test_drained_windows_partition_the_traffic(self):
        deployment, session, urls = build_deployment()
        router = deployment.router
        chooser = RoundRobinChooser(6)
        drained: dict[str, int] = {}
        for _ in range(3):
            drive_reads(deployment, session, chooser, 6, count=9)
            for prefix, count in router.take_traffic_window().items():
                drained[prefix] = drained.get(prefix, 0) + count
        # Nothing noted since the last drain: the window is empty ...
        assert router.take_traffic_window() == {}
        # ... and everything ever noted is in exactly one drained window.
        cumulative: dict[str, int] = {}
        for counters in (router.prefix_reads, router.prefix_writes):
            for prefix, count in counters.items():
                cumulative[prefix] = cumulative.get(prefix, 0) + count
        assert drained == cumulative


class TestBalancerGovernance:
    PREFIXES = 6

    def run_skewed(self, move_budget, cooldown_ticks, ticks=8, seed=42):
        deployment, session, urls = build_deployment(prefixes=self.PREFIXES)
        balancer = deployment.enable_balancer(BalancerConfig(
            window_ops_min=6, move_budget=move_budget,
            cooldown_ticks=cooldown_ticks, imbalance_tolerance=1.05,
            split_threshold=0.9))
        chooser = ZipfChooser(self.PREFIXES, theta=1.2, seed=seed)
        for _ in range(ticks):
            drive_reads(deployment, session, chooser, self.PREFIXES, 24)
            balancer.tick()
        return deployment, session, urls, balancer

    @pytest.mark.parametrize("move_budget", [1, 2])
    def test_move_budget_never_exceeded(self, move_budget):
        deployment, session, urls, balancer = self.run_skewed(
            move_budget=move_budget, cooldown_ticks=1)
        assert balancer.moves_issued > 0        # the balancer did act
        for summary in balancer.history:
            assert len(summary["moves"]) <= move_budget
        assert balancer.stats()["max_moves_per_tick"] <= move_budget
        assert_all_readable(deployment, session, urls)

    @pytest.mark.parametrize("cooldown_ticks", [2, 3])
    def test_cooldown_between_moves_of_one_prefix(self, cooldown_ticks):
        deployment, session, urls, balancer = self.run_skewed(
            move_budget=2, cooldown_ticks=cooldown_ticks, ticks=10)
        last_moved: dict[str, int] = {}
        for summary in balancer.history:
            for move in summary["moves"]:
                prefix = move["prefix"]
                if prefix in last_moved:
                    assert summary["tick"] - last_moved[prefix] \
                        >= cooldown_ticks, (
                        f"{prefix} moved at tick {last_moved[prefix]} and "
                        f"again at {summary['tick']} inside the "
                        f"{cooldown_ticks}-tick cooldown")
                last_moved[prefix] = summary["tick"]
        assert_all_readable(deployment, session, urls)

    def test_uniform_workload_converges_to_no_moves(self):
        """Equal per-prefix traffic: after at most a few corrective moves
        (hash placement can be lumpy), the strict-improvement rule makes
        the balancer go quiet -- and stay quiet while traffic continues."""

        deployment, session, urls = build_deployment(prefixes=self.PREFIXES)
        balancer = deployment.enable_balancer(BalancerConfig(
            window_ops_min=6, move_budget=2, cooldown_ticks=1,
            imbalance_tolerance=1.25))
        chooser = RoundRobinChooser(self.PREFIXES)
        moves_by_tick = []
        for _ in range(10):
            drive_reads(deployment, session, chooser, self.PREFIXES, 24)
            moves_by_tick.append(len(balancer.tick()["moves"]))
        # quiet tail: the last ticks issue no moves even though traffic
        # kept flowing through them
        assert moves_by_tick[-3:] == [0, 0, 0], moves_by_tick
        assert balancer.splits == 0
        assert_all_readable(deployment, session, urls)

    def test_noisy_uniform_workload_does_not_thrash(self):
        """Randomly-uniform traffic jitters the per-window loads, so the
        tolerance band has to absorb the noise: with a band wider than
        the sampling error the balancer settles instead of chasing it."""

        deployment, session, urls = build_deployment(prefixes=self.PREFIXES)
        balancer = deployment.enable_balancer(BalancerConfig(
            window_ops_min=6, move_budget=2, cooldown_ticks=1,
            imbalance_tolerance=2.0))
        chooser = UniformChooser(self.PREFIXES, seed=7)
        for _ in range(10):
            drive_reads(deployment, session, chooser, self.PREFIXES, 24)
            balancer.tick()
        assert balancer.moves_issued <= 3, balancer.history
        assert_all_readable(deployment, session, urls)

    def test_tick_without_traffic_does_nothing(self):
        deployment, session, urls, balancer = self.run_skewed(
            move_budget=2, cooldown_ticks=1, ticks=2)
        before = balancer.moves_issued
        summary = balancer.tick()       # empty window
        assert not summary["acted"]
        assert summary["moves"] == [] and summary["splits"] == []
        assert balancer.moves_issued == before


class TestSplitMergeRoundTrip:
    def test_split_move_merge_preserves_every_link(self):
        """Split a prefix, scatter its sub-prefixes, bring them home,
        merge -- every committed link readable at every step, epoch
        strictly monotone."""

        deployment, session, urls = build_deployment(prefixes=3,
                                                     docs_per_prefix=4)
        pmap = deployment.router.placement
        prefix = "/b00"
        owner = pmap.owner_of(prefix)
        other = next(name for name in deployment.shard_names
                     if name != owner)
        epochs = [pmap.epoch]

        split = deployment.split_prefix(prefix)
        epochs.append(pmap.epoch)
        assert split["pins"] and all(shard == owner
                                     for shard in split["pins"].values())
        assert_all_readable(deployment, session, urls)

        # scatter: one sub-prefix to another shard
        sub = sorted(split["pins"])[0]
        assert deployment.rebalance_prefix(sub, other)["moved"]
        epochs.append(pmap.epoch)
        assert_all_readable(deployment, session, urls)
        # a spread subtree refuses to merge
        with pytest.raises(PlacementError, match="co-locate"):
            deployment.merge_prefix(prefix)

        # bring it home and merge
        assert deployment.rebalance_prefix(sub, owner)["moved"]
        epochs.append(pmap.epoch)
        merged = deployment.merge_prefix(prefix)
        epochs.append(pmap.epoch)
        assert merged["shard"] == owner
        assert prefix not in pmap.split_depths
        assert pmap.prefix_of(f"{prefix}/d0/doc0000.dat") == prefix
        assert_all_readable(deployment, session, urls)
        assert epochs == sorted(set(epochs)), epochs     # strictly monotone

    def test_merged_prefix_is_movable_again(self):
        deployment, session, urls = build_deployment(prefixes=2,
                                                     docs_per_prefix=3)
        pmap = deployment.router.placement
        prefix = "/b01"
        owner = pmap.owner_of(prefix)
        other = next(name for name in deployment.shard_names
                     if name != owner)
        deployment.split_prefix(prefix)
        deployment.merge_prefix(prefix)
        assert deployment.rebalance_prefix(prefix, other)["moved"]
        assert pmap.owner_of(prefix) == other
        assert_all_readable(deployment, session, urls)
