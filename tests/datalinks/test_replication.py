"""Unit tests for the shard-replication subsystem.

Covers the pieces in isolation -- WAL shipping and lag, witness apply
semantics (commit/abort/in-doubt), epoch fencing, content mirroring and
archive-based restore at promotion -- while the crash matrix and the seeded
property test (test_recovery_and_backup.py / test_shard_properties.py)
cover the composed failure behaviour.
"""

import pytest

from repro.datalinks.control_modes import ControlMode
from repro.datalinks.datalink_type import DatalinkOptions, datalink_column
from repro.datalinks.replication import EpochGuard, EpochRegistry
from repro.datalinks.sharding import ShardedDataLinksDeployment
from repro.errors import DaemonUnavailableError, FencedNodeError, ReproError
from repro.storage.schema import Column, TableSchema
from repro.storage.values import DataType
from repro.util.urls import parse_url

TABLE = "replica_docs"


def build_deployment(shards=2, mode=ControlMode.RFF, recovery=False,
                     flush_policy="immediate", group_commit_window=1):
    deployment = ShardedDataLinksDeployment(
        shards, replication=True, flush_policy=flush_policy,
        group_commit_window=group_commit_window)
    deployment.create_table(TableSchema(TABLE, [
        Column("doc_id", DataType.INTEGER, nullable=False),
        datalink_column("body", DatalinkOptions(control_mode=mode,
                                                recovery=recovery)),
    ], primary_key=("doc_id",)))
    return deployment, deployment.session("alice", uid=1001)


def path_on(deployment, shard: str, tag: str = "f") -> str:
    """A fresh path the router places on *shard*."""

    for index in range(1000):
        path = f"/{tag}{index}/{tag}{index}.dat"
        if deployment.shard_of(path) == shard:
            return path
    raise AssertionError(f"no prefix found for shard {shard}")


def link(deployment, session, doc_id, path, content=b"payload"):
    url = deployment.put_file(session, path, content)
    session.insert(TABLE, {"doc_id": doc_id, "body": url})
    return url


class TestEpochs:
    def test_registry_promote_bumps_and_is_idempotent(self):
        registry = EpochRegistry()
        assert registry.register("s0", "a") == 1
        assert registry.promote("s0", "a") == 1       # no-op: already serving
        assert registry.promote("s0", "b") == 2
        assert registry.promote("s0", "b") == 2
        assert registry.promote("s0", "a") == 3
        assert registry.serving_node("s0") == "a"

    def test_guard_fences_the_non_serving_node(self):
        registry = EpochRegistry()
        registry.register("s0", "a")
        guard_a = EpochGuard(registry, "s0", "a")
        guard_b = EpochGuard(registry, "s0", "b")
        guard_a.check()
        assert guard_b.fenced
        with pytest.raises(FencedNodeError):
            guard_b.check()
        registry.promote("s0", "b")
        guard_b.check()
        with pytest.raises(FencedNodeError):
            guard_a.check()


class TestWalShipping:
    def test_commits_stream_continuously_to_the_witness(self):
        deployment, session = build_deployment()
        replica = deployment.replicas["shard0"]
        link(deployment, session, 0, path_on(deployment, "shard0"))
        assert replica.shipper.lag() == 0
        witness_paths = {row["path"] for row in
                         replica.witness.dlfm.repository.linked_files()}
        primary_paths = deployment.linked_paths("shard0")
        assert witness_paths == primary_paths and witness_paths

    def test_group_commit_ships_on_window_drain(self):
        deployment, session = build_deployment(flush_policy="group",
                                               group_commit_window=4)
        replica = deployment.replicas["shard0"]
        host_txn = deployment.begin()
        url = deployment.put_file(session, path_on(deployment, "shard0"),
                                  b"grouped")
        deployment.engine.insert(TABLE, {"doc_id": 0, "body": url}, host_txn)
        deployment.commit(host_txn)            # enqueued, not yet durable
        deployment.drain()
        # The branch COMMIT sits in the repository's group-commit window:
        # not durable at the primary, so -- correctly -- not on the witness.
        witness_repo = replica.witness.dlfm.repository
        assert {row["path"] for row in witness_repo.linked_files()} == set()
        deployment.system.flush_logs()         # window drains -> records ship
        assert replica.shipper.lag() == 0
        assert {row["path"] for row in
                replica.witness.dlfm.repository.linked_files()} == \
            deployment.linked_paths("shard0")

    def test_witness_outage_accumulates_lag_then_resyncs(self):
        deployment, session = build_deployment()
        replica = deployment.replicas["shard0"]
        deployment.crash_witness("shard0")
        link(deployment, session, 0, path_on(deployment, "shard0", "down"))
        assert replica.shipper.ship_errors > 0
        assert replica.shipper.lag() > 0
        assert replica.mirror_misses == 1   # a down witness misses the mirror
        # the primary committed regardless of the dead witness
        assert deployment.linked_paths("shard0")
        deployment.recover_witness("shard0")
        assert replica.shipper.lag() == 0
        assert {row["path"] for row in
                replica.witness.dlfm.repository.linked_files()} == \
            deployment.linked_paths("shard0")

    def test_witness_and_primary_both_down_does_not_wipe_witness(self):
        """Recovering a witness while the primary is also down must not copy
        the crashed primary's (reset) catalog over the witness; the resync
        is deferred until the primary is back."""

        deployment, session = build_deployment()
        link(deployment, session, 0, path_on(deployment, "shard0", "both"))
        deployment.crash_witness("shard0")
        deployment.crash_shard("shard0")
        summary = deployment.recover_witness("shard0")
        assert summary["resync"] == {"resynced": False,
                                     "deferred": "primary is down"}
        deployment.recover_shard("shard0")
        deployment.replicas["shard0"].resync()
        assert {row["path"] for row in
                deployment.replicas["shard0"].witness.dlfm.repository
                .linked_files()} == deployment.linked_paths("shard0")

    def test_archive_jobs_run_on_the_primary_only(self):
        """The witness repository is redo-only: its replicated archive_queue
        rows are executed by the primary, and the completion (plus the
        file_versions row) replicates over instead of being produced
        locally from the witness's mirror."""

        deployment, session = build_deployment(recovery=True)
        replica = deployment.replicas["shard0"]
        path = path_on(deployment, "shard0", "aj")
        link(deployment, session, 0, path)
        assert replica.witness.dlfm.process_archive_jobs() == 0
        completed = deployment.system.run_archiver()
        assert completed == 1   # one job system-wide, on the primary
        deployment.system.flush_logs()
        primary_versions = deployment.shard("shard0").dlfm.repository.versions(path)
        witness_versions = replica.witness.dlfm.repository.versions(path)
        assert [v["archive_id"] for v in witness_versions] == \
            [v["archive_id"] for v in primary_versions]

    def test_aborted_transactions_never_reach_witness_heaps(self):
        deployment, session = build_deployment()
        replica = deployment.replicas["shard0"]
        path = path_on(deployment, "shard0", "abort")
        url = deployment.put_file(session, path, b"doomed")
        session.begin()
        session.insert(TABLE, {"doc_id": 9, "body": url})
        session.abort()
        deployment.system.flush_logs()
        assert path not in {row["path"] for row in
                            replica.witness.dlfm.repository.linked_files()}


class TestFailover:
    def test_reads_fail_over_with_token_validation(self):
        deployment, session = build_deployment(mode=ControlMode.RDB)
        path = path_on(deployment, "shard0", "rdb")
        link(deployment, session, 0, path, b"token protected")
        url = session.get_datalink(TABLE, {"doc_id": 0}, "body",
                                   access="read", ttl=1e9)
        assert deployment.read_url(session, url) == b"token protected"
        deployment.crash_shard("shard0")
        with pytest.raises(DaemonUnavailableError):
            deployment.read_url(session, url)
        deployment.fail_over("shard0")
        assert deployment.read_url(session, url) == b"token protected"

    def test_fenced_ex_primary_refuses_token_validation(self):
        deployment, session = build_deployment(mode=ControlMode.RDB)
        path = path_on(deployment, "shard0", "fence")
        link(deployment, session, 0, path)
        url = session.get_datalink(TABLE, {"doc_id": 0}, "body",
                                   access="read", ttl=1e9)
        deployment.crash_shard("shard0")
        deployment.fail_over("shard0")
        deployment.recover_shard("shard0")
        manager = deployment.shard("shard0").dlfm
        parsed = parse_url(url)
        ino = manager.repository.linked_file(parsed.path)["ino"]
        with pytest.raises(FencedNodeError):
            manager.upcall_validate_token(ino, parsed.token, 1001)
        with pytest.raises(FencedNodeError):
            manager.upcall_check_open(ino, False, 1001)
        # close processing is fenced too: an ex-primary must not commit
        # close-time metadata into the host database while the witness serves
        with pytest.raises(FencedNodeError):
            manager.upcall_file_closed(ino, True, 1001)

    def test_fenced_ex_primary_refuses_link_writes(self):
        """Engine-facing ops are fenced too: a link committed against a
        recovered ex-primary (whose WAL stream is paused) would split-brain
        against the serving witness."""

        deployment, session = build_deployment()
        link(deployment, session, 0, path_on(deployment, "shard0", "pre"))
        deployment.crash_shard("shard0")
        deployment.fail_over("shard0")
        deployment.recover_shard("shard0")

        path = path_on(deployment, "shard0", "split")
        url = deployment.put_file(session, path, b"late write")
        with pytest.raises(ReproError):
            session.insert(TABLE, {"doc_id": 77, "body": url})
        # nothing leaked: the host aborted and the fenced node took no branch
        assert deployment.host_db.select(TABLE, {"doc_id": 77}, lock=False) == []
        assert deployment.shard("shard0").dlfm.repository.linked_file(path) is None

    def test_witness_enforces_tokens_during_healthy_operation(self):
        """The witness applies the link's control-mode constraints as rows
        replicate: a bare (tokenless) URL read through the witness is
        refused exactly like on the primary, with no failover involved."""

        deployment, session = build_deployment(mode=ControlMode.RDB)
        path = path_on(deployment, "shard0", "sec")
        bare_url = link(deployment, session, 0, path, b"top secret")
        stranger = deployment.session("stranger", uid=6666)
        with pytest.raises(ReproError):
            stranger.read_url(bare_url)
        with pytest.raises(ReproError):
            stranger.read_url(bare_url, server="shard0-r")

    def test_promote_refuses_unsynced_witness(self):
        """A witness that lost its replica state (crash) and could not
        resync (primary down too) must not be promoted to serve an empty
        repository; recovery order resolves it."""

        from repro.errors import ReplicationError

        deployment, session = build_deployment()
        link(deployment, session, 0, path_on(deployment, "shard0", "sync"))
        deployment.crash_witness("shard0")
        deployment.crash_shard("shard0")
        deployment.recover_witness("shard0")      # resync deferred
        with pytest.raises(ReplicationError):
            deployment.fail_over("shard0")
        deployment.recover_shard("shard0")
        deployment.replicas["shard0"].resync()
        deployment.crash_shard("shard0")
        summary = deployment.fail_over("shard0")  # now legitimate
        assert summary["promoted"]
        assert deployment.linked_paths("shard0")

    def test_fail_back_returns_service_and_refences_witness(self):
        deployment, session = build_deployment(mode=ControlMode.RDB)
        path = path_on(deployment, "shard0", "back")
        link(deployment, session, 0, path, b"original")
        deployment.crash_shard("shard0")
        deployment.fail_over("shard0")
        summary = deployment.fail_back("shard0")
        assert summary["serving"] == "shard0"
        url = session.get_datalink(TABLE, {"doc_id": 0}, "body",
                                   access="read", ttl=1e9)
        assert deployment.read_url(session, url) == b"original"
        assert deployment.replicas["shard0"].witness.dlfm.is_fenced()
        assert not deployment.shard("shard0").dlfm.is_fenced()

    def test_promotion_restores_missing_content_from_archive(self):
        deployment, session = build_deployment(mode=ControlMode.RDB,
                                               recovery=True)
        replica = deployment.replicas["shard0"]
        path = path_on(deployment, "shard0", "arch")
        link(deployment, session, 0, path, b"archived content")
        deployment.system.run_archiver()
        # lose the witness's mirrored copy (e.g. the mirror lagged)
        replica.witness.raw_lfs.unlink(path, replica.witness.files.dlfm_cred)
        deployment.crash_shard("shard0")
        summary = deployment.fail_over("shard0")
        assert path in summary["restored_files"]
        url = session.get_datalink(TABLE, {"doc_id": 0}, "body",
                                   access="read", ttl=1e9)
        assert deployment.read_url(session, url) == b"archived content"

    def test_unreplicated_deployment_refuses_failover(self):
        deployment = ShardedDataLinksDeployment(2)
        with pytest.raises(Exception):
            deployment.fail_over("shard0")

    def test_stats_surface_replication_state(self):
        deployment, session = build_deployment()
        link(deployment, session, 0, path_on(deployment, "shard0"))
        stats = deployment.stats()["replication"]
        assert stats["shard0"]["serving"] == "shard0"
        assert stats["shard0"]["shipped_records"] > 0
        deployment.crash_shard("shard0")
        deployment.fail_over("shard0")
        stats = deployment.stats()["replication"]
        assert stats["shard0"]["serving"] == "shard0-r"
        assert stats["shard0"]["failed_over"]
        assert stats["shard0"]["epoch"] == 2


class TestSessionServerOverride:
    def test_read_url_accepts_explicit_server(self):
        deployment, session = build_deployment()
        path = path_on(deployment, "shard0", "ovr")
        url = link(deployment, session, 0, path, b"mirrored")
        assert session.read_url(url) == b"mirrored"
        assert session.read_url(url, server="shard0-r") == b"mirrored"
