"""Unit tests for the shard-replication subsystem.

Covers the pieces in isolation -- WAL shipping and lag, witness apply
semantics (commit/abort/in-doubt), epoch fencing, content mirroring and
archive-based restore at promotion -- while the crash matrix and the seeded
property test (test_recovery_and_backup.py / test_shard_properties.py)
cover the composed failure behaviour.
"""

import pytest

from repro.datalinks.control_modes import ControlMode
from repro.datalinks.datalink_type import DatalinkOptions, datalink_column
from repro.datalinks.replication import EpochGuard, EpochRegistry
from repro.datalinks.sharding import ShardedDataLinksDeployment
from repro.errors import DaemonUnavailableError, FencedNodeError, ReproError
from repro.storage.schema import Column, TableSchema
from repro.storage.values import DataType
from repro.util.urls import parse_url

TABLE = "replica_docs"


def build_deployment(shards=2, mode=ControlMode.RFF, recovery=False,
                     flush_policy="immediate", group_commit_window=1):
    deployment = ShardedDataLinksDeployment(
        shards, replication=True, flush_policy=flush_policy,
        group_commit_window=group_commit_window)
    deployment.create_table(TableSchema(TABLE, [
        Column("doc_id", DataType.INTEGER, nullable=False),
        datalink_column("body", DatalinkOptions(control_mode=mode,
                                                recovery=recovery)),
    ], primary_key=("doc_id",)))
    return deployment, deployment.session("alice", uid=1001)


def path_on(deployment, shard: str, tag: str = "f") -> str:
    """A fresh path the router places on *shard*."""

    for index in range(1000):
        path = f"/{tag}{index}/{tag}{index}.dat"
        if deployment.shard_of(path) == shard:
            return path
    raise AssertionError(f"no prefix found for shard {shard}")


def link(deployment, session, doc_id, path, content=b"payload"):
    url = deployment.put_file(session, path, content)
    session.insert(TABLE, {"doc_id": doc_id, "body": url})
    return url


class TestEpochs:
    def test_registry_promote_bumps_and_is_idempotent(self):
        registry = EpochRegistry()
        assert registry.register("s0", "a") == 1
        assert registry.promote("s0", "a") == 1       # no-op: already serving
        assert registry.promote("s0", "b") == 2
        assert registry.promote("s0", "b") == 2
        assert registry.promote("s0", "a") == 3
        assert registry.serving_node("s0") == "a"

    def test_guard_fences_the_non_serving_node(self):
        registry = EpochRegistry()
        registry.register("s0", "a")
        guard_a = EpochGuard(registry, "s0", "a")
        guard_b = EpochGuard(registry, "s0", "b")
        guard_a.check()
        assert guard_b.fenced
        with pytest.raises(FencedNodeError):
            guard_b.check()
        registry.promote("s0", "b")
        guard_b.check()
        with pytest.raises(FencedNodeError):
            guard_a.check()


class TestWalShipping:
    def test_commits_stream_continuously_to_the_witness(self):
        deployment, session = build_deployment()
        replica = deployment.replicas["shard0"]
        link(deployment, session, 0, path_on(deployment, "shard0"))
        assert replica.shipper.lag() == 0
        witness_paths = {row["path"] for row in
                         replica.witness.dlfm.repository.linked_files()}
        primary_paths = deployment.linked_paths("shard0")
        assert witness_paths == primary_paths and witness_paths

    def test_group_commit_ships_on_window_drain(self):
        deployment, session = build_deployment(flush_policy="group",
                                               group_commit_window=4)
        replica = deployment.replicas["shard0"]
        host_txn = deployment.begin()
        url = deployment.put_file(session, path_on(deployment, "shard0"),
                                  b"grouped")
        deployment.engine.insert(TABLE, {"doc_id": 0, "body": url}, host_txn)
        deployment.commit(host_txn)            # enqueued, not yet durable
        deployment.drain()
        # The branch COMMIT sits in the repository's group-commit window:
        # not durable at the primary, so -- correctly -- not on the witness.
        witness_repo = replica.witness.dlfm.repository
        assert {row["path"] for row in witness_repo.linked_files()} == set()
        deployment.system.flush_logs()         # window drains -> records ship
        assert replica.shipper.lag() == 0
        assert {row["path"] for row in
                replica.witness.dlfm.repository.linked_files()} == \
            deployment.linked_paths("shard0")

    def test_witness_outage_accumulates_lag_then_resyncs(self):
        deployment, session = build_deployment()
        replica = deployment.replicas["shard0"]
        deployment.crash_witness("shard0")
        link(deployment, session, 0, path_on(deployment, "shard0", "down"))
        assert replica.shipper.ship_errors > 0
        assert replica.shipper.lag() > 0
        assert replica.mirror_misses == 1   # a down witness misses the mirror
        # the primary committed regardless of the dead witness
        assert deployment.linked_paths("shard0")
        deployment.recover_witness("shard0")
        assert replica.shipper.lag() == 0
        assert {row["path"] for row in
                replica.witness.dlfm.repository.linked_files()} == \
            deployment.linked_paths("shard0")

    def test_witness_and_primary_both_down_does_not_wipe_witness(self):
        """Recovering a witness while the primary is also down must not copy
        the crashed primary's (reset) catalog over the witness; the resync
        is deferred until the primary is back."""

        deployment, session = build_deployment()
        link(deployment, session, 0, path_on(deployment, "shard0", "both"))
        deployment.crash_witness("shard0")
        deployment.crash_shard("shard0")
        summary = deployment.recover_witness("shard0")
        assert summary["resync"] == {"resynced": False,
                                     "deferred": "primary is down"}
        deployment.recover_shard("shard0")
        deployment.replicas["shard0"].resync()
        assert {row["path"] for row in
                deployment.replicas["shard0"].witness.dlfm.repository
                .linked_files()} == deployment.linked_paths("shard0")

    def test_archive_jobs_run_on_the_primary_only(self):
        """The witness repository is redo-only: its replicated archive_queue
        rows are executed by the primary, and the completion (plus the
        file_versions row) replicates over instead of being produced
        locally from the witness's mirror."""

        deployment, session = build_deployment(recovery=True)
        replica = deployment.replicas["shard0"]
        path = path_on(deployment, "shard0", "aj")
        link(deployment, session, 0, path)
        assert replica.witness.dlfm.process_archive_jobs() == 0
        completed = deployment.system.run_archiver()
        assert completed == 1   # one job system-wide, on the primary
        deployment.system.flush_logs()
        primary_versions = deployment.shard("shard0").dlfm.repository.versions(path)
        witness_versions = replica.witness.dlfm.repository.versions(path)
        assert [v["archive_id"] for v in witness_versions] == \
            [v["archive_id"] for v in primary_versions]

    def test_aborted_transactions_never_reach_witness_heaps(self):
        deployment, session = build_deployment()
        replica = deployment.replicas["shard0"]
        path = path_on(deployment, "shard0", "abort")
        url = deployment.put_file(session, path, b"doomed")
        session.begin()
        session.insert(TABLE, {"doc_id": 9, "body": url})
        session.abort()
        deployment.system.flush_logs()
        assert path not in {row["path"] for row in
                            replica.witness.dlfm.repository.linked_files()}


class TestFailover:
    def test_reads_fail_over_with_token_validation(self):
        deployment, session = build_deployment(mode=ControlMode.RDB)
        path = path_on(deployment, "shard0", "rdb")
        link(deployment, session, 0, path, b"token protected")
        url = session.get_datalink(TABLE, {"doc_id": 0}, "body",
                                   access="read", ttl=1e9)
        assert deployment.read_url(session, url) == b"token protected"
        deployment.crash_shard("shard0")
        with pytest.raises(DaemonUnavailableError):
            deployment.read_url(session, url)
        deployment.fail_over("shard0")
        assert deployment.read_url(session, url) == b"token protected"

    def test_fenced_ex_primary_refuses_token_validation(self):
        deployment, session = build_deployment(mode=ControlMode.RDB)
        path = path_on(deployment, "shard0", "fence")
        link(deployment, session, 0, path)
        url = session.get_datalink(TABLE, {"doc_id": 0}, "body",
                                   access="read", ttl=1e9)
        deployment.crash_shard("shard0")
        deployment.fail_over("shard0")
        deployment.recover_shard("shard0")
        manager = deployment.shard("shard0").dlfm
        parsed = parse_url(url)
        ino = manager.repository.linked_file(parsed.path)["ino"]
        with pytest.raises(FencedNodeError):
            manager.upcall_validate_token(ino, parsed.token, 1001)
        with pytest.raises(FencedNodeError):
            manager.upcall_check_open(ino, False, 1001)
        # close processing is fenced too: an ex-primary must not commit
        # close-time metadata into the host database while the witness serves
        with pytest.raises(FencedNodeError):
            manager.upcall_file_closed(ino, True, 1001)

    def test_fenced_ex_primary_refuses_link_writes(self):
        """Engine-facing ops are fenced at the DLFM: a link branch taken on
        a recovered ex-primary (whose WAL stream is paused) would
        split-brain against the serving witness.  The *routed* write path
        succeeds -- that is writable failover -- because the router sends
        it to the promoted witness, never the fenced node."""

        deployment, session = build_deployment()
        link(deployment, session, 0, path_on(deployment, "shard0", "pre"))
        deployment.crash_shard("shard0")
        deployment.fail_over("shard0")
        deployment.recover_shard("shard0")

        # Split-brain guard: talking to the fenced ex-primary directly (as
        # a mis-routed engine would) is refused branch by branch.
        fenced = deployment.shard("shard0").dlfm
        with pytest.raises(FencedNodeError):
            fenced.begin_branch(4242)
        with pytest.raises(FencedNodeError):
            fenced.link_file(4242, "/split/x.dat", None)
        with pytest.raises(FencedNodeError):
            fenced.prepare_branch(4242)

        # Writable failover: the same logical write routed through the
        # deployment lands on the promoted witness and commits.
        path = path_on(deployment, "shard0", "split")
        url = deployment.put_file(session, path, b"late write")
        session.insert(TABLE, {"doc_id": 77, "body": url})
        assert len(deployment.host_db.select(TABLE, {"doc_id": 77},
                                             lock=False)) == 1
        witness_repo = deployment.replicas["shard0"].witness.dlfm.repository
        assert witness_repo.linked_file(path) is not None
        # the fenced ex-primary took no branch and holds no such link
        assert deployment.shard("shard0").dlfm.repository.linked_file(path) is None

    def test_witness_enforces_tokens_during_healthy_operation(self):
        """The witness applies the link's control-mode constraints as rows
        replicate: a bare (tokenless) URL read through the witness is
        refused exactly like on the primary, with no failover involved."""

        deployment, session = build_deployment(mode=ControlMode.RDB)
        path = path_on(deployment, "shard0", "sec")
        bare_url = link(deployment, session, 0, path, b"top secret")
        stranger = deployment.session("stranger", uid=6666)
        with pytest.raises(ReproError):
            stranger.read_url(bare_url)
        with pytest.raises(ReproError):
            stranger.read_url(bare_url, server="shard0-r")

    def test_promote_refuses_unsynced_witness(self):
        """A witness that lost its replica state (crash) and could not
        resync (primary down too) must not be promoted to serve an empty
        repository; recovery order resolves it."""

        from repro.errors import ReplicationError

        deployment, session = build_deployment()
        link(deployment, session, 0, path_on(deployment, "shard0", "sync"))
        deployment.crash_witness("shard0")
        deployment.crash_shard("shard0")
        deployment.recover_witness("shard0")      # resync deferred
        with pytest.raises(ReplicationError):
            deployment.fail_over("shard0")
        deployment.recover_shard("shard0")
        deployment.replicas["shard0"].resync()
        deployment.crash_shard("shard0")
        summary = deployment.fail_over("shard0")  # now legitimate
        assert summary["promoted"]
        assert deployment.linked_paths("shard0")

    def test_fail_back_returns_service_and_refences_witness(self):
        deployment, session = build_deployment(mode=ControlMode.RDB)
        path = path_on(deployment, "shard0", "back")
        link(deployment, session, 0, path, b"original")
        deployment.crash_shard("shard0")
        deployment.fail_over("shard0")
        summary = deployment.fail_back("shard0")
        assert summary["serving"] == "shard0"
        url = session.get_datalink(TABLE, {"doc_id": 0}, "body",
                                   access="read", ttl=1e9)
        assert deployment.read_url(session, url) == b"original"
        assert deployment.replicas["shard0"].witness.dlfm.is_fenced()
        assert not deployment.shard("shard0").dlfm.is_fenced()

    def test_promotion_restores_missing_content_from_archive(self):
        deployment, session = build_deployment(mode=ControlMode.RDB,
                                               recovery=True)
        replica = deployment.replicas["shard0"]
        path = path_on(deployment, "shard0", "arch")
        link(deployment, session, 0, path, b"archived content")
        deployment.system.run_archiver()
        # lose the witness's mirrored copy (e.g. the mirror lagged)
        replica.witness.raw_lfs.unlink(path, replica.witness.files.dlfm_cred)
        deployment.crash_shard("shard0")
        summary = deployment.fail_over("shard0")
        assert path in summary["restored_files"]
        url = session.get_datalink(TABLE, {"doc_id": 0}, "body",
                                   access="read", ttl=1e9)
        assert deployment.read_url(session, url) == b"archived content"

    def test_unreplicated_deployment_refuses_failover(self):
        deployment = ShardedDataLinksDeployment(2)
        with pytest.raises(Exception):
            deployment.fail_over("shard0")

    def test_stats_surface_replication_state(self):
        deployment, session = build_deployment()
        link(deployment, session, 0, path_on(deployment, "shard0"))
        stats = deployment.stats()["replication"]
        assert stats["shard0"]["serving"] == "shard0"
        assert stats["shard0"]["shipped_records"] > 0
        deployment.crash_shard("shard0")
        deployment.fail_over("shard0")
        stats = deployment.stats()["replication"]
        assert stats["shard0"]["serving"] == "shard0-r"
        assert stats["shard0"]["failed_over"]
        assert stats["shard0"]["epoch"] == 2


class TestSessionServerOverride:
    def test_read_url_accepts_explicit_server(self):
        deployment, session = build_deployment()
        path = path_on(deployment, "shard0", "ovr")
        url = link(deployment, session, 0, path, b"mirrored")
        assert session.read_url(url) == b"mirrored"
        assert session.read_url(url, server="shard0-r") == b"mirrored"


class TestWritableFailover:
    def test_promoted_witness_takes_links_and_unlinks(self):
        """After promotion the witness is a full primary: link and unlink
        branches plus their 2PC traffic for the failed-over prefix commit
        through the router-resolved connection."""

        deployment, session = build_deployment(mode=ControlMode.RDB)
        pre_path = path_on(deployment, "shard0", "pre")
        link(deployment, session, 0, pre_path, b"before crash")
        deployment.crash_shard("shard0")
        deployment.fail_over("shard0")

        # link during failover
        new_path = path_on(deployment, "shard0", "during")
        url = deployment.put_file(session, new_path, b"during failover")
        session.insert(TABLE, {"doc_id": 1, "body": url})
        witness_repo = deployment.replicas["shard0"].witness.dlfm.repository
        assert witness_repo.linked_file(new_path) is not None

        # the new link is fully served: token handout + validated read
        read_url = session.get_datalink(TABLE, {"doc_id": 1}, "body",
                                        access="read", ttl=1e9)
        assert deployment.read_url(session, read_url) == b"during failover"

        # unlink during failover
        session.delete(TABLE, {"doc_id": 0})
        assert witness_repo.linked_file(pre_path) is None

    def test_write_metrics_roles_in_stats(self):
        deployment, session = build_deployment()
        link(deployment, session, 0, path_on(deployment, "shard0"))
        routing = deployment.stats()["routing"]
        assert routing["writes_routed"] > 0
        assert routing["roles"]["shard0"]["shard0"] == "serving"
        assert routing["roles"]["shard0"]["shard0-r"] == "witness"
        deployment.crash_shard("shard0")
        deployment.fail_over("shard0")
        deployment.recover_shard("shard0")
        routing = deployment.stats()["routing"]
        assert routing["roles"]["shard0"]["shard0-r"] == "serving"
        # recovered but not rejoined: the deposed ex-primary is fenced
        assert routing["roles"]["shard0"]["shard0"] == "fenced"

    def test_mid_transaction_failover_aborts_cleanly(self):
        """A transaction whose branch lives on a node deposed before the
        prepare fan-out must abort: the new serving node has no branch for
        it and votes no, and nothing leaks on either side."""

        deployment, session = build_deployment()
        link(deployment, session, 0, path_on(deployment, "shard0", "seed"))
        path = path_on(deployment, "shard0", "mid")
        url = deployment.put_file(session, path, b"in flight")
        host_txn = deployment.begin()
        deployment.engine.insert(TABLE, {"doc_id": 5, "body": url}, host_txn)
        deployment.crash_shard("shard0")
        deployment.fail_over("shard0")
        with pytest.raises(ReproError):
            deployment.engine.commit(host_txn)
        deployment.engine.abort(host_txn)
        assert deployment.host_db.select(TABLE, {"doc_id": 5}, lock=False) == []
        witness_repo = deployment.replicas["shard0"].witness.dlfm.repository
        assert witness_repo.linked_file(path) is None


class TestReversedShipFailBack:
    def test_fail_back_catches_up_from_last_applied_lsn(self):
        """Fail-back runs the reversed WAL stream from the LSN the deposed
        primary was caught up to -- no snapshot resync -- and carries the
        failover-era writes (rows and file content) back to it."""

        deployment, session = build_deployment(mode=ControlMode.RDB)
        replica = deployment.replicas["shard0"]
        pre_path = path_on(deployment, "shard0", "pre")
        link(deployment, session, 0, pre_path, b"original")
        deployment.crash_shard("shard0")
        deployment.fail_over("shard0")

        during_path = path_on(deployment, "shard0", "fb")
        url = deployment.put_file(session, during_path, b"written on witness")
        session.insert(TABLE, {"doc_id": 9, "body": url})

        resyncs_before = replica.full_resyncs
        summary = deployment.fail_back("shard0")
        assert summary["serving"] == "shard0"
        assert summary["rejoin"]["mode"] == "reversed-ship"
        assert summary["rejoin"]["caught_up_records"] > 0
        # the failover-era file content was mirrored back, not resynced
        assert summary["rejoin"]["mirrored_files"] >= 1
        assert replica.full_resyncs == resyncs_before
        assert replica.reversed_catchups == 1

        # the home primary serves the failover-era link, bytes included
        primary_repo = deployment.shard("shard0").dlfm.repository
        assert primary_repo.linked_file(during_path) is not None
        read_url = session.get_datalink(TABLE, {"doc_id": 9}, "body",
                                        access="read", ttl=1e9)
        assert deployment.read_url(session, read_url) == b"written on witness"
        # and the ex-witness is a subscriber again, converged
        deployment.system.flush_logs()
        witness_repo = replica.witness.dlfm.repository
        assert {row["path"] for row in witness_repo.linked_files()} == \
            deployment.linked_paths("shard0")

    def test_diverged_ex_primary_falls_back_to_snapshot_resync(self):
        """A primary that crashed with unshipped durable records diverged
        from the serving lineage: its reversed-ship base is voided and the
        rejoin runs the snapshot fallback instead."""

        deployment, session = build_deployment()
        replica = deployment.replicas["shard0"]
        link(deployment, session, 0, path_on(deployment, "shard0", "seed"))

        # pause shipping, commit a link the witness never sees, crash
        replica.shipper.pause()
        url = deployment.put_file(session, path_on(deployment, "shard0", "lost"),
                                  b"never shipped")
        session.insert(TABLE, {"doc_id": 3, "body": url})
        deployment.system.flush_logs()
        assert replica.shipper.lag() > 0
        deployment.crash_shard("shard0")
        deployment.fail_over("shard0")

        summary = deployment.fail_back("shard0")
        assert summary["rejoin"]["mode"] == "snapshot"
        assert replica.full_resyncs > 0
        # converged on the serving lineage (the unshipped link was aborted
        # at the host? no -- it committed, so the host still references it;
        # the snapshot resync rebuilt the primary from the witness lineage,
        # and the host row's file is restored on neither side)
        deployment.system.flush_logs()
        witness_repo = replica.witness.dlfm.repository
        assert {row["path"] for row in witness_repo.linked_files()} == \
            deployment.linked_paths("shard0")

    def test_serving_witness_survives_its_own_crash(self):
        """The promotion-time checkpoint makes the promoted witness's
        redo-applied state durable: a crash while serving recovers from its
        own WAL, not from a resync."""

        deployment, session = build_deployment(mode=ControlMode.RDB)
        path = path_on(deployment, "shard0", "ck")
        link(deployment, session, 0, path, b"checkpointed")
        deployment.crash_shard("shard0")
        deployment.fail_over("shard0")
        during = path_on(deployment, "shard0", "ck2")
        url = deployment.put_file(session, during, b"post promotion")
        session.insert(TABLE, {"doc_id": 2, "body": url})

        deployment.crash_witness("shard0")
        deployment.recover_witness("shard0")
        witness_repo = deployment.replicas["shard0"].witness.dlfm.repository
        assert witness_repo.linked_file(path) is not None
        assert witness_repo.linked_file(during) is not None
        read_url = session.get_datalink(TABLE, {"doc_id": 2}, "body",
                                        access="read", ttl=1e9)
        assert deployment.read_url(session, read_url) == b"post promotion"


class TestFollowerReads:
    def test_reads_load_balance_across_serving_and_witness(self):
        deployment, session = build_deployment(mode=ControlMode.RDB)
        link(deployment, session, 0, path_on(deployment, "shard0", "lb"),
             b"balanced")
        url = session.get_datalink(TABLE, {"doc_id": 0}, "body",
                                   access="read", ttl=1e9)
        for _ in range(4):
            assert deployment.read_url(session, url) == b"balanced"
        routing = deployment.stats()["routing"]
        assert routing["reads_by_role"]["serving"] >= 2
        assert routing["reads_by_role"]["witness"] >= 2

    def test_witness_soft_state_stays_out_of_replica_heaps(self):
        """A follower read registers its token entry in the witness's
        ephemeral soft state; the redo-only repository heaps keep mirroring
        the primary's rows exactly."""

        deployment, session = build_deployment(mode=ControlMode.RDB)
        replica = deployment.replicas["shard0"]
        link(deployment, session, 0, path_on(deployment, "shard0", "soft"),
             b"soft state")
        url = session.get_datalink(TABLE, {"doc_id": 0}, "body",
                                   access="read", ttl=1e9)
        # read through the witness explicitly
        assert session.read_url(url, server="shard0-r") == b"soft state"
        status = replica.witness.dlfm.replica_status()
        assert status["soft_token_entries"] >= 1
        deployment.system.flush_logs()
        primary_repo = deployment.shard("shard0").dlfm.repository
        witness_repo = replica.witness.dlfm.repository
        assert len(witness_repo.db.select("token_entries", lock=False)) == \
            len(primary_repo.db.select("token_entries", lock=False))

    def test_stale_follower_is_skipped_and_gated(self):
        """A witness past the staleness bound is skipped by the router and
        refuses direct reads through the DLFM gate."""

        deployment, session = build_deployment(mode=ControlMode.RDB)
        replica = deployment.replicas["shard0"]
        link(deployment, session, 0, path_on(deployment, "shard0", "st"),
             b"stale test")
        url = session.get_datalink(TABLE, {"doc_id": 0}, "body",
                                   access="read", ttl=1e9)

        replica.shipper.pause()        # stream stalls; lag will accrue
        for _ in range(3):             # router falls back to the serving node
            assert deployment.read_url(session, url) == b"stale test"
        routing = deployment.stats()["routing"]
        assert routing["follower_rejects"] > 0
        assert routing["reads_by_role"]["witness"] == 0
        with pytest.raises(ReproError):
            session.read_url(url, server="shard0-r")

        replica.shipper.resume()
        replica.shipper.ship()
        assert session.read_url(url, server="shard0-r") == b"stale test"

    def test_update_in_place_disqualifies_stale_witness_copy(self):
        """Regression: after an update-in-place commit, the witness's
        mirrored copy still holds the old bytes (the data path is not in
        the WAL stream; only the linked_files metadata row ships).  The
        router must disqualify that witness for reads of that file, so a
        routed read never returns stale content."""

        deployment, session = build_deployment(mode=ControlMode.RDD,
                                               recovery=True)
        replica = deployment.replicas["shard0"]
        path = path_on(deployment, "shard0", "uip")
        link(deployment, session, 0, path, b"old bytes v0")
        deployment.system.run_archiver()
        deployment.system.flush_logs()

        write_url = session.get_datalink(TABLE, {"doc_id": 0}, "body",
                                         access="write", ttl=1e9)
        with session.update_file(write_url, truncate=True) as update:
            update.write(b"new bytes v1 - longer")
        deployment.system.flush_logs()   # ship the metadata UPDATE

        read_url = session.get_datalink(TABLE, {"doc_id": 0}, "body",
                                        access="read", ttl=1e9)
        # the witness's copy is known-stale for exactly this path...
        assert replica.content_stale("shard0-r", path)
        assert session.read_url(read_url, server="shard0-r") \
            == b"old bytes v0"
        # ...so every *routed* read returns the committed bytes
        for _ in range(4):
            assert deployment.read_url(session, read_url) \
                == b"new bytes v1 - longer"
        routing = deployment.stats()["routing"]
        assert routing["stale_content_skips"] > 0
        assert routing["reads_by_role"]["witness"] == 0

    def test_promotion_refreshes_stale_witness_copy_from_archive(self):
        """At promotion the witness restores archived versions of its
        known-stale paths, so a failover right after an archived
        update-in-place serves the updated bytes, not the stale mirror."""

        deployment, session = build_deployment(mode=ControlMode.RDD,
                                               recovery=True)
        replica = deployment.replicas["shard0"]
        path = path_on(deployment, "shard0", "uipf")
        link(deployment, session, 0, path, b"old bytes v0")
        deployment.system.run_archiver()   # drain the link's archive job
        write_url = session.get_datalink(TABLE, {"doc_id": 0}, "body",
                                         access="write", ttl=1e9)
        with session.update_file(write_url, truncate=True) as update:
            update.write(b"archived new bytes")
        deployment.system.run_archiver()   # the updated version is archived
        deployment.system.flush_logs()
        assert replica.content_stale("shard0-r", path)

        deployment.crash_shard("shard0")
        deployment.fail_over("shard0")
        read_url = session.get_datalink(TABLE, {"doc_id": 0}, "body",
                                        access="read", ttl=1e9)
        assert deployment.read_url(session, read_url) == b"archived new bytes"
        assert not replica.content_stale("shard0-r", path)

    def test_follower_reads_can_be_disabled(self):
        deployment = ShardedDataLinksDeployment(2, replication=True,
                                                follower_reads=False)
        deployment.create_table(TableSchema(TABLE, [
            Column("doc_id", DataType.INTEGER, nullable=False),
            datalink_column("body", DatalinkOptions(
                control_mode=ControlMode.RDB, recovery=False)),
        ], primary_key=("doc_id",)))
        session = deployment.session("alice", uid=1001)
        link(deployment, session, 0, path_on(deployment, "shard0", "off"),
             b"primary only")
        url = session.get_datalink(TABLE, {"doc_id": 0}, "body",
                                   access="read", ttl=1e9)
        for _ in range(4):
            deployment.read_url(session, url)
        routing = deployment.stats()["routing"]
        assert routing["reads_by_role"]["witness"] == 0
        with pytest.raises(ReproError):
            session.read_url(url, server="shard0-r")


class TestMultiWitness:
    def build(self, witnesses=2):
        deployment = ShardedDataLinksDeployment(2, replication=True,
                                                witnesses=witnesses,
                                                flush_policy="immediate",
                                                group_commit_window=1)
        deployment.create_table(TableSchema(TABLE, [
            Column("doc_id", DataType.INTEGER, nullable=False),
            datalink_column("body", DatalinkOptions(
                control_mode=ControlMode.RDB, recovery=False)),
        ], primary_key=("doc_id",)))
        return deployment, deployment.session("alice", uid=1001)

    def test_reads_spread_over_all_witnesses(self):
        deployment, session = self.build()
        replica = deployment.replicas["shard0"]
        assert [node.name for node in replica.witnesses] == \
            ["shard0-r", "shard0-r2"]
        link(deployment, session, 0, path_on(deployment, "shard0", "mw"),
             b"many witnesses")
        url = session.get_datalink(TABLE, {"doc_id": 0}, "body",
                                   access="read", ttl=1e9)
        for _ in range(6):
            assert deployment.read_url(session, url) == b"many witnesses"
        routing = deployment.stats()["routing"]
        assert routing["reads_by_role"]["serving"] >= 2
        assert routing["reads_by_role"]["witness"] >= 4

    def test_failover_rewires_surviving_witness_to_new_serving(self):
        deployment, session = self.build()
        replica = deployment.replicas["shard0"]
        link(deployment, session, 0, path_on(deployment, "shard0", "rw"),
             b"rewire")
        deployment.crash_shard("shard0")
        summary = deployment.fail_over("shard0")
        new_serving = summary["serving"]
        assert new_serving in ("shard0-r", "shard0-r2")
        other = next(node.name for node in replica.witnesses
                     if node.name != new_serving)
        assert replica.is_subscribed(other)

        # a failover-era write replicates over the rewired stream
        path = path_on(deployment, "shard0", "rw2")
        url = deployment.put_file(session, path, b"over the new stream")
        session.insert(TABLE, {"doc_id": 1, "body": url})
        deployment.system.flush_logs()
        other_repo = replica.nodes[other].dlfm.repository
        assert other_repo.linked_file(path) is not None

        # and fail-back converges every node on the home primary again
        deployment.fail_back("shard0")
        deployment.system.flush_logs()
        for node in replica.witnesses:
            assert {row["path"] for row in
                    node.dlfm.repository.linked_files()} == \
                deployment.linked_paths("shard0")


class TestReplicationErrors:
    def test_failover_on_unreplicated_deployment_names_the_cause(self):
        from repro.errors import ReplicationError

        deployment = ShardedDataLinksDeployment(2)
        with pytest.raises(ReplicationError) as excinfo:
            deployment.fail_over("shard0")
        assert "shard0" in str(excinfo.value)
        assert "replication=False" in str(excinfo.value)
        with pytest.raises(ReplicationError) as excinfo:
            deployment.fail_back("shard0")
        assert "shard0" in str(excinfo.value)

    def test_failover_on_unknown_shard_names_the_shard(self):
        from repro.errors import ReplicationError

        deployment = ShardedDataLinksDeployment(2, replication=True)
        with pytest.raises(ReplicationError) as excinfo:
            deployment.fail_over("shard9")
        assert "shard9" in str(excinfo.value)
        assert "no such shard" in str(excinfo.value)


class TestStalenessBoundCoversBufferedCommits:
    def test_follower_never_serves_unconstrained_mirror_under_group_commit(self):
        """Under group commit a link can be committed and visible on the
        primary while its records sit in the WAL buffer: the witness has
        neither the linked_files row nor the link-time access constraints
        on its mirrored copy.  The staleness bound counts those *pending*
        records, so the router must keep every read on the primary -- a
        tokenless read of the rdb file is rejected on every route."""

        deployment = ShardedDataLinksDeployment(
            2, replication=True, flush_policy="group", group_commit_window=8)
        deployment.create_table(TableSchema(TABLE, [
            Column("doc_id", DataType.INTEGER, nullable=False),
            datalink_column("body", DatalinkOptions(
                control_mode=ControlMode.RDB, recovery=False)),
        ], primary_key=("doc_id",)))
        alice = deployment.session("alice", uid=1001)
        stranger = deployment.session("stranger", uid=6666)
        path = path_on(deployment, "shard0", "buf")
        bare_url = deployment.put_file(alice, path, b"top secret")
        alice.insert(TABLE, {"doc_id": 0, "body": bare_url})

        replica = deployment.replicas["shard0"]
        # the branch COMMIT is buffered: witness is behind despite lag()==0
        assert replica.shipper.pending_lag() > 0
        assert not replica.follower_eligible("shard0-r")
        for _ in range(4):
            with pytest.raises(ReproError):
                deployment.read_url(stranger, bare_url)
        assert deployment.router.reads_by_role["witness"] == 0

        # once the window drains the witness is eligible again -- and its
        # mirrored copy is constrained, so the tokenless read still fails
        deployment.system.flush_logs()
        assert replica.shipper.pending_lag() == 0
        assert replica.follower_eligible("shard0-r")
        for _ in range(2):
            with pytest.raises(ReproError):
                deployment.read_url(stranger, bare_url)
