"""Update-in-place semantics: transaction boundary, serialization, metadata,
versioning and the rfd consistency window."""

import pytest

from repro.datalinks.control_modes import ControlMode
from repro.errors import Errno, FileSystemError
from repro.fs.vfs import OpenFlags
from tests.conftest import BOB_UID, FILES_TABLE, build_system


class TestBasicUpdate:
    def test_update_replaces_content_in_place(self, rfd_system):
        system, alice, paths, _ = rfd_system
        url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")
        with alice.update_file(url, truncate=True) as update:
            update.replace(b"version two")
        assert alice.fs("fs1").read_file(paths[0]) == b"version two"

    def test_read_modify_write_without_truncate(self, rfd_system):
        system, alice, paths, _ = rfd_system
        url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")
        with alice.update_file(url) as update:
            head = update.read(10)
            update.seek(0)
            update.write(head.upper())
        content = alice.fs("fs1").read_file(paths[0])
        assert content.startswith(b"[DOC0 V0] ")

    def test_url_still_resolves_during_and_after_update(self, rfd_system):
        """The whole point of UIP: no unlink is needed, the reference stays."""

        system, alice, paths, _ = rfd_system
        dlfm = system.file_server("fs1").dlfm
        url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")
        update = alice.update_file(url, truncate=True)
        update.begin()
        assert dlfm.repository.linked_file(paths[0]) is not None
        update.replace(b"still linked")
        update.commit()
        assert dlfm.repository.linked_file(paths[0]) is not None

    def test_metadata_updated_automatically_in_same_transaction(self, rfd_system):
        system, alice, paths, _ = rfd_system
        url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")
        with alice.update_file(url, truncate=True) as update:
            update.replace(b"x" * 1234)
        row = system.host_db.select_one(FILES_TABLE, {"doc_id": 0}, lock=False)
        assert row["body_size"] == 1234
        assert row["body_mtime"] > 0.0
        dlfm_row = system.file_server("fs1").dlfm.repository.linked_file(paths[0])
        assert dlfm_row["last_size"] == 1234

    def test_unmodified_open_close_updates_nothing(self, rfd_system):
        system, alice, _, _ = rfd_system
        before = system.host_db.select_one(FILES_TABLE, {"doc_id": 0}, lock=False)
        url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")
        update = alice.update_file(url)
        update.begin()
        update.commit()
        after = system.host_db.select_one(FILES_TABLE, {"doc_id": 0}, lock=False)
        assert after["body_size"] == before["body_size"]
        assert after["body_mtime"] == before["body_mtime"]

    def test_rfd_ownership_taken_during_update_and_released_after(self, rfd_system):
        system, alice, paths, _ = rfd_system
        server = system.file_server("fs1")
        url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")
        update = alice.update_file(url, truncate=True)
        update.begin()
        during = server.files.stat(paths[0])
        assert during.uid == server.dbms_uid
        update.replace(b"done")
        update.commit()
        after = server.files.stat(paths[0])
        assert after.uid == alice.cred.uid
        assert after.mode & 0o222 == 0     # back to read-only between updates

    def test_update_via_rdd_full_control(self, rdd_system):
        system, alice, paths, _ = rdd_system
        url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")
        with alice.update_file(url, truncate=True) as update:
            update.replace(b"full control update")
        assert system.file_server("fs1").files.read(paths[0]) == b"full control update"

    def test_replace_shorter_without_truncate_refused(self, rfd_system):
        from repro.errors import DataLinksError

        system, alice, _, _ = rfd_system
        url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")
        with pytest.raises(DataLinksError):
            with alice.update_file(url) as update:
                update.replace(b"short")


class TestWriteSerialization:
    def test_second_writer_rejected_while_update_open(self, rfd_system):
        system, alice, _, _ = rfd_system
        bob = system.session("bob", uid=BOB_UID)
        url_a = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")
        url_b = bob.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")
        first = alice.update_file(url_a)
        first.begin()
        with pytest.raises(FileSystemError) as info:
            bob.update_file(url_b).begin()
        assert info.value.errno is Errno.EBUSY
        first.commit()
        system.run_archiver()
        # once the first update committed (and archived), the second succeeds
        with bob.update_file(url_b, truncate=True) as update:
            update.replace(b"bob's turn")

    def test_same_user_cannot_open_two_concurrent_updates(self, rfd_system):
        system, alice, _, _ = rfd_system
        url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")
        first = alice.update_file(url)
        first.begin()
        with pytest.raises(FileSystemError):
            alice.update_file(url).begin()
        first.commit()

    def test_new_update_blocked_until_archiving_completes(self, rfd_system):
        """Section 4.4: new updates wait for the previous version's archive."""

        system, alice, _, _ = rfd_system
        url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")
        with alice.update_file(url, truncate=True) as update:
            update.replace(b"v1")
        # archiver has NOT run yet
        with pytest.raises(FileSystemError) as info:
            alice.update_file(url).begin()
        assert info.value.errno is Errno.EBUSY
        system.run_archiver()
        with alice.update_file(url, truncate=True) as update:
            update.replace(b"v2")

    def test_updates_of_different_files_do_not_interfere(self):
        system, alice, paths, _ = build_system(ControlMode.RFD, files=2)
        url0 = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")
        url1 = alice.get_datalink(FILES_TABLE, {"doc_id": 1}, "body", access="write")
        first = alice.update_file(url0, truncate=True)
        first.begin()
        with alice.update_file(url1, truncate=True) as update:
            update.replace(b"independent")
        first.replace(b"also fine")
        first.commit()
        assert alice.fs("fs1").read_file(paths[1]) == b"independent"


class TestReadWriteInteraction:
    def test_rfd_reader_not_serialized_with_writer(self, rfd_system):
        """The documented rfd window: a reader may observe the new content."""

        system, alice, paths, _ = rfd_system
        bob = system.session("bob", uid=BOB_UID)
        fd = system.file_server("fs1").lfs.open(paths[0], OpenFlags.READ, bob.cred)
        url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")
        with alice.update_file(url, truncate=True) as update:
            update.replace(b"overwritten while bob reads")
        assert system.file_server("fs1").lfs.read(fd) == b"overwritten while bob reads"
        system.file_server("fs1").lfs.close(fd)

    def test_rfd_new_reader_blocked_while_update_in_progress(self, rfd_system):
        """During the take-over the file system itself keeps new readers out."""

        system, alice, paths, _ = rfd_system
        bob = system.session("bob", uid=BOB_UID)
        url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")
        update = alice.update_file(url)
        update.begin()
        with pytest.raises(FileSystemError):
            bob.fs("fs1").read_file(paths[0])
        update.commit()
        assert len(bob.fs("fs1").read_file(paths[0])) == 4096

    def test_rdd_write_blocked_by_reader_and_vice_versa(self, rdd_system):
        system, alice, _, _ = rdd_system
        read_url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="read")
        fd = alice.open_url(read_url, OpenFlags.READ)
        write_url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")
        with pytest.raises(FileSystemError):
            alice.update_file(write_url).begin()
        system.file_server("fs1").lfs.close(fd)

        update = alice.update_file(write_url)
        update.begin()
        read_url2 = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="read")
        with pytest.raises(FileSystemError):
            alice.open_url(read_url2, OpenFlags.READ)
        update.commit()

    def test_rdd_concurrent_readers_are_fine(self, rdd_system):
        system, alice, _, _ = rdd_system
        bob = system.session("bob", uid=BOB_UID)
        url_a = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="read")
        url_b = bob.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="read")
        fd_a = alice.open_url(url_a, OpenFlags.READ)
        fd_b = bob.open_url(url_b, OpenFlags.READ)
        lfs = system.file_server("fs1").lfs
        assert len(lfs.read(fd_a)) == 4096
        assert len(lfs.read(fd_b)) == 4096
        lfs.close(fd_a)
        lfs.close(fd_b)


class TestAtomicityAndVersions:
    def test_abort_restores_last_committed_version(self, rfd_system):
        system, alice, paths, _ = rfd_system
        before = alice.fs("fs1").read_file(paths[0])
        url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")
        try:
            with alice.update_file(url, truncate=True) as update:
                update.write(b"partial")
                raise ValueError("application bug")
        except ValueError:
            pass
        assert alice.fs("fs1").read_file(paths[0]) == before
        # and the in-flight content was parked, not silently dropped
        parked = system.file_server("fs1").raw_lfs.listdir(
            "/.dlfm_tmp", system.file_server("fs1").files.dlfm_cred)
        assert parked != []

    def test_each_committed_update_creates_a_new_version(self, rfd_system):
        system, alice, paths, _ = rfd_system
        dlfm = system.file_server("fs1").dlfm
        initial_versions = len(dlfm.repository.versions(paths[0]))
        for round_number in range(3):
            url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")
            with alice.update_file(url, truncate=True) as update:
                update.replace(f"round {round_number}".encode())
            system.run_archiver()
        versions = dlfm.repository.versions(paths[0])
        assert len(versions) == initial_versions + 3
        assert [v["version_no"] for v in versions] == list(range(1, len(versions) + 1))

    def test_version_state_ids_are_monotonic(self, rfd_system):
        system, alice, paths, _ = rfd_system
        dlfm = system.file_server("fs1").dlfm
        for _ in range(2):
            url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")
            with alice.update_file(url, truncate=True) as update:
                update.replace(b"tick")
            system.run_archiver()
        state_ids = [v["state_id"] for v in dlfm.repository.versions(paths[0])]
        assert state_ids == sorted(state_ids)

    def test_archived_content_matches_committed_content(self, rfd_system):
        system, alice, paths, _ = rfd_system
        dlfm = system.file_server("fs1").dlfm
        url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")
        with alice.update_file(url, truncate=True) as update:
            update.replace(b"exactly this content")
        system.run_archiver()
        latest = dlfm.repository.latest_version(paths[0])
        assert system.archive.retrieve(latest["archive_id"]) == b"exactly this content"

    def test_explicit_admin_abort_of_file_update(self, rfd_system):
        system, alice, paths, _ = rfd_system
        before = alice.fs("fs1").read_file(paths[0])
        url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="write")
        update = alice.update_file(url, truncate=True)
        update.begin()
        update.write(b"half done")
        assert system.abort_file_update("fs1", paths[0]) is True
        assert alice.fs("fs1").read_file(paths[0]) == before
