"""Tier-1 fail-fast guards: sources must compile, the artifact must parse.

Named ``test_00_*`` so pytest's alphabetical collection runs this module
first: under ``-x`` a syntax error anywhere beneath ``src/`` or a
malformed committed ``BENCH_smoke.json`` aborts the run immediately,
before the functional suites spend minutes re-running workloads against a
baseline that was never going to load.  This is the test-suite face of the
CI entrypoint's ``python -m compileall src`` + artifact-shape check.
"""

from __future__ import annotations

import compileall
import json
from pathlib import Path

import pytest

from repro.bench.experiments import ALL_EXPERIMENTS, LARGE_PARAMS

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"
COMMITTED_ARTIFACT = REPO_ROOT / "BENCH_smoke.json"
LARGE_ARTIFACT = REPO_ROOT / "BENCH_large.json"

#: The large tier's capacity acceptance bars, checked against the
#: *committed* artifact (cheap -- no workload runs here; the gated suite
#: in ``test_bench_artifact.py`` re-runs the tier for real).
E14_LARGE_MIN_LINK_OPS = 1_000_000
E14_LARGE_WALL_BUDGET_S = 60.0
#: 25% under the pre-optimization steady-state call count (18,520,550).
E14_LARGE_MAX_PROFILE_CALLS = 13_890_412

#: Fields every per-experiment artifact entry must carry.  ``rows`` and
#: ``sim_ms`` are the simulated (deterministic) payload; ``wall_clock_s``
#: is the measured timing the wall-clock budget test diffs against.
REQUIRED_ENTRY_FIELDS = ("experiment_id", "title", "headers", "rows",
                        "sim_ms", "wall_clock_s")


def test_every_source_file_compiles():
    """``python -m compileall src``: no syntax error hides behind an
    untested import path."""

    assert compileall.compile_dir(str(SRC_ROOT), quiet=2, force=False), \
        "a file under src/ failed to byte-compile (syntax error)"


class TestCommittedArtifactShape:
    """The committed BENCH_smoke.json must be loadable and well-formed
    *before* the suites that treat it as their golden baseline run."""

    @pytest.fixture(scope="class")
    def payload(self) -> dict:
        if not COMMITTED_ARTIFACT.exists():
            pytest.skip("no committed BENCH_smoke.json in this checkout")
        with open(COMMITTED_ARTIFACT, "r", encoding="utf-8") as stream:
            return json.load(stream)

    def test_top_level_shape(self, payload):
        assert payload.get("mode") == "smoke"
        assert isinstance(payload.get("experiments"), dict)
        summary = payload.get("wall_clock")
        assert isinstance(summary, dict)
        assert isinstance(summary.get("total_s"), (int, float))
        assert summary["total_s"] > 0

    def test_covers_every_experiment(self, payload):
        assert set(payload["experiments"]) == set(ALL_EXPERIMENTS)

    def test_entries_are_well_formed(self, payload):
        for name, entry in payload["experiments"].items():
            for field in REQUIRED_ENTRY_FIELDS:
                assert field in entry, f"{name} entry lacks {field!r}"
            assert entry["experiment_id"] == name
            assert isinstance(entry["rows"], list) and entry["rows"], \
                f"{name} entry carries no result rows"
            headers = entry["headers"]
            for row in entry["rows"]:
                assert set(row) == set(headers), \
                    f"{name} row keys diverge from its headers"
            assert isinstance(entry["wall_clock_s"], (int, float))


class TestCommittedLargeArtifactShape:
    """The committed BENCH_large.json (the million-link capacity tier)
    must be well-formed and must still document its acceptance bars."""

    @pytest.fixture(scope="class")
    def payload(self) -> dict:
        if not LARGE_ARTIFACT.exists():
            pytest.skip("no committed BENCH_large.json in this checkout")
        with open(LARGE_ARTIFACT, "r", encoding="utf-8") as stream:
            return json.load(stream)

    def test_top_level_shape(self, payload):
        assert payload.get("mode") == "large"
        assert isinstance(payload.get("experiments"), dict)
        summary = payload.get("wall_clock")
        assert isinstance(summary, dict)
        assert isinstance(summary.get("total_s"), (int, float))
        assert summary["total_s"] > 0

    def test_covers_the_large_tier(self, payload):
        assert set(payload["experiments"]) == set(LARGE_PARAMS)

    def test_entries_are_well_formed(self, payload):
        for name, entry in payload["experiments"].items():
            for field in REQUIRED_ENTRY_FIELDS:
                assert field in entry, f"{name} entry lacks {field!r}"
            assert entry["experiment_id"] == name
            assert isinstance(entry["rows"], list) and entry["rows"], \
                f"{name} entry carries no result rows"
            headers = entry["headers"]
            for row in entry["rows"]:
                assert set(row) == set(headers), \
                    f"{name} row keys diverge from its headers"
            assert isinstance(entry["wall_clock_s"], (int, float))

    def test_e14_million_link_capacity(self, payload):
        """Every E14-large variant clears the 10^6 charged-op floor and
        the whole experiment fits the 60 s wall budget (worst committed
        best-of sample, so re-timing noise is already priced in)."""

        entry = payload["experiments"]["E14"]
        for row in entry["rows"]:
            assert row["link_ops"] >= E14_LARGE_MIN_LINK_OPS, \
                f"E14-large {row['variant']!r} ran only {row['link_ops']} ops"
        samples = entry.get("wall_clock_samples_s") or [entry["wall_clock_s"]]
        assert max(samples) < E14_LARGE_WALL_BUDGET_S, \
            f"E14-large worst sample {max(samples):.1f}s blows the 60s budget"

    def test_e14_profile_calls_hold_the_optimized_line(self, payload):
        """The committed warm steady-state call count must stay >=25%
        under the pre-fast-path baseline; regressions must regenerate
        the artifact and justify the loss."""

        calls = payload["experiments"]["E14"].get("profile_calls")
        if not calls:
            pytest.skip("committed BENCH_large.json was written without "
                        "--profile; no call-count line to hold")
        assert calls <= E14_LARGE_MAX_PROFILE_CALLS, \
            (f"E14-large profile_calls {calls} exceeds the optimized "
             f"ceiling {E14_LARGE_MAX_PROFILE_CALLS}")

    def test_e9_records_the_session_sweep(self, payload):
        """E9-large must report the concurrent-session sweep steps with
        throughput and latency percentiles per step."""

        entry = payload["experiments"]["E9"]
        for column in ("read_p50_ms", "read_p99_ms", "ops_per_sim_s"):
            assert column in entry["headers"]
        sweep_rows = [row for row in entry["rows"]
                      if "session sweep" in row["configuration"]]
        swept = sorted(int(row["configuration"].split("sweep, ")[1]
                           .split(" sessions")[0]) for row in sweep_rows)
        assert swept == [10, 100, 1000, 10000], \
            f"E9-large swept {swept}, expected [10, 100, 1000, 10000]"
        for row in sweep_rows:
            assert row["ops_per_sim_s"] > 0
            assert row["read_p99_ms"] >= row["read_p50_ms"] > 0

    def test_e9_sweep_saturates_at_the_admission_limit(self, payload):
        """The committed E9-large sweep must show an honest saturation
        curve: throughput non-decreasing while the session count is
        under the admission limit, flat (within tolerance) past the
        knee, and a p99 that keeps growing with queued sessions --
        queueing, not Python-side table effects, is what saturates."""

        limit = LARGE_PARAMS["E9"].get("admission_limit")
        if not limit:
            pytest.skip("E9-large runs without an admission limit")
        entry = payload["experiments"]["E9"]
        for column in ("queue_p50_ms", "queue_p99_ms"):
            assert column in entry["headers"]
        sweep = sorted(
            (int(row["configuration"].split("sweep, ")[1]
                 .split(" sessions")[0]), row)
            for row in entry["rows"]
            if "session sweep" in row["configuration"])
        assert sweep, "no session-sweep rows in the committed E9-large"
        below = [row for sessions, row in sweep if sessions <= limit]
        above = [row for sessions, row in sweep if sessions > limit]
        assert below and above, \
            "the sweep must straddle the admission limit to show a knee"
        rates = [row["ops_per_sim_s"] for row in below]
        assert all(later >= earlier
                   for earlier, later in zip(rates, rates[1:])), \
            f"throughput fell below the admission limit: {rates}"
        knee_rate = max(row["ops_per_sim_s"] for _, row in sweep)
        for row in above:
            assert 0.85 * knee_rate <= row["ops_per_sim_s"] \
                <= 1.15 * knee_rate, \
                (f"past the knee throughput should be flat near "
                 f"{knee_rate}, got {row['ops_per_sim_s']}")
        p99_floor = sweep[0][1]["read_p99_ms"]
        p99_peak = sweep[-1][1]["read_p99_ms"]
        assert p99_peak >= 5.0 * p99_floor, \
            (f"p99 shows no queueing knee: {p99_floor} ms at the bottom "
             f"vs {p99_peak} ms at the top of the sweep")
        assert sweep[-1][1]["queue_p99_ms"] > sweep[0][1]["queue_p99_ms"], \
            "queue delay must be what grows past the admission limit"
