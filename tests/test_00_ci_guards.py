"""Tier-1 fail-fast guards: sources must compile, the artifact must parse.

Named ``test_00_*`` so pytest's alphabetical collection runs this module
first: under ``-x`` a syntax error anywhere beneath ``src/`` or a
malformed committed ``BENCH_smoke.json`` aborts the run immediately,
before the functional suites spend minutes re-running workloads against a
baseline that was never going to load.  This is the test-suite face of the
CI entrypoint's ``python -m compileall src`` + artifact-shape check.
"""

from __future__ import annotations

import compileall
import json
from pathlib import Path

import pytest

from repro.bench.experiments import ALL_EXPERIMENTS

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"
COMMITTED_ARTIFACT = REPO_ROOT / "BENCH_smoke.json"

#: Fields every per-experiment artifact entry must carry.  ``rows`` and
#: ``sim_ms`` are the simulated (deterministic) payload; ``wall_clock_s``
#: is the measured timing the wall-clock budget test diffs against.
REQUIRED_ENTRY_FIELDS = ("experiment_id", "title", "headers", "rows",
                        "sim_ms", "wall_clock_s")


def test_every_source_file_compiles():
    """``python -m compileall src``: no syntax error hides behind an
    untested import path."""

    assert compileall.compile_dir(str(SRC_ROOT), quiet=2, force=False), \
        "a file under src/ failed to byte-compile (syntax error)"


class TestCommittedArtifactShape:
    """The committed BENCH_smoke.json must be loadable and well-formed
    *before* the suites that treat it as their golden baseline run."""

    @pytest.fixture(scope="class")
    def payload(self) -> dict:
        if not COMMITTED_ARTIFACT.exists():
            pytest.skip("no committed BENCH_smoke.json in this checkout")
        with open(COMMITTED_ARTIFACT, "r", encoding="utf-8") as stream:
            return json.load(stream)

    def test_top_level_shape(self, payload):
        assert payload.get("mode") == "smoke"
        assert isinstance(payload.get("experiments"), dict)
        summary = payload.get("wall_clock")
        assert isinstance(summary, dict)
        assert isinstance(summary.get("total_s"), (int, float))
        assert summary["total_s"] > 0

    def test_covers_every_experiment(self, payload):
        assert set(payload["experiments"]) == set(ALL_EXPERIMENTS)

    def test_entries_are_well_formed(self, payload):
        for name, entry in payload["experiments"].items():
            for field in REQUIRED_ENTRY_FIELDS:
                assert field in entry, f"{name} entry lacks {field!r}"
            assert entry["experiment_id"] == name
            assert isinstance(entry["rows"], list) and entry["rows"], \
                f"{name} entry carries no result rows"
            headers = entry["headers"]
            for row in entry["rows"]:
                assert set(row) == set(headers), \
                    f"{name} row keys diverge from its headers"
            assert isinstance(entry["wall_clock_s"], (int, float))
