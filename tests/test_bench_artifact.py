"""Tier-1 guards for the bench artifact: sim identity and wall-clock budget.

The simulator fast path is maintained under a strict pure-refactor
invariant: optimizations may change how fast the simulation *runs*, never
what it *simulates*.  These tests re-run the full ``--smoke`` suite
in-process and hold it against the committed ``BENCH_smoke.json``:

* every simulated field (rows, sim_ms columns, notes -- everything except
  the ``wall_clock*`` measurements and ``profile`` tables) must be
  byte-identical to the committed artifact;
* the total wall clock must not regress by more than 25% against the
  committed baseline (best of three runs here, and the baseline is the
  *worst* recorded ``wall_clock_samples_s`` sample per experiment, so a
  noisy neighbor does not fail the build).
"""

from __future__ import annotations

import io
import json
import os
from pathlib import Path

import pytest

from repro.bench.harness import run_all

REPO_ROOT = Path(__file__).resolve().parent.parent
COMMITTED_ARTIFACT = REPO_ROOT / "BENCH_smoke.json"
LARGE_ARTIFACT = REPO_ROOT / "BENCH_large.json"

#: The large tier re-runs E9-large and E14-large for real (about a
#: minute of single-threaded work), so its identity and budget guards
#: only run when explicitly requested; tier-1 CI covers the committed
#: artifact's shape and acceptance bars cheaply in test_00_ci_guards.
RUN_LARGE_TIER = os.environ.get("REPRO_LARGE_BENCH") == "1"

#: Keys in a per-experiment artifact entry that are *measured*, not
#: simulated; everything else must be deterministic.
NON_SIM_KEYS = ("wall_clock", "profile")


def _is_sim_key(key: str) -> bool:
    return not key.startswith(NON_SIM_KEYS)


def _run_smoke(tmp_path: Path, tag: str) -> dict:
    json_path = tmp_path / f"bench_{tag}.json"
    run_all(smoke=True, json_path=str(json_path), stream=io.StringIO())
    with open(json_path, "r", encoding="utf-8") as stream:
        return json.load(stream)


@pytest.fixture(scope="module")
def committed() -> dict:
    if not COMMITTED_ARTIFACT.exists():
        pytest.skip("no committed BENCH_smoke.json to compare against")
    with open(COMMITTED_ARTIFACT, "r", encoding="utf-8") as stream:
        return json.load(stream)


@pytest.fixture(scope="module")
def smoke_payload(tmp_path_factory) -> dict:
    tmp_path = tmp_path_factory.mktemp("bench")
    return _run_smoke(tmp_path, "fresh")


class TestSimulatedResultsInvariant:
    """Golden-value check: simulated output equals the committed artifact."""

    def test_same_experiments(self, committed, smoke_payload):
        assert set(smoke_payload["experiments"]) == set(committed["experiments"])

    def test_simulated_fields_are_identical(self, committed, smoke_payload):
        mismatches = []
        for name, golden in committed["experiments"].items():
            fresh = smoke_payload["experiments"][name]
            for key, value in golden.items():
                if not _is_sim_key(key):
                    continue
                if fresh.get(key) != value:
                    mismatches.append(f"{name}.{key}")
            for key in fresh:
                if _is_sim_key(key) and key not in golden:
                    mismatches.append(f"{name}.{key} (new field)")
        assert not mismatches, (
            "simulated results drifted from the committed BENCH_smoke.json "
            f"baseline: {mismatches}; if the change is intentional, "
            "regenerate the artifact with `python -m repro.bench --smoke` "
            "from the repository root and commit it")


class TestWallClockBudget:
    """The smoke suite must not silently get slower than the baseline."""

    # The baseline is recorded by a standalone `python -m repro.bench`
    # process; this gate measures inside a long pytest process whose heap
    # and cache state run the same code up to ~1.6x slower, on a VM with
    # variable steal time on top.  The allowance covers that context gap:
    # this gate is the coarse backstop against order-of-magnitude
    # slowdowns, while TestCallCountBudget below holds the tight,
    # noise-free line on per-event work.
    ALLOWED_REGRESSION = 1.75
    ATTEMPTS = 3

    @staticmethod
    def _total(payload: dict) -> float:
        summary = payload.get("wall_clock")
        if isinstance(summary, dict) and "total_s" in summary:
            return float(summary["total_s"])
        return sum(experiment.get("wall_clock_s", 0.0)
                   for experiment in payload["experiments"].values())

    @classmethod
    def _baseline_total(cls, payload: dict) -> float:
        # The committed artifact records every best-of-N sample, not just
        # the winning minimum.  The budget baseline is the *worst* sample
        # per experiment: a fresh single pass here is one draw from the
        # same distribution, so comparing it against the committed
        # minimum would flag ordinary variance as a regression.
        experiments = payload.get("experiments")
        if not experiments:
            return cls._total(payload)
        total = 0.0
        for experiment in experiments.values():
            samples = experiment.get("wall_clock_samples_s")
            if samples:
                total += max(samples)
            else:
                total += experiment.get("wall_clock_s", 0.0)
        return total

    def test_total_wall_clock_within_budget(self, committed, smoke_payload,
                                            tmp_path):
        baseline = self._baseline_total(committed)
        if baseline <= 0:
            pytest.skip("committed artifact carries no wall-clock baseline")
        budget = baseline * self.ALLOWED_REGRESSION
        best = self._total(smoke_payload)
        attempt = 1
        # Wall clock is noisy; only repeated misses count as a regression.
        while best > budget and attempt < self.ATTEMPTS:
            attempt += 1
            best = min(best, self._total(_run_smoke(tmp_path, f"retry{attempt}")))
        assert best <= budget, (
            f"--smoke total wall clock regressed: best of {attempt} runs was "
            f"{best:.3f}s against a committed baseline of {baseline:.3f}s "
            f"(>{self.ALLOWED_REGRESSION:.0%} budget {budget:.3f}s); profile "
            "with `python -m repro.bench --profile --smoke` and recover the "
            "loss, or justify and regenerate the committed artifact")


class TestCallCountBudget:
    """Per-event work must not silently grow: deterministic call counts.

    Wall clock is a noisy channel (VM steal time, pytest heap state); the
    steady-state Python function-call count of an experiment is not — the
    simulator is single-threaded and fully seeded, so a warm pass executes
    exactly the same calls every time, in any process.  The committed
    artifact records it per experiment (``profile_calls``, written by
    ``--profile``: the profiled pass runs last, after the timing passes
    warmed the caches).  A fresh warm count materially above the committed
    one means a hot path gained per-event work, however quiet the machine.
    """

    # Headroom for intentional small additions; regenerating the artifact
    # resets the baseline when a change legitimately adds calls.
    ALLOWED_GROWTH = 1.10
    EXPERIMENT = "E14"  # the call-heaviest experiment guards the floor

    def test_e14_steady_state_calls_within_budget(self, committed):
        entry = committed["experiments"].get(self.EXPERIMENT, {})
        baseline = entry.get("profile_calls")
        if not baseline:
            pytest.skip("committed artifact carries no profile_calls "
                        "baseline; regenerate with --profile")
        import cProfile

        import pstats

        from repro.bench.experiments import run_experiment

        run_experiment(self.EXPERIMENT, smoke=True)  # warm the caches
        profiler = cProfile.Profile()
        profiler.enable()
        run_experiment(self.EXPERIMENT, smoke=True)
        profiler.disable()
        fresh = pstats.Stats(profiler).total_calls
        budget = int(baseline * self.ALLOWED_GROWTH)
        assert fresh <= budget, (
            f"{self.EXPERIMENT} smoke now executes {fresh} Python calls "
            f"against a committed steady-state baseline of {baseline} "
            f"(>{self.ALLOWED_GROWTH - 1:.0%} budget {budget}); this metric "
            "is deterministic, so a miss is a real hot-path regression — "
            "profile with `python -m repro.bench --profile --smoke`, shed "
            "the per-event work, or justify and regenerate the artifact")


# ---------------------------------------------------------------------------
# Large tier (opt-in): REPRO_LARGE_BENCH=1 re-runs E9/E14 at capacity scale
# ---------------------------------------------------------------------------


def _run_large(tmp_path: Path, tag: str) -> dict:
    json_path = tmp_path / f"bench_large_{tag}.json"
    run_all(scale="large", json_path=str(json_path), stream=io.StringIO())
    with open(json_path, "r", encoding="utf-8") as stream:
        return json.load(stream)


@pytest.fixture(scope="module")
def committed_large() -> dict:
    if not LARGE_ARTIFACT.exists():
        pytest.skip("no committed BENCH_large.json to compare against")
    with open(LARGE_ARTIFACT, "r", encoding="utf-8") as stream:
        return json.load(stream)


@pytest.fixture(scope="module")
def large_payload(tmp_path_factory) -> dict:
    tmp_path = tmp_path_factory.mktemp("bench_large")
    return _run_large(tmp_path, "fresh")


@pytest.mark.skipif(not RUN_LARGE_TIER,
                    reason="set REPRO_LARGE_BENCH=1 to re-run the large "
                           "tier (roughly a minute of workload)")
class TestLargeTierInvariant:
    """Golden-value + budget checks for the million-link capacity tier.

    Same contract as the smoke guards above, at capacity scale: the
    simulated payload of a fresh ``--scale large`` run must be
    byte-identical to the committed ``BENCH_large.json``, and the wall
    clock self-calibrates against the committed best-of samples (the
    baseline is the *worst* sample, the allowance is the same 1.75x the
    smoke budget uses, so the gate inherits the calibration of whatever
    machine regenerated the artifact rather than hard-coding seconds).
    """

    ALLOWED_REGRESSION = 1.75
    ATTEMPTS = 2

    def test_same_experiments(self, committed_large, large_payload):
        assert set(large_payload["experiments"]) == \
            set(committed_large["experiments"])

    def test_simulated_fields_are_identical(self, committed_large,
                                            large_payload):
        mismatches = []
        for name, golden in committed_large["experiments"].items():
            fresh = large_payload["experiments"][name]
            for key, value in golden.items():
                if not _is_sim_key(key):
                    continue
                if fresh.get(key) != value:
                    mismatches.append(f"{name}.{key}")
            for key in fresh:
                if _is_sim_key(key) and key not in golden:
                    mismatches.append(f"{name}.{key} (new field)")
        assert not mismatches, (
            "large-tier simulated results drifted from the committed "
            f"BENCH_large.json baseline: {mismatches}; if the change is "
            "intentional, regenerate with `python -m repro.bench --scale "
            "large --profile --best-of 2` from the repository root and "
            "commit it")

    def test_wall_clock_within_calibrated_budget(self, committed_large,
                                                 large_payload, tmp_path):
        baseline = sum(
            max(entry.get("wall_clock_samples_s")
                or [entry.get("wall_clock_s", 0.0)])
            for entry in committed_large["experiments"].values())
        if baseline <= 0:
            pytest.skip("committed BENCH_large.json carries no wall-clock "
                        "baseline")
        budget = baseline * self.ALLOWED_REGRESSION
        best = float(large_payload["wall_clock"]["total_s"])
        attempt = 1
        while best > budget and attempt < self.ATTEMPTS:
            attempt += 1
            retry = _run_large(tmp_path, f"retry{attempt}")
            best = min(best, float(retry["wall_clock"]["total_s"]))
        assert best <= budget, (
            f"--scale large total wall clock regressed: best of {attempt} "
            f"runs was {best:.1f}s against a committed worst-sample "
            f"baseline of {baseline:.1f}s (budget {budget:.1f}s)")

    def test_e14_large_call_budget(self, committed_large):
        """Warm steady-state call count of E14-large, held to the
        committed ``profile_calls`` with the same 10% headroom the smoke
        gate uses.  Deterministic, so a miss is a real regression."""

        baseline = committed_large["experiments"]["E14"].get("profile_calls")
        if not baseline:
            pytest.skip("committed BENCH_large.json carries no "
                        "profile_calls baseline; regenerate with --profile")
        import cProfile

        import pstats

        from repro.bench.experiments import run_experiment

        run_experiment("E14", scale="large")  # warm the caches
        profiler = cProfile.Profile()
        profiler.enable()
        run_experiment("E14", scale="large")
        profiler.disable()
        fresh = pstats.Stats(profiler).total_calls
        budget = int(baseline * 1.10)
        assert fresh <= budget, (
            f"E14-large now executes {fresh} Python calls against the "
            f"committed steady-state baseline {baseline} (budget {budget})")
