"""Tier-1 guards for the bench artifact: sim identity and wall-clock budget.

The simulator fast path is maintained under a strict pure-refactor
invariant: optimizations may change how fast the simulation *runs*, never
what it *simulates*.  These tests re-run the full ``--smoke`` suite
in-process and hold it against the committed ``BENCH_smoke.json``:

* every simulated field (rows, sim_ms columns, notes -- everything except
  the ``wall_clock*`` measurements and ``profile`` tables) must be
  byte-identical to the committed artifact;
* the total wall clock must not regress by more than 25% against the
  committed baseline (best of three runs, so a noisy neighbor does not
  fail the build).
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import pytest

from repro.bench.harness import run_all

REPO_ROOT = Path(__file__).resolve().parent.parent
COMMITTED_ARTIFACT = REPO_ROOT / "BENCH_smoke.json"

#: Keys in a per-experiment artifact entry that are *measured*, not
#: simulated; everything else must be deterministic.
NON_SIM_KEYS = ("wall_clock", "profile")


def _is_sim_key(key: str) -> bool:
    return not key.startswith(NON_SIM_KEYS)


def _run_smoke(tmp_path: Path, tag: str) -> dict:
    json_path = tmp_path / f"bench_{tag}.json"
    run_all(smoke=True, json_path=str(json_path), stream=io.StringIO())
    with open(json_path, "r", encoding="utf-8") as stream:
        return json.load(stream)


@pytest.fixture(scope="module")
def committed() -> dict:
    if not COMMITTED_ARTIFACT.exists():
        pytest.skip("no committed BENCH_smoke.json to compare against")
    with open(COMMITTED_ARTIFACT, "r", encoding="utf-8") as stream:
        return json.load(stream)


@pytest.fixture(scope="module")
def smoke_payload(tmp_path_factory) -> dict:
    tmp_path = tmp_path_factory.mktemp("bench")
    return _run_smoke(tmp_path, "fresh")


class TestSimulatedResultsInvariant:
    """Golden-value check: simulated output equals the committed artifact."""

    def test_same_experiments(self, committed, smoke_payload):
        assert set(smoke_payload["experiments"]) == set(committed["experiments"])

    def test_simulated_fields_are_identical(self, committed, smoke_payload):
        mismatches = []
        for name, golden in committed["experiments"].items():
            fresh = smoke_payload["experiments"][name]
            for key, value in golden.items():
                if not _is_sim_key(key):
                    continue
                if fresh.get(key) != value:
                    mismatches.append(f"{name}.{key}")
            for key in fresh:
                if _is_sim_key(key) and key not in golden:
                    mismatches.append(f"{name}.{key} (new field)")
        assert not mismatches, (
            "simulated results drifted from the committed BENCH_smoke.json "
            f"baseline: {mismatches}; if the change is intentional, "
            "regenerate the artifact with `python -m repro.bench --smoke` "
            "from the repository root and commit it")


class TestWallClockBudget:
    """The smoke suite must not silently get slower than the baseline."""

    ALLOWED_REGRESSION = 1.25
    ATTEMPTS = 3

    @staticmethod
    def _total(payload: dict) -> float:
        summary = payload.get("wall_clock")
        if isinstance(summary, dict) and "total_s" in summary:
            return float(summary["total_s"])
        return sum(experiment.get("wall_clock_s", 0.0)
                   for experiment in payload["experiments"].values())

    def test_total_wall_clock_within_budget(self, committed, smoke_payload,
                                            tmp_path):
        baseline = self._total(committed)
        if baseline <= 0:
            pytest.skip("committed artifact carries no wall-clock baseline")
        budget = baseline * self.ALLOWED_REGRESSION
        best = self._total(smoke_payload)
        attempt = 1
        # Wall clock is noisy; only repeated misses count as a regression.
        while best > budget and attempt < self.ATTEMPTS:
            attempt += 1
            best = min(best, self._total(_run_smoke(tmp_path, f"retry{attempt}")))
        assert best <= budget, (
            f"--smoke total wall clock regressed: best of {attempt} runs was "
            f"{best:.3f}s against a committed baseline of {baseline:.3f}s "
            f"(>{self.ALLOWED_REGRESSION:.0%} budget {budget:.3f}s); profile "
            "with `python -m repro.bench --profile --smoke` and recover the "
            "loss, or justify and regenerate the committed artifact")
