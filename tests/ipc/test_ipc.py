"""Unit tests for the simulated IPC layer (daemons and channels)."""

import pytest

from repro.errors import DaemonUnavailableError, DataLinksError, ProtocolError
from repro.ipc.channel import Channel
from repro.ipc.daemon import Daemon
from repro.ipc.message import Message, Reply
from repro.simclock import SimClock


class EchoDaemon(Daemon):
    def __init__(self, clock=None):
        super().__init__("echo", clock)
        self.register("echo", self._echo)
        self.register("fail", self._fail)

    def _echo(self, text: str) -> dict:
        return {"text": text}

    def _fail(self) -> dict:
        raise DataLinksError("boom")


class TestDaemon:
    def test_dispatch_to_registered_handler(self):
        daemon = EchoDaemon()
        reply = daemon.handle(Message(kind="echo", payload={"text": "hi"}))
        assert reply.ok and reply.payload == {"text": "hi"}

    def test_unknown_request_kind(self):
        daemon = EchoDaemon()
        reply = daemon.handle(Message(kind="nonsense"))
        assert not reply.ok
        with pytest.raises(ProtocolError):
            reply.unwrap()

    def test_errors_are_wrapped_in_reply(self):
        daemon = EchoDaemon()
        reply = daemon.handle(Message(kind="fail"))
        assert not reply.ok
        with pytest.raises(DataLinksError):
            reply.unwrap()

    def test_request_counter(self):
        daemon = EchoDaemon()
        daemon.handle(Message(kind="echo", payload={"text": "a"}))
        daemon.handle(Message(kind="echo", payload={"text": "b"}))
        assert daemon.requests_served == 2

    def test_handle_method_fallback(self):
        class WithMethod(Daemon):
            def handle_ping(self) -> dict:
                return {"pong": True}

        reply = WithMethod("m").handle(Message(kind="ping"))
        assert reply.payload == {"pong": True}


class TestChannel:
    def test_request_charges_latency(self):
        clock = SimClock()
        daemon = EchoDaemon(clock)
        channel = Channel(daemon, clock, latency_primitive="upcall_round_trip")
        before = clock.now()
        payload = channel.request("echo", text="hello")
        assert payload == {"text": "hello"}
        assert clock.now() > before
        assert clock.stats.count("upcall_round_trip") == 1

    def test_request_to_stopped_daemon_fails(self):
        clock = SimClock()
        daemon = EchoDaemon(clock)
        daemon.stop()
        channel = Channel(daemon, clock)
        with pytest.raises(DaemonUnavailableError):
            channel.request("echo", text="x")
        daemon.start()
        assert channel.request("echo", text="x") == {"text": "x"}

    def test_request_propagates_daemon_error(self):
        channel = Channel(EchoDaemon(), None)
        with pytest.raises(DataLinksError):
            channel.request("fail")

    def test_reply_helpers(self):
        assert Reply.success(a=1).unwrap() == {"a": 1}
        failure = Reply.failure(DataLinksError("nope"))
        with pytest.raises(DataLinksError):
            failure.unwrap()
