"""Bulk per-link fast paths vs their scalar reference implementations.

Three module flags gate the million-link-tier fast paths:

* :data:`repro.storage.database.FAST_SCANS` -- the unlocked point-SELECT
  short cut and the cached ``scan_max`` used by the DLFM's id allocation;
* :data:`repro.datalinks.engine.BULK_TOKEN_HANDOUT` -- the batched
  ``get_datalink_many`` host transaction that mints a whole read plan's
  tokens without the per-call session/engine dispatch frames;
* :data:`repro.workloads.audit.BATCHED_AUDIT` -- the committed-link audit
  with its per-row machinery hoisted out of the loop.

Every fast path must be *bit-identical* to the scalar reference it
replaces: same result values, same token streams, and the same simulated
ledger -- every :class:`~repro.simclock.ClockStats` label's count and
total, every domain timestamp, and the cluster wall clock.  These tests
assert that first on seeded random programs against twin reference
implementations, then flag-on vs flag-off on the real E1/E9/E14
smoke-configuration workloads (E14 includes the end-of-run audit).
"""

from __future__ import annotations

import random

import pytest

import repro.datalinks.engine as engine_module
import repro.storage.database as database_module
import repro.workloads.audit as audit_module
from repro.simclock import SimClock
from repro.storage.database import Database
from repro.storage.schema import Column, TableSchema
from repro.storage.values import DataType

#: The fast-path flags toggled together by the workload-level tests.
FLAGS = ((database_module, "FAST_SCANS"),
         (engine_module, "BULK_TOKEN_HANDOUT"),
         (audit_module, "BATCHED_AUDIT"))


def _stats_cells(stats) -> dict:
    """``{label: (count, total)}`` -- exact, no rounding."""

    return {label: (cell[0], cell[1])
            for label, cell in stats._cells.items()}


def _group_snapshot(group) -> dict:
    return {
        "global": group.global_now(),
        "domains": {name: domain.now()
                    for name, domain in group.domains.items()},
        "merged": _stats_cells(group.stats),
        "per_domain": {name: _stats_cells(domain.stats)
                       for name, domain in group.domains.items()},
    }


def _with_flags(monkeypatch, value: bool, scenario):
    for module, name in FLAGS:
        monkeypatch.setattr(module, name, value)
    return scenario()


def _make_docs_db(clock=None) -> Database:
    db = Database("fastpaths", clock if clock is not None else SimClock())
    db.create_table(TableSchema("docs", [
        Column("k", DataType.INTEGER, nullable=False),
        Column("v", DataType.INTEGER),
        Column("w", DataType.INTEGER),
    ], primary_key=("k",)))
    db.create_index("docs_by_v", "docs", ("v",))
    return db


class TestScanMaxIdentity:
    """``scan_max`` vs a full-scan select, across arbitrary mutations.

    Twin databases run one seeded mutation program; at every probe step
    one computes the maximum through :meth:`Database.scan_max` and the
    other through the unlocked full-table ``select`` it replaces.  The
    values, the charge ledgers, and the clocks must stay identical --
    including across mutations that bypass the Database facade entirely
    (direct heap inserts, the way replication redo lands rows), which
    must invalidate the cached maximum through the heap's mutation
    counter.
    """

    def _program(self, seed: int):
        rng = random.Random(seed)
        ops = []
        next_key = 0
        live = []
        for step in range(150):
            action = rng.randrange(8)
            if action < 4:
                value = None if rng.random() < 0.15 else rng.randrange(10_000)
                ops.append(("insert", next_key, value))
                live.append(next_key)
                next_key += 1
            elif action == 4 and live:
                ops.append(("delete", live.pop(rng.randrange(len(live)))))
            elif action == 5:
                # A redo-style mutation that bypasses the Database facade:
                # the heap sees it, the statement layer never does.
                ops.append(("bypass", 10_000 + step, rng.randrange(10_000)))
            else:
                ops.append(("probe",))
        ops.append(("probe",))
        return ops

    @pytest.mark.parametrize("seed", [11, 20260807, 555001])
    def test_matches_full_scan_reference(self, seed):
        fast = _make_docs_db()
        reference = _make_docs_db()
        for op in self._program(seed):
            if op[0] == "insert":
                row = {"k": op[1], "v": op[2], "w": op[1] % 7}
                fast.insert("docs", row)
                reference.insert("docs", row)
            elif op[0] == "delete":
                fast.delete("docs", {"k": op[1]})
                reference.delete("docs", {"k": op[1]})
            elif op[0] == "bypass":
                row = {"k": op[1], "v": op[2], "w": None}
                fast._plan("docs").heap.insert(dict(row))
                reference._plan("docs").heap.insert(dict(row))
            else:
                got = fast.scan_max("docs", "v")
                rows = reference.select("docs", lock=False)
                values = [row["v"] for row in rows if row["v"] is not None]
                want = max(values) if values else None
                assert got == want
                assert fast.clock.now() == reference.clock.now()
        assert _stats_cells(fast.clock.stats) == \
            _stats_cells(reference.clock.stats)

    def test_warm_tracker_survives_facade_inserts(self):
        db = _make_docs_db(SimClock())
        for key in range(20):
            db.insert("docs", {"k": key, "v": key * 3, "w": None})
        assert db.scan_max("docs", "v") == 57
        # Facade inserts keep the tracker warm incrementally ...
        db.insert("docs", {"k": 100, "v": 900, "w": None})
        assert db.scan_max("docs", "v") == 900
        # ... and a bypassing heap mutation forces the rescan.
        db._plan("docs").heap.insert({"k": 200, "v": 1234, "w": None})
        assert db.scan_max("docs", "v") == 1234

    def test_tracker_invalidated_by_crash_recovery(self):
        # A crash rebuilds the catalog with fresh heaps whose mutation
        # counters restart at zero; a tracker taken before the crash must
        # not validate against the new heap's coincidentally equal count
        # (the bug showed up as duplicate token-entry ids after failover).
        db = _make_docs_db(SimClock())
        db.insert("docs", {"k": 1, "v": 10, "w": None})
        assert db.scan_max("docs", "v") == 10
        db.wal.flush()
        db.crash()
        db.recover()
        db.insert("docs", {"k": 2, "v": 20, "w": None})
        assert db.scan_max("docs", "v") == 20

    def test_tracker_invalidated_by_restore(self):
        db = _make_docs_db(SimClock())
        db.insert("docs", {"k": 1, "v": 10, "w": None})
        image = db.backup("before")
        db.insert("docs", {"k": 2, "v": 99, "w": None})
        assert db.scan_max("docs", "v") == 99
        db.restore(image)
        db.insert("docs", {"k": 2, "v": 20, "w": None})
        assert db.scan_max("docs", "v") == 20


class TestPointSelectIdentity:
    """Unlocked point selects, flag on vs flag off, across where shapes."""

    _WHERE_SHAPES = (
        {"k": 3},            # single-PK hit
        {"k": 999},          # single-PK miss
        {"v": 6},            # secondary-index bucket (duplicates)
        {"v": -1},           # secondary-index miss
        {"w": 2},            # unindexed column: general-path fallback
        {"k": 3, "v": 9},    # two-column where: general-path fallback
        None,                # full scan
        {},                  # empty where: general path
    )

    def _scenario(self, seed: int) -> tuple:
        rng = random.Random(seed)
        db = _make_docs_db()
        for key in range(40):
            db.insert("docs", {"k": key, "v": (key % 10) * 3, "w": key % 5})
        for victim in rng.sample(range(40), 6):
            db.delete("docs", {"k": victim})
        results = []
        for step in range(60):
            where = self._WHERE_SHAPES[rng.randrange(len(self._WHERE_SHAPES))]
            results.append(db.select("docs",
                                     dict(where) if where is not None
                                     else None, lock=False))
        # Locked transactional selects must bypass the short cut entirely.
        txn = db.begin()
        results.append(db.select("docs", {"k": 3}, txn))
        db.commit(txn)
        return results, _stats_cells(db.clock.stats), db.clock.now()

    @pytest.mark.parametrize("seed", [5, 20260807, 909090])
    def test_fast_path_matches_general_path(self, seed, monkeypatch):
        fast = _with_flags(monkeypatch, True, lambda: self._scenario(seed))
        reference = _with_flags(monkeypatch, False,
                                lambda: self._scenario(seed))
        assert fast == reference


class TestBulkHandoutTokenStream:
    """``get_datalink_many`` vs the scalar per-where handout loop."""

    _WHERES = ({"file_id": 3}, {"file_id": 1}, {"file_id": 3},
               {"file_id": 99}, {"file_id": 7}, {"file_id": 1},
               {"file_id": 0})

    def _scenario(self) -> tuple:
        from repro.bench.experiments import FILES_TABLE, build_microsystem
        from repro.datalinks.control_modes import ControlMode

        system, _, _ = build_microsystem(ControlMode.RDB, size=4096, files=10)
        urls = system.engine.get_datalink_many(
            FILES_TABLE, [dict(where) for where in self._WHERES], "doc",
            access="read")
        return urls, _group_snapshot(system.clocks)

    def test_urls_and_ledger_match_scalar_reference(self, monkeypatch):
        fast = _with_flags(monkeypatch, True, self._scenario)
        reference = _with_flags(monkeypatch, False, self._scenario)
        urls, _ = fast
        assert urls[3] is None          # the miss stays a miss
        assert all(url is not None for index, url in enumerate(urls)
                   if index != 3)
        assert fast == reference

    def test_write_access_errors_match_scalar_reference(self, monkeypatch):
        from repro.bench.experiments import FILES_TABLE, build_microsystem
        from repro.datalinks.control_modes import ControlMode
        from repro.errors import DataLinksError

        def attempt():
            system, _, _ = build_microsystem(ControlMode.RDB, size=1024,
                                             files=2)
            # rdb blocks writes: the bulk path must raise the same
            # refusal, at the same point, as the scalar handout.
            with pytest.raises(DataLinksError) as excinfo:
                system.engine.get_datalink_many(
                    FILES_TABLE, [{"file_id": 0}], "doc", access="write")
            return str(excinfo.value)

        fast = _with_flags(monkeypatch, True, attempt)
        reference = _with_flags(monkeypatch, False, attempt)
        assert fast == reference

    def test_flag_actually_gates_the_path(self, monkeypatch):
        """Sanity: the reference mode really routes through ``get_datalink``."""

        from repro.bench.experiments import FILES_TABLE, build_microsystem
        from repro.datalinks.control_modes import ControlMode

        calls = []
        original = engine_module.DataLinksEngine.get_datalink

        def counting(self, *args, **kwargs):
            calls.append(args[0])
            return original(self, *args, **kwargs)

        monkeypatch.setattr(engine_module.DataLinksEngine, "get_datalink",
                            counting)
        system, _, _ = build_microsystem(ControlMode.RDB, size=1024, files=4)
        wheres = [{"file_id": index} for index in range(4)]
        monkeypatch.setattr(engine_module, "BULK_TOKEN_HANDOUT", False)
        system.engine.get_datalink_many(FILES_TABLE, wheres, "doc")
        assert len(calls) == 4
        calls.clear()
        monkeypatch.setattr(engine_module, "BULK_TOKEN_HANDOUT", True)
        system.engine.get_datalink_many(FILES_TABLE, wheres, "doc")
        assert calls == []


class TestSmokeWorkloadLedgerIdentity:
    """The real E1/E9/E14 smoke configurations, all flags on vs all off."""

    def _run_e1(self) -> dict:
        from repro.bench.experiments import FILES_TABLE, build_microsystem
        from repro.datalinks.control_modes import ControlMode

        system, _, _ = build_microsystem(ControlMode.RDB, size=4096, files=10)
        for _ in range(2):
            system.engine.select(FILES_TABLE, {"file_id": 3}, lock=False)
            system.engine.get_datalink(FILES_TABLE, {"file_id": 3}, "doc",
                                       access="read")
        system.engine.get_datalink_many(
            FILES_TABLE, [{"file_id": index} for index in (1, 3, 3, 99)],
            "doc", access="read")
        return _group_snapshot(system.clocks)

    def _run_e9(self) -> dict:
        from repro.bench.experiments import SMOKE_PARAMS
        from repro.datalinks.control_modes import ControlMode
        from repro.workloads.webserver import WebServerWorkload, WebSiteConfig

        params = SMOKE_PARAMS["E9"]
        config = WebSiteConfig(pages=params["pages"],
                               operations=params["operations"],
                               page_size=params["page_size"],
                               file_servers=2,
                               control_mode=ControlMode.RDD,
                               clients=2)
        workload = WebServerWorkload(config).setup()
        workload.run()
        return _group_snapshot(workload.system.clocks)

    def _run_e14(self) -> dict:
        from repro.bench.experiments import SMOKE_PARAMS
        from repro.datalinks.balancer import BalancerConfig
        from repro.workloads.hotspot import HotspotConfig, HotspotWorkload

        params = SMOKE_PARAMS["E14"]
        config = HotspotConfig(
            shards=params["shards"], prefixes=params["prefixes"],
            rounds=params["rounds"],
            links_per_round=params["links_per_round"],
            reads_per_round=params["reads_per_round"],
            file_size=params["file_size"],
            balancer=BalancerConfig(window_ops_min=8, move_budget=2,
                                    cooldown_ticks=1,
                                    imbalance_tolerance=1.1,
                                    split_threshold=0.6))
        workload = HotspotWorkload(config).setup()
        metrics = workload.run()
        snapshot = _group_snapshot(workload.deployment.system.clocks)
        # The audit outcome rides along: the batched audit must count the
        # exact same committed links lost as the scalar loop (zero here).
        snapshot["counters"] = dict(metrics.counters)
        return snapshot

    @pytest.mark.parametrize("scenario", ["_run_e1", "_run_e9", "_run_e14"])
    def test_every_label_count_and_total_matches(self, scenario, monkeypatch):
        runner = getattr(self, scenario)
        fast = _with_flags(monkeypatch, True, runner)
        reference = _with_flags(monkeypatch, False, runner)
        assert set(fast["merged"]) == set(reference["merged"])
        for label, cell in reference["merged"].items():
            assert fast["merged"][label] == cell, (
                f"label {label!r}: bulk fast path {fast['merged'][label]} != "
                f"scalar reference {cell}")
        assert fast == reference
