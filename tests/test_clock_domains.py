"""Clock-domain semantics: monotonicity, merge laws, global time.

Seeded property tests for the per-node simulated-time model
(:mod:`repro.simclock`): every domain's clock is monotone under any mix of
charges and merges, max-merge is commutative and idempotent, and the
cluster wall clock (``global_now``) never regresses -- including across
random shard interleavings of a real sharded deployment and across a
replicated shard's failover/fail-back cycle.
"""

import random

import pytest

from repro.simclock import (
    ClockDomainGroup,
    CostModel,
    SimClock,
    rendezvous,
)

PRIMITIVES = ["sql_statement_base", "row_write", "db_dlfm_message",
              "disk_seek", "token_generate", "log_write"]


class TestMergeLaws:
    def test_sync_to_never_moves_backwards(self):
        clock = SimClock()
        clock.advance(5.0)
        clock.sync_to(1.0)
        assert clock.now() == pytest.approx(5.0)
        clock.sync_to(9.0)
        assert clock.now() == pytest.approx(9.0)

    def test_merge_commutativity(self):
        """merge(a, b) and merge(b, a) land both clocks on the same instant."""

        for first, second in [(1.0, 7.0), (7.0, 1.0), (3.0, 3.0)]:
            a1, b1 = SimClock(start=first), SimClock(start=second)
            a2, b2 = SimClock(start=first), SimClock(start=second)
            t_ab = rendezvous(a1, b1)
            t_ba = rendezvous(b2, a2)
            assert t_ab == pytest.approx(t_ba)
            assert a1.now() == b1.now() == pytest.approx(max(first, second))
            assert a2.now() == b2.now() == pytest.approx(max(first, second))

    def test_merge_idempotent_and_associative_to_max(self):
        rng = random.Random(1234)
        starts = [rng.uniform(0, 100) for _ in range(5)]
        clocks = [SimClock(start=value) for value in starts]
        rng.shuffle(clocks)
        instant = rendezvous(*clocks)
        assert instant == pytest.approx(max(starts))
        # a second merge is a no-op
        assert rendezvous(*clocks) == pytest.approx(instant)

    def test_rendezvous_ignores_none(self):
        clock = SimClock(start=2.0)
        assert rendezvous(None, clock, None) == pytest.approx(2.0)
        assert rendezvous() == 0.0

    def test_overlap_gathers_max_not_sum(self):
        clock = SimClock(start=10.0)
        with clock.overlap():
            assert clock.send_time() == pytest.approx(10.0)
            clock.receive(13.0)
            clock.receive(11.0)
            # send time stays anchored at the fork
            assert clock.send_time() == pytest.approx(10.0)
        assert clock.now() == pytest.approx(13.0)

    def test_nested_overlap_frames(self):
        clock = SimClock(start=1.0)
        with clock.overlap():
            clock.receive(4.0)
            with clock.overlap():
                clock.receive(9.0)
            # the inner gather feeds the outer frame, not now()
            assert clock.now() == pytest.approx(1.0)
        assert clock.now() == pytest.approx(9.0)


class TestDomainGroupProperties:
    def test_random_interleaving_keeps_domains_monotone(self):
        """Charges, one-way syncs and barriers never move any clock back."""

        rng = random.Random(20260730)
        group = ClockDomainGroup(CostModel())
        domains = [group.domain(f"node{index}") for index in range(6)]
        last_seen = {domain.name: domain.now() for domain in domains}
        last_global = group.global_now()
        for _ in range(2000):
            action = rng.randrange(4)
            if action == 0:
                domain = rng.choice(domains)
                domain.charge(rng.choice(PRIMITIVES), times=rng.randrange(1, 4))
            elif action == 1:
                sender, receiver = rng.sample(domains, 2)
                receiver.sync_to(sender.send_time())
            elif action == 2:
                rendezvous(*rng.sample(domains, rng.randrange(2, 4)))
            else:
                group.barrier()
            for domain in domains:
                assert domain.now() >= last_seen[domain.name]
                last_seen[domain.name] = domain.now()
            assert group.global_now() >= last_global
            assert group.global_now() == pytest.approx(
                max(domain.now() for domain in domains))
            last_global = group.global_now()

    def test_group_advance_passes_idle_time_cluster_wide(self):
        group = ClockDomainGroup(CostModel())
        a, b = group.domain("a"), group.domain("b")
        b.charge("disk_seek")
        gap = b.now() - a.now()
        a.advance(2.0)
        assert a.now() == pytest.approx(2.0)
        assert b.now() - a.now() == pytest.approx(gap)

    def test_advance_local_moves_only_one_domain(self):
        group = ClockDomainGroup(CostModel())
        a, b = group.domain("a"), group.domain("b")
        a.advance_local(3.0)
        assert a.now() == pytest.approx(3.0)
        assert b.now() == 0.0

    def test_serial_group_collapses_to_one_timeline(self):
        group = ClockDomainGroup(CostModel(), serial=True)
        assert group.domain("host") is group.domain("shard0")
        group.domain("host").charge("disk_seek")
        assert group.global_now() == pytest.approx(group.domain("x").now())

    def test_merged_stats_mirror_every_domain(self):
        group = ClockDomainGroup(CostModel())
        group.domain("a").charge("row_write")
        group.domain("b").charge("row_write", label="dlfm.row_write")
        assert group.stats.count("row_write") == 1
        assert group.stats.count("dlfm.row_write") == 1
        by_domain = group.stats_by_domain()
        assert by_domain["a"]["row_write"]["count"] == 1
        assert by_domain["b"]["dlfm.row_write"]["count"] == 1


class TestShardedDeploymentTime:
    def test_global_now_never_regresses_across_random_shard_interleavings(self):
        """Random link/read/commit interleavings over a sharded deployment
        keep every domain monotone and the cluster wall clock non-decreasing."""

        from repro.datalinks.datalink_type import DatalinkOptions, datalink_column
        from repro.datalinks.sharding import ShardedDataLinksDeployment
        from repro.storage.schema import Column, TableSchema
        from repro.storage.values import DataType

        rng = random.Random(99)
        deployment = ShardedDataLinksDeployment(3, group_commit_window=2)
        deployment.create_table(TableSchema("docs", [
            Column("doc_id", DataType.INTEGER, nullable=False),
            datalink_column("body", DatalinkOptions(recovery=False)),
        ], primary_key=("doc_id",)))
        session = deployment.session("user", uid=4001)
        clocks = deployment.clocks
        last_global = clocks.global_now()
        last_local = {name: domain.now()
                      for name, domain in clocks.domains.items()}
        urls = []
        for step in range(40):
            action = rng.randrange(3) if urls else 0
            if action == 0:
                path = f"/dir{rng.randrange(6)}/doc{step:04d}.dat"
                url = deployment.put_file(session, path, b"x" * 256)
                host_txn = deployment.begin()
                deployment.engine.insert(
                    "docs", {"doc_id": step, "body": url}, host_txn)
                deployment.commit(host_txn)
                urls.append(url)
            elif action == 1:
                deployment.read_url(session, rng.choice(urls))
            else:
                deployment.drain()
            assert clocks.global_now() >= last_global
            last_global = clocks.global_now()
            for name, domain in clocks.domains.items():
                assert domain.now() >= last_local.get(name, 0.0)
                last_local[name] = domain.now()
        # host commits synchronize through every enlisted shard, so the host
        # domain can never be ahead of the cluster wall clock by definition
        assert deployment.clock.now() <= clocks.global_now() + 1e-12

    def test_failover_merge_does_not_regress_time(self):
        """Promotion and fail-back (cross-domain merges) keep time monotone."""

        from repro.datalinks.datalink_type import DatalinkOptions, datalink_column
        from repro.datalinks.sharding import ShardedDataLinksDeployment
        from repro.storage.schema import Column, TableSchema
        from repro.storage.values import DataType

        deployment = ShardedDataLinksDeployment(2, replication=True,
                                                group_commit_window=1)
        deployment.create_table(TableSchema("docs", [
            Column("doc_id", DataType.INTEGER, nullable=False),
            datalink_column("body", DatalinkOptions(recovery=False)),
        ], primary_key=("doc_id",)))
        session = deployment.session("user", uid=4001)
        url = deployment.put_file(session, "/a/doc.dat", b"payload")
        host_txn = deployment.begin()
        deployment.engine.insert("docs", {"doc_id": 1, "body": url}, host_txn)
        deployment.commit(host_txn)
        shard = deployment.shard_of("/a/doc.dat")
        clocks = deployment.clocks
        before = {name: domain.now() for name, domain in clocks.domains.items()}
        global_before = clocks.global_now()
        deployment.crash_shard(shard)
        deployment.fail_over(shard)
        assert deployment.read_url(session, url) == b"payload"
        deployment.fail_back(shard)
        assert deployment.read_url(session, url) == b"payload"
        assert clocks.global_now() >= global_before
        for name, domain in clocks.domains.items():
            assert domain.now() >= before.get(name, 0.0)


class TestCoalescedChannelEquivalence:
    """The coalesced (envelope-free) exchange fast path vs the reference
    Message/Reply path, across seeded random batch interleavings.

    :data:`repro.ipc.channel.COALESCED` gates whether an exchange calls the
    daemon's ``dispatch`` directly or routes through ``handle`` with a full
    envelope.  Both must charge the exact same costs in the exact same
    order, so every domain's timestamp, the cluster wall clock, every
    statistics cell and every returned payload must be identical -- over
    random mixes of synchronous requests, pipelined posts, coalesced
    ``post_group`` batches, handler failures, dead-daemon refusals and
    scatter-gather windows."""

    def _run_traffic(self, seed: int) -> dict:
        from repro.errors import ReproError
        from repro.ipc.channel import Channel
        from repro.ipc.daemon import Daemon

        group = ClockDomainGroup(CostModel())
        host = group.domain("host")

        class Worker(Daemon):
            def __init__(self, name, clock):
                super().__init__(name, clock)
                self.register("work", self._work)
                self.register("boom", self._boom)

            def _work(self, cost=1):
                self.clock.charge("row_write", times=cost)
                return {"done": cost}

            def _boom(self):
                self.clock.charge("disk_seek")
                raise ReproError("statement-time failure")

            def handle_lazy(self, cost=1):
                # Method-style handler: resolved through the getattr
                # fallback and cached on first dispatch.
                self.clock.charge("row_read", times=cost)
                return {"lazy": cost}

        workers = [Worker(f"shard{index}", group.domain(f"shard{index}"))
                   for index in range(3)]
        local = Worker("local", host)     # same-domain channel (no merge)
        channels = [Channel(worker, host,
                            latency_primitive="db_dlfm_message")
                    for worker in workers]
        channels.append(Channel(local,
                                host, latency_primitive="upcall_round_trip"))
        rng = random.Random(seed)
        outcomes = []
        for _ in range(250):
            channel = rng.choice(channels)
            action = rng.randrange(7)
            if action == 0:
                outcomes.append(channel.request("work",
                                                cost=rng.randrange(1, 3)))
            elif action == 1:
                outcomes.append(channel.post("work",
                                             cost=rng.randrange(1, 3)))
            elif action == 2:
                payloads = [{"cost": rng.randrange(1, 3)}
                            for _ in range(rng.randrange(1, 4))]
                outcomes.extend(channel.post_group("work", payloads))
            elif action == 3:
                exchange = channel.post if rng.randrange(2) else \
                    channel.request
                try:
                    exchange("boom")
                except ReproError as error:
                    outcomes.append(type(error).__name__)
            elif action == 4:
                outcomes.append(channel.request("lazy",
                                                cost=rng.randrange(1, 3)))
            elif action == 5:
                # A dead daemon refuses both exchange styles; the attempt
                # still costs the caller time.
                channel._daemon.stop()
                try:
                    channel.request("work")
                except ReproError as error:
                    outcomes.append(type(error).__name__)
                channel._daemon.start()
            else:
                with host.overlap():
                    for fanned in rng.sample(channels, 2):
                        outcomes.append(fanned.request("work", cost=1))
        return {
            "outcomes": outcomes,
            "global": group.global_now(),
            "domains": {name: domain.now()
                        for name, domain in group.domains.items()},
            "stats": {label: (cell[0], cell[1])
                      for label, cell in group.stats._cells.items()},
            "served": {worker.name: worker.requests_served
                       for worker in workers + [local]},
        }

    @pytest.mark.parametrize("seed", [11, 20260807, 987654])
    def test_fast_path_is_byte_identical_to_envelope_path(self, seed,
                                                          monkeypatch):
        from repro.ipc import channel as channel_module

        monkeypatch.setattr(channel_module, "COALESCED", True)
        coalesced = self._run_traffic(seed)
        monkeypatch.setattr(channel_module, "COALESCED", False)
        reference = self._run_traffic(seed)
        assert coalesced == reference

    def test_flag_actually_gates_the_envelope(self, monkeypatch):
        """Sanity: the reference mode really allocates Message envelopes."""

        from repro.ipc import channel as channel_module
        from repro.ipc.daemon import Daemon

        group = ClockDomainGroup(CostModel())
        host, shard = group.domain("host"), group.domain("shard")
        worker = Daemon("worker", shard)
        worker.register("noop", lambda: {})
        handled = []
        original = worker.handle
        worker.handle = lambda message: handled.append(message.kind) or \
            original(message)
        channel = channel_module.Channel(worker, host)
        monkeypatch.setattr(channel_module, "COALESCED", True)
        channel.request("noop")
        assert handled == []
        monkeypatch.setattr(channel_module, "COALESCED", False)
        channel.request("noop")
        assert handled == ["noop"]


class TestPipelinedErrorLatency:
    """A pipelined (posted) message whose handler fails is not free: the
    error surfaces at statement time, which means the caller waited for it,
    so the caller's clock merges up to the callee's completion."""

    def test_posted_error_costs_a_round_trip_sync(self):
        from repro.errors import ReproError
        from repro.ipc.channel import Channel
        from repro.ipc.daemon import Daemon

        group = ClockDomainGroup(CostModel())
        host, shard = group.domain("host"), group.domain("shard")

        class Worker(Daemon):
            def __init__(self, clock):
                super().__init__("worker", clock)
                self.register("ok", self._ok)
                self.register("boom", self._boom)

            def _ok(self):
                self.clock.charge("disk_seek")
                return {}

            def _boom(self):
                self.clock.charge("disk_seek")
                raise ReproError("statement-time failure")

        worker = Worker(shard)
        channel = Channel(worker, host, latency_primitive="db_dlfm_message")

        # Success post: fire-and-forget -- the host pays only the enqueue
        # cost while the work accrues on the shard's own timeline.
        before = host.now()
        channel.post("ok")
        assert host.now() - before == pytest.approx(host.costs.message_send)
        assert shard.now() > host.now()

        # Error post: the host is charged the wait for the failure to come
        # back, exactly like a synchronous round trip.
        with pytest.raises(ReproError):
            channel.post("boom")
        assert host.now() == pytest.approx(shard.now())

    def test_failed_link_statement_syncs_host_to_shard_domain(self):
        """A link batch that fails at statement time charges the caller the
        round trip to the shard's clock domain (it used to be free)."""

        from repro.datalinks.control_modes import ControlMode
        from repro.datalinks.datalink_type import DatalinkOptions, datalink_column
        from repro.datalinks.sharding import ShardedDataLinksDeployment
        from repro.errors import ReproError
        from repro.storage.schema import Column, TableSchema
        from repro.storage.values import DataType

        deployment = ShardedDataLinksDeployment(2, group_commit_window=1)
        deployment.create_table(TableSchema("docs", [
            Column("doc_id", DataType.INTEGER, nullable=False),
            datalink_column("body", DatalinkOptions(
                control_mode=ControlMode.RFF, recovery=False)),
        ], primary_key=("doc_id",)))
        missing = "/nowhere/missing.dat"
        shard_clock = deployment.shard(deployment.shard_of(missing)).clock
        url = deployment.engine.make_url(deployment.shard_of(missing), missing)
        host_txn = deployment.begin()
        with pytest.raises(ReproError):
            deployment.engine.insert_many(
                "docs", [{"doc_id": 1, "body": url}], host_txn)
        # The statement-time error was not free: at the moment it surfaced
        # (before any abort round trip) the host domain had already merged
        # up to the shard's completion of the failed link batch.
        assert deployment.clock.now() >= shard_clock.now()
        deployment.abort(host_txn)
