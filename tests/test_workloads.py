"""Workload generators: invariants of the web, video-store and editor workloads."""

import pytest

from repro.datalinks.control_modes import ControlMode
from repro.workloads.editors import (
    ALL_SCHEMES,
    ConcurrentEditorsWorkload,
    EditorConfig,
    SCHEME_CAU_DETECT,
    SCHEME_CAU_OVERWRITE,
    SCHEME_CICO,
    SCHEME_UIP,
)
from repro.workloads.generator import (
    OperationStats,
    UniformChooser,
    WorkloadMetrics,
    ZipfChooser,
    make_content,
)
from repro.workloads.videostore import VideoStoreConfig, VideoStoreWorkload
from repro.workloads.webserver import (
    BlobWebSiteWorkload,
    WebServerWorkload,
    WebSiteConfig,
)


class TestGeneratorHelpers:
    def test_make_content_exact_size_and_versioned(self):
        assert len(make_content(100, tag="t", version=3)) == 100
        assert make_content(64, "a", 1) != make_content(64, "a", 2)

    def test_zipf_chooser_prefers_low_ranks(self):
        chooser = ZipfChooser(50, theta=1.2, seed=1)
        picks = chooser.choose_many(2000)
        assert all(0 <= p < 50 for p in picks)
        assert picks.count(0) > picks.count(40)

    def test_zipf_rejects_empty_domain(self):
        with pytest.raises(ValueError):
            ZipfChooser(0)

    def test_uniform_chooser_in_range(self):
        chooser = UniformChooser(10, seed=2)
        assert all(0 <= chooser.choose() < 10 for _ in range(100))

    def test_operation_stats_percentiles(self):
        stats = OperationStats()
        for value in (1.0, 2.0, 3.0, 4.0):
            stats.record(value)
        assert stats.count == 4
        assert stats.mean == 2.5
        assert stats.p50 == 2.5
        assert stats.maximum == 4.0

    def test_workload_metrics_throughput(self):
        metrics = WorkloadMetrics(started_at=0.0, finished_at=2.0)
        metrics.record("op", 0.1)
        metrics.record("op", 0.2)
        assert metrics.throughput() == 1.0
        assert metrics.summary_rows()[0]["count"] == 2
        metrics.bump("errors")
        assert metrics.counters["errors"] == 1


class TestWebWorkload:
    def test_read_mostly_mix_and_metadata_consistency(self):
        config = WebSiteConfig(pages=6, page_size=2048, operations=40,
                               read_fraction=0.9, control_mode=ControlMode.RFD)
        workload = WebServerWorkload(config).setup()
        metrics = workload.run()
        reads = metrics.stats("read_page").count
        updates = metrics.stats("update_page").count
        assert reads + updates + metrics.counters.get("update_conflicts", 0) == 40
        assert reads > updates
        # after the run every page's metadata matches the file on disk
        system = workload.system
        for row in system.host_db.select("web_pages", lock=False):
            from repro.util.urls import parse_url

            parsed = parse_url(row["body"])
            attrs = system.file_server(parsed.server).files.stat(parsed.path)
            assert attrs.size == row["body_size"]

    def test_pages_spread_across_file_servers(self):
        config = WebSiteConfig(pages=8, operations=0, file_servers=2)
        workload = WebServerWorkload(config).setup()
        servers = {url.split("/")[2] for url in workload.urls}
        assert servers == {"web0", "web1"}

    def test_blob_site_equivalent_runs(self):
        config = WebSiteConfig(pages=4, page_size=1024, operations=20)
        metrics = BlobWebSiteWorkload(config).setup().run()
        assert metrics.stats("read_page").count + metrics.stats("update_page").count == 20


class TestVideoStoreWorkload:
    def test_lifecycle_operations(self):
        config = VideoStoreConfig(movies=4, clip_size=4096, operations=30)
        workload = VideoStoreWorkload(config).setup()
        metrics = workload.run()
        assert metrics.stats("preview_clip").count > 0
        # previews always return the full clip
        assert workload.preview(1) == 4096
        workload.refresh_clip(2, version=9)
        assert workload.preview(2) == 4096
        workload.retire_movie(3)
        assert workload.browse("drama") is not None
        dlfm = workload.system.file_server(config.server).dlfm
        assert dlfm.repository.linked_file("/clips/movie00003.mpg") is None

    def test_retired_movie_clip_handling_respects_on_unlink(self):
        from repro.datalinks.datalink_type import OnUnlink

        config = VideoStoreConfig(movies=2, clip_size=1024, operations=0,
                                  on_unlink=OnUnlink.DELETE)
        workload = VideoStoreWorkload(config).setup()
        workload.retire_movie(0)
        assert not workload.system.file_server(config.server).files.exists(
            "/clips/movie00000.mpg")


class TestEditorsWorkload:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_every_scheme_completes(self, scheme):
        config = EditorConfig(editors=3, files=2, edits_per_editor=2, scheme=scheme)
        metrics = ConcurrentEditorsWorkload(config).setup().run()
        assert metrics.counters.get("completed_edits", 0) > 0
        assert "aborted_run" not in metrics.counters

    def test_uip_and_cico_never_lose_updates(self):
        for scheme in (SCHEME_UIP, SCHEME_CICO):
            config = EditorConfig(editors=4, files=2, edits_per_editor=2, scheme=scheme)
            metrics = ConcurrentEditorsWorkload(config).setup().run()
            assert metrics.counters.get("lost_updates", 0) == 0
            expected = config.editors * config.edits_per_editor
            assert metrics.counters["completed_edits"] == expected

    def test_cau_overwrite_loses_updates_under_contention(self):
        config = EditorConfig(editors=4, files=1, edits_per_editor=3,
                              scheme=SCHEME_CAU_OVERWRITE)
        metrics = ConcurrentEditorsWorkload(config).setup().run()
        assert metrics.counters.get("lost_updates", 0) > 0

    def test_cau_detect_rejects_conflicting_checkins_instead(self):
        config = EditorConfig(editors=4, files=1, edits_per_editor=3,
                              scheme=SCHEME_CAU_DETECT)
        metrics = ConcurrentEditorsWorkload(config).setup().run()
        assert metrics.counters.get("lost_updates", 0) == 0
        assert metrics.counters.get("rejected_checkins", 0) > 0

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            ConcurrentEditorsWorkload(EditorConfig(scheme="optimistic"))
