"""Unit tests for the block device and inode permission helpers."""

import pytest

from repro.errors import Errno, FileSystemError
from repro.fs.blockdev import BlockDevice
from repro.fs.inode import FileType, Inode, permission_granted


class TestBlockDevice:
    def test_allocate_read_write_roundtrip(self):
        device = BlockDevice(block_size=16)
        block = device.allocate_block()
        device.write_block(block, b"hello")
        data = device.read_block(block)
        assert data.startswith(b"hello")
        assert len(data) == 16

    def test_short_writes_are_zero_padded(self):
        device = BlockDevice(block_size=8)
        block = device.allocate_block()
        device.write_block(block, b"ab")
        assert device.read_block(block) == b"ab" + bytes(6)

    def test_oversized_write_rejected(self):
        device = BlockDevice(block_size=4)
        block = device.allocate_block()
        with pytest.raises(FileSystemError):
            device.write_block(block, b"too long")

    def test_bad_block_number_rejected(self):
        device = BlockDevice()
        with pytest.raises(FileSystemError):
            device.read_block(999)

    def test_free_block_is_reused(self):
        device = BlockDevice()
        block = device.allocate_block()
        device.free_block(block)
        assert device.allocate_block() == block

    def test_capacity_enforced(self):
        device = BlockDevice(capacity_blocks=2)
        device.allocate_block()
        device.allocate_block()
        with pytest.raises(FileSystemError) as info:
            device.allocate_block()
        assert info.value.errno is Errno.ENOSPC

    def test_stats_accumulate(self):
        device = BlockDevice(block_size=4)
        block = device.allocate_block()
        device.write_block(block, b"x")
        device.read_block(block)
        assert device.stats.writes == 1
        assert device.stats.reads == 1
        assert device.stats.bytes_written == 4


class TestPermissionCheck:
    def test_owner_uses_owner_bits(self):
        assert permission_granted(0o600, 10, 20, 10, (20,), True, True)
        assert not permission_granted(0o600, 10, 20, 10, (20,), False, False, want_exec=True)

    def test_group_uses_group_bits(self):
        assert permission_granted(0o640, 10, 20, 11, (20,), True, False)
        assert not permission_granted(0o640, 10, 20, 11, (20,), False, True)

    def test_other_uses_other_bits(self):
        assert permission_granted(0o604, 10, 20, 99, (77,), True, False)
        assert not permission_granted(0o600, 10, 20, 99, (77,), True, False)

    def test_superuser_bypasses_checks(self):
        assert permission_granted(0o000, 10, 20, 0, (), True, True, True)

    def test_inode_attribute_snapshot(self):
        inode = Inode(ino=5, ftype=FileType.REGULAR, mode=0o644, uid=1, gid=2, size=10)
        attrs = inode.attributes()
        assert attrs.ino == 5 and attrs.size == 10 and attrs.is_regular
        inode.size = 99
        assert attrs.size == 10    # snapshot is immutable
