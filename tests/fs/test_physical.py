"""Unit tests for the physical (native) file system VFS implementation."""

import pytest

from repro.errors import Errno, FileSystemError
from repro.fs.physical import PhysicalFileSystem
from repro.fs.vfs import Credentials, LockKind, LockRequest, OpenFlags


@pytest.fixture
def pfs():
    return PhysicalFileSystem("pfs0")


@pytest.fixture
def root():
    return Credentials(uid=0, gid=0, username="root")


@pytest.fixture
def user():
    return Credentials(uid=500, gid=100, username="user")


def _create_file(pfs, cred, name="f.txt", content=b""):
    vnode = pfs.fs_create(pfs.root_vnode(), name, 0o644, cred)
    if content:
        pfs.fs_readwrite(vnode, 0, data=content, write=True, cred=cred)
    return vnode


class TestNamespace:
    def test_create_and_lookup(self, pfs, root):
        created = _create_file(pfs, root)
        found = pfs.fs_lookup(pfs.root_vnode(), "f.txt", root)
        assert found == created

    def test_lookup_missing_entry(self, pfs, root):
        with pytest.raises(FileSystemError) as info:
            pfs.fs_lookup(pfs.root_vnode(), "nope", root)
        assert info.value.errno is Errno.ENOENT

    def test_create_duplicate_rejected(self, pfs, root):
        _create_file(pfs, root)
        with pytest.raises(FileSystemError) as info:
            pfs.fs_create(pfs.root_vnode(), "f.txt", 0o644, root)
        assert info.value.errno is Errno.EEXIST

    def test_mkdir_and_readdir(self, pfs, root):
        pfs.fs_mkdir(pfs.root_vnode(), "sub", 0o755, root)
        _create_file(pfs, root, "a.txt")
        assert pfs.fs_readdir(pfs.root_vnode(), root) == ["a.txt", "sub"]

    def test_remove_frees_inode_and_blocks(self, pfs, root):
        vnode = _create_file(pfs, root, content=b"x" * 10000)
        allocated = pfs.device.allocated_blocks
        assert allocated > 0
        pfs.fs_remove(pfs.root_vnode(), "f.txt", root)
        assert pfs.device.allocated_blocks < allocated
        with pytest.raises(FileSystemError):
            pfs.fs_getattr(vnode, root)

    def test_remove_directory_with_remove_rejected(self, pfs, root):
        pfs.fs_mkdir(pfs.root_vnode(), "sub", 0o755, root)
        with pytest.raises(FileSystemError) as info:
            pfs.fs_remove(pfs.root_vnode(), "sub", root)
        assert info.value.errno is Errno.EISDIR

    def test_rmdir_requires_empty_directory(self, pfs, root):
        sub = pfs.fs_mkdir(pfs.root_vnode(), "sub", 0o755, root)
        pfs.fs_create(sub, "inner.txt", 0o644, root)
        with pytest.raises(FileSystemError) as info:
            pfs.fs_rmdir(pfs.root_vnode(), "sub", root)
        assert info.value.errno is Errno.ENOTEMPTY
        pfs.fs_remove(sub, "inner.txt", root)
        pfs.fs_rmdir(pfs.root_vnode(), "sub", root)
        assert pfs.fs_readdir(pfs.root_vnode(), root) == []

    def test_rename_moves_entry(self, pfs, root):
        _create_file(pfs, root, "old.txt", b"data")
        sub = pfs.fs_mkdir(pfs.root_vnode(), "sub", 0o755, root)
        pfs.fs_rename(pfs.root_vnode(), "old.txt", sub, "new.txt", root)
        assert pfs.fs_readdir(sub, root) == ["new.txt"]
        with pytest.raises(FileSystemError):
            pfs.fs_lookup(pfs.root_vnode(), "old.txt", root)

    def test_rename_onto_existing_name_rejected(self, pfs, root):
        _create_file(pfs, root, "a.txt")
        _create_file(pfs, root, "b.txt")
        with pytest.raises(FileSystemError) as info:
            pfs.fs_rename(pfs.root_vnode(), "a.txt", pfs.root_vnode(), "b.txt", root)
        assert info.value.errno is Errno.EEXIST


class TestDataPath:
    def test_write_then_read_back(self, pfs, root):
        vnode = _create_file(pfs, root, content=b"hello world")
        data = pfs.fs_readwrite(vnode, 0, length=0, write=False, cred=root)
        assert data == b"hello world"

    def test_partial_reads_and_offsets(self, pfs, root):
        vnode = _create_file(pfs, root, content=b"0123456789")
        assert pfs.fs_readwrite(vnode, 2, length=3, write=False, cred=root) == b"234"
        assert pfs.fs_readwrite(vnode, 8, length=10, write=False, cred=root) == b"89"
        assert pfs.fs_readwrite(vnode, 50, length=3, write=False, cred=root) == b""

    def test_write_spanning_multiple_blocks(self, pfs, root):
        content = bytes(range(256)) * 64          # 16 KiB > several 4 KiB blocks
        vnode = _create_file(pfs, root, content=content)
        assert pfs.fs_readwrite(vnode, 0, write=False, cred=root) == content

    def test_overwrite_in_the_middle(self, pfs, root):
        vnode = _create_file(pfs, root, content=b"aaaaaaaaaa")
        pfs.fs_readwrite(vnode, 3, data=b"BBB", write=True, cred=root)
        assert pfs.fs_readwrite(vnode, 0, write=False, cred=root) == b"aaaBBBaaaa"

    def test_write_updates_size_and_mtime(self, pfs, root):
        vnode = _create_file(pfs, root)
        before = pfs.fs_getattr(vnode, root)
        pfs.fs_readwrite(vnode, 0, data=b"xyz", write=True, cred=root)
        after = pfs.fs_getattr(vnode, root)
        assert after.size == 3
        assert after.mtime >= before.mtime

    def test_truncate_via_setattr(self, pfs, root):
        vnode = _create_file(pfs, root, content=b"x" * 9000)
        pfs.fs_setattr(vnode, root, size=100)
        assert pfs.fs_getattr(vnode, root).size == 100
        assert len(pfs.fs_readwrite(vnode, 0, write=False, cred=root)) == 100

    def test_open_with_truncate_flag_empties_file(self, pfs, root):
        vnode = _create_file(pfs, root, content=b"old content")
        pfs.fs_open(vnode, OpenFlags.WRITE | OpenFlags.TRUNCATE, root)
        assert pfs.fs_getattr(vnode, root).size == 0

    def test_whole_file_helpers(self, pfs, root):
        vnode = _create_file(pfs, root, content=b"version one")
        pfs.write_whole_file(vnode.ino, b"v2")
        assert pfs.read_whole_file(vnode.ino) == b"v2"


class TestPermissions:
    def test_open_denied_without_permission(self, pfs, root, user):
        vnode = _create_file(pfs, root, content=b"secret")
        pfs.fs_setattr(vnode, root, mode=0o600)
        with pytest.raises(FileSystemError) as info:
            pfs.fs_open(vnode, OpenFlags.READ, user)
        assert info.value.errno is Errno.EACCES

    def test_write_open_denied_on_read_only_file(self, pfs, root, user):
        vnode = _create_file(pfs, root)
        pfs.fs_setattr(vnode, root, uid=user.uid, gid=user.gid)
        pfs.fs_setattr(vnode, user, mode=0o444)
        with pytest.raises(FileSystemError):
            pfs.fs_open(vnode, OpenFlags.WRITE, user)

    def test_only_owner_or_root_may_chown_chmod(self, pfs, root, user):
        vnode = _create_file(pfs, root)
        with pytest.raises(FileSystemError) as info:
            pfs.fs_setattr(vnode, user, mode=0o777)
        assert info.value.errno is Errno.EPERM
        pfs.fs_setattr(vnode, root, uid=user.uid, gid=user.gid)
        pfs.fs_setattr(vnode, user, mode=0o640)    # owner may now chmod
        assert pfs.fs_getattr(vnode, root).mode == 0o640

    def test_directory_write_permission_needed_to_create(self, pfs, root, user):
        sub = pfs.fs_mkdir(pfs.root_vnode(), "locked", 0o755, root)
        with pytest.raises(FileSystemError):
            pfs.fs_create(sub, "f.txt", 0o644, user)


class TestFileLocks:
    def test_exclusive_lock_conflicts(self, pfs, root):
        vnode = _create_file(pfs, root)
        assert pfs.fs_lockctl(vnode, LockRequest(LockKind.EXCLUSIVE, owner="a"), root)
        with pytest.raises(FileSystemError) as info:
            pfs.fs_lockctl(vnode, LockRequest(LockKind.EXCLUSIVE, owner="b"), root)
        assert info.value.errno is Errno.EAGAIN

    def test_shared_locks_coexist_and_block_exclusive(self, pfs, root):
        vnode = _create_file(pfs, root)
        pfs.fs_lockctl(vnode, LockRequest(LockKind.SHARED, owner="a"), root)
        pfs.fs_lockctl(vnode, LockRequest(LockKind.SHARED, owner="b"), root)
        with pytest.raises(FileSystemError):
            pfs.fs_lockctl(vnode, LockRequest(LockKind.EXCLUSIVE, owner="c"), root)

    def test_unlock_releases(self, pfs, root):
        vnode = _create_file(pfs, root)
        pfs.fs_lockctl(vnode, LockRequest(LockKind.EXCLUSIVE, owner="a"), root)
        pfs.fs_lockctl(vnode, LockRequest(LockKind.UNLOCK, owner="a"), root)
        assert pfs.fs_lockctl(vnode, LockRequest(LockKind.EXCLUSIVE, owner="b"), root)
