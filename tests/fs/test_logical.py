"""Unit tests for the logical file system (paths, descriptors, syscalls)."""

import pytest

from repro.errors import Errno, FileSystemError
from repro.fs.physical import PhysicalFileSystem
from repro.fs.vfs import FilterVFS, OpenFlags


class TestOpenReadWriteClose:
    def test_create_write_read_roundtrip(self, fs_stack, root_cred):
        _, lfs = fs_stack
        fd = lfs.open("/notes.txt", OpenFlags.WRITE | OpenFlags.CREATE, root_cred)
        assert lfs.write(fd, b"hello ") == 6
        assert lfs.write(fd, b"world") == 5
        lfs.close(fd)
        assert lfs.read_file("/notes.txt", root_cred) == b"hello world"

    def test_open_missing_file_without_create(self, fs_stack, root_cred):
        _, lfs = fs_stack
        with pytest.raises(FileSystemError) as info:
            lfs.open("/missing.txt", OpenFlags.READ, root_cred)
        assert info.value.errno is Errno.ENOENT

    def test_read_requires_read_flag(self, fs_stack, root_cred):
        _, lfs = fs_stack
        fd = lfs.open("/w.txt", OpenFlags.WRITE | OpenFlags.CREATE, root_cred)
        with pytest.raises(FileSystemError) as info:
            lfs.read(fd)
        assert info.value.errno is Errno.EBADF
        lfs.close(fd)

    def test_write_requires_write_flag(self, fs_stack, root_cred):
        _, lfs = fs_stack
        lfs.write_file("/r.txt", b"data", root_cred)
        fd = lfs.open("/r.txt", OpenFlags.READ, root_cred)
        with pytest.raises(FileSystemError):
            lfs.write(fd, b"nope")
        lfs.close(fd)

    def test_offset_advances_and_lseek_resets(self, fs_stack, root_cred):
        _, lfs = fs_stack
        lfs.write_file("/seek.txt", b"0123456789", root_cred)
        fd = lfs.open("/seek.txt", OpenFlags.READ, root_cred)
        assert lfs.read(fd, 4) == b"0123"
        assert lfs.read(fd, 4) == b"4567"
        lfs.lseek(fd, 1)
        assert lfs.read(fd, 3) == b"123"
        lfs.close(fd)

    def test_append_flag_writes_at_end(self, fs_stack, root_cred):
        _, lfs = fs_stack
        lfs.write_file("/log.txt", b"line1\n", root_cred)
        fd = lfs.open("/log.txt", OpenFlags.WRITE | OpenFlags.APPEND, root_cred)
        lfs.write(fd, b"line2\n")
        lfs.close(fd)
        assert lfs.read_file("/log.txt", root_cred) == b"line1\nline2\n"

    def test_truncate_flag_discards_old_content(self, fs_stack, root_cred):
        _, lfs = fs_stack
        lfs.write_file("/t.txt", b"old old old", root_cred)
        lfs.write_file("/t.txt", b"new", root_cred)
        assert lfs.read_file("/t.txt", root_cred) == b"new"

    def test_bad_descriptor_rejected(self, fs_stack):
        _, lfs = fs_stack
        with pytest.raises(FileSystemError) as info:
            lfs.read(1234)
        assert info.value.errno is Errno.EBADF

    def test_close_releases_descriptor(self, fs_stack, root_cred):
        _, lfs = fs_stack
        fd = lfs.open("/x.txt", OpenFlags.WRITE | OpenFlags.CREATE, root_cred)
        lfs.close(fd)
        with pytest.raises(FileSystemError):
            lfs.close(fd)
        assert lfs.open_descriptors() == []


class TestNamespaceSyscalls:
    def test_makedirs_and_listdir(self, fs_stack, root_cred):
        _, lfs = fs_stack
        lfs.makedirs("/a/b/c", root_cred)
        lfs.write_file("/a/b/c/file.txt", b"x", root_cred)
        assert lfs.listdir("/a/b", root_cred) == ["c"]
        assert lfs.listdir("/a/b/c", root_cred) == ["file.txt"]

    def test_makedirs_tolerates_existing_prefix(self, fs_stack, root_cred):
        _, lfs = fs_stack
        lfs.makedirs("/a/b", root_cred)
        lfs.makedirs("/a/b/c", root_cred)
        assert lfs.exists("/a/b/c", root_cred)

    def test_stat_and_exists(self, fs_stack, root_cred):
        _, lfs = fs_stack
        lfs.write_file("/s.txt", b"abc", root_cred)
        assert lfs.stat("/s.txt", root_cred).size == 3
        assert lfs.exists("/s.txt", root_cred)
        assert not lfs.exists("/missing", root_cred)

    def test_unlink_and_rename(self, fs_stack, root_cred):
        _, lfs = fs_stack
        lfs.write_file("/old.txt", b"x", root_cred)
        lfs.rename("/old.txt", "/new.txt", root_cred)
        assert lfs.exists("/new.txt", root_cred)
        lfs.unlink("/new.txt", root_cred)
        assert not lfs.exists("/new.txt", root_cred)

    def test_chmod_chown_truncate(self, fs_stack, root_cred, alice_cred):
        _, lfs = fs_stack
        lfs.write_file("/perm.txt", b"payload", root_cred)
        lfs.chown("/perm.txt", alice_cred.uid, alice_cred.gid, root_cred)
        lfs.chmod("/perm.txt", 0o600, alice_cred)
        attrs = lfs.stat("/perm.txt", root_cred)
        assert attrs.uid == alice_cred.uid and attrs.mode == 0o600
        lfs.truncate("/perm.txt", 2, alice_cred)
        assert lfs.stat("/perm.txt", root_cred).size == 2

    def test_relative_path_rejected(self, fs_stack, root_cred):
        _, lfs = fs_stack
        with pytest.raises(FileSystemError) as info:
            lfs.open("relative.txt", OpenFlags.READ, root_cred)
        assert info.value.errno is Errno.EINVAL

    def test_permission_denied_propagates(self, fs_stack, root_cred, alice_cred):
        _, lfs = fs_stack
        lfs.write_file("/private.txt", b"secret", root_cred)
        lfs.chmod("/private.txt", 0o600, root_cred)
        with pytest.raises(FileSystemError) as info:
            lfs.read_file("/private.txt", alice_cred)
        assert info.value.errno is Errno.EACCES

    def test_file_locking_via_descriptor(self, fs_stack, root_cred, alice_cred):
        _, lfs = fs_stack
        lfs.write_file("/locked.txt", b"x", root_cred)
        lfs.chmod("/locked.txt", 0o666, root_cred)
        fd1 = lfs.open("/locked.txt", OpenFlags.WRITE, root_cred)
        fd2 = lfs.open("/locked.txt", OpenFlags.WRITE, alice_cred)
        assert lfs.lock_file(fd1, exclusive=True)
        with pytest.raises(FileSystemError):
            lfs.lock_file(fd2, exclusive=True)
        lfs.unlock_file(fd1)
        assert lfs.lock_file(fd2, exclusive=True)
        lfs.close(fd1)
        lfs.close(fd2)


class TestMountsAndStacking:
    def test_mount_at_subdirectory(self, clock, root_cred):
        from repro.fs.logical import LogicalFileSystem

        root_fs = PhysicalFileSystem("rootfs", clock=clock)
        data_fs = PhysicalFileSystem("datafs", clock=clock)
        lfs = LogicalFileSystem(clock=clock)
        lfs.mount("/", root_fs)
        lfs.mount("/data", data_fs)
        lfs.write_file("/data/d.txt", b"on data fs", root_cred)
        lfs.write_file("/r.txt", b"on root fs", root_cred)
        assert data_fs.inode(2) is not None          # file landed on datafs
        assert lfs.read_file("/data/d.txt", root_cred) == b"on data fs"

    def test_rename_across_mounts_rejected(self, clock, root_cred):
        from repro.fs.logical import LogicalFileSystem

        lfs = LogicalFileSystem(clock=clock)
        lfs.mount("/", PhysicalFileSystem("rootfs", clock=clock))
        lfs.mount("/data", PhysicalFileSystem("datafs", clock=clock))
        lfs.write_file("/a.txt", b"x", root_cred)
        with pytest.raises(FileSystemError) as info:
            lfs.rename("/a.txt", "/data/a.txt", root_cred)
        assert info.value.errno is Errno.EXDEV

    def test_filter_vfs_is_transparent(self, clock, root_cred):
        from repro.fs.logical import LogicalFileSystem

        physical = PhysicalFileSystem("pfs", clock=clock)
        stacked = FilterVFS(physical)
        lfs = LogicalFileSystem(clock=clock)
        lfs.mount("/", stacked)
        lfs.makedirs("/d", root_cred)
        lfs.write_file("/d/f.txt", b"through the filter", root_cred)
        assert lfs.read_file("/d/f.txt", root_cred) == b"through the filter"
        assert lfs.stat("/d/f.txt", root_cred).size == 18
        lfs.rename("/d/f.txt", "/d/g.txt", root_cred)
        lfs.unlink("/d/g.txt", root_cred)
        assert lfs.listdir("/d", root_cred) == []
