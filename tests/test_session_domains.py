"""Client clock domains, admission control, and the concurrency sweeps.

Three suites:

* seeded property tests for :class:`repro.api.admission.AdmissionController`
  -- FIFO fairness under random arrival interleavings, non-negative queue
  delay that grows with queue depth, and a connection limit that is never
  exceeded (counted over the simulated ``[admitted_at, released_at)``
  hold intervals, since the Python call stack itself never nests);
* equivalence tests for :data:`repro.simclock.SESSION_DOMAINS` -- a
  single-client sweep is byte-identical with the flag on or off, and the
  flag-off path degrades every pool to the serialized reference loop;
* invariant tests for multi-client runs -- per-domain monotonicity and
  ``global_now`` dominance, the same contract
  ``tests/test_clock_domains.py`` pins for the node domains.
"""

from __future__ import annotations

import random

import pytest

import repro.simclock as simclock
from repro.api.admission import AdmissionController
from repro.api.system import DataLinksSystem
from repro.simclock import ClockDomainGroup, gather
from repro.workloads.clients import ClientPool
from repro.workloads.failover import FailoverConfig, FailoverWorkload
from repro.workloads.hotspot import HotspotConfig, HotspotWorkload
from repro.workloads.webserver import WebServerWorkload, WebSiteConfig


class FakeClock:
    """now()/sync_to() shim so admission properties run without a system."""

    def __init__(self, now: float = 0.0):
        self._now = now

    def now(self) -> float:
        return self._now

    def sync_to(self, instant: float) -> None:
        if instant > self._now:
            self._now = instant

    def advance(self, amount: float) -> None:
        self._now += amount


class TestAdmissionProperties:
    """Seeded property tests over random arrival interleavings."""

    @pytest.mark.parametrize("seed", [7, 41, 1999])
    def test_fifo_queue_delay_and_connection_limit(self, seed):
        rng = random.Random(seed)
        limit = rng.randint(1, 4)
        controller = AdmissionController(limit)
        arrivals = sorted(rng.uniform(0.0, 2.0)
                          for _ in range(rng.randint(20, 60)))
        tickets = []
        for arrival in arrivals:
            clock = FakeClock(arrival)
            ticket = controller.acquire(clock)
            # Queue delay is exactly the jump charged to the client.
            assert ticket.queue_delay >= 0.0
            assert clock.now() == pytest.approx(ticket.admitted_at)
            assert ticket.admitted_at >= ticket.arrival
            clock.advance(rng.uniform(0.001, 0.2))   # service time
            controller.release(ticket, clock)
            assert ticket.released_at == pytest.approx(clock.now())
            tickets.append(ticket)

        # FIFO fairness: with arrivals presented in non-decreasing order
        # no later arrival is admitted before an earlier one.
        admitted = [ticket.admitted_at for ticket in tickets]
        assert all(later >= earlier
                   for earlier, later in zip(admitted, admitted[1:]))

        # The connection limit holds over simulated time: at no instant
        # do more than ``limit`` hold intervals overlap.
        events = []
        for ticket in tickets:
            events.append((ticket.admitted_at, 1))
            events.append((ticket.released_at, -1))
        held = max_held = 0
        for _, delta in sorted(events, key=lambda event: (event[0], event[1])):
            held += delta
            max_held = max(max_held, held)
        assert max_held <= limit
        stats = controller.stats()
        assert stats["admitted"] == len(tickets)
        assert stats["limit"] == limit

    def test_queue_delay_grows_with_queue_depth(self):
        """N same-instant arrivals with fixed service time: the k-th
        client waits ceil((k+1-limit)/limit) service slots -- delay is
        monotone non-decreasing in position."""

        limit, service, clients = 2, 0.1, 9
        controller = AdmissionController(limit)
        delays = []
        for _ in range(clients):
            clock = FakeClock(1.0)
            ticket = controller.acquire(clock)
            clock.advance(service)
            controller.release(ticket, clock)
            delays.append(ticket.queue_delay)
        assert all(later >= earlier
                   for earlier, later in zip(delays, delays[1:]))
        assert delays[0] == 0.0
        assert delays[-1] == pytest.approx(
            service * ((clients - 1) // limit))

    def test_over_commit_is_rejected(self):
        controller = AdmissionController(1)
        clock = FakeClock()
        controller.acquire(clock)
        with pytest.raises(RuntimeError):
            controller.acquire(clock)

    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionController(0)


class TestSessionDomainPooling:
    """session_domains() shape: pooling, serial degradation, flag off."""

    def test_each_client_gets_its_own_domain(self):
        group = ClockDomainGroup()
        clocks = group.session_domains(5, prefix="c")
        assert len(clocks) == 5
        assert len({id(clock) for clock in clocks}) == 5

    def test_pooled_domains_cycle(self):
        group = ClockDomainGroup()
        clocks = group.session_domains(7, limit=3, prefix="p")
        assert len(clocks) == 7
        assert len({id(clock) for clock in clocks}) == 3
        assert clocks[0] is clocks[3] is clocks[6]

    def test_flag_off_degrades_to_the_base_clock(self, monkeypatch):
        monkeypatch.setattr(simclock, "SESSION_DOMAINS", False)
        group = ClockDomainGroup()
        base = group.domain("host")
        clocks = group.session_domains(4, base)
        assert clocks == [base] * 4

    def test_serial_group_degrades_to_the_base_clock(self):
        group = ClockDomainGroup(serial=True)
        base = group.domain("host")
        clocks = group.session_domains(4, base)
        assert clocks == [base] * 4

    def test_domains_start_at_the_base_time(self):
        group = ClockDomainGroup()
        base = group.domain("host")
        base.advance(1.5)
        clocks = group.session_domains(3, base, prefix="late")
        assert all(clock.now() == pytest.approx(1.5) for clock in clocks)

    def test_gather_merges_through_the_target(self):
        group = ClockDomainGroup()
        host = group.domain("host")
        clients = group.session_domains(3, host, prefix="g")
        clients[0].advance_local(0.5)
        clients[2].advance_local(1.25)
        instant = gather(host, clients)
        assert instant == pytest.approx(1.25)
        assert host.now() == pytest.approx(1.25)
        assert all(clock.now() == pytest.approx(1.25) for clock in clients)


class TestSessionDomainEquivalence:
    """SESSION_DOMAINS on/off: single-client runs are byte-identical."""

    @staticmethod
    def _webserver_steps():
        config = WebSiteConfig(pages=4, operations=10, page_size=4 * 1024,
                               admission_limit=2, client_think_s=0.05)
        workload = WebServerWorkload(config).setup()
        return workload.run_session_sweep((1,))

    @staticmethod
    def _failover_steps():
        config = FailoverConfig(shards=2, files=8, file_size=512,
                                rows_per_transaction=4)
        workload = FailoverWorkload(config).setup()
        return workload.run_read_sweep((1,), reads_per_client=4,
                                       admission_limit=2)

    @pytest.mark.parametrize("steps", [_webserver_steps.__func__,
                                       _failover_steps.__func__],
                             ids=["webserver", "failover"])
    def test_single_client_is_byte_identical(self, monkeypatch, steps):
        monkeypatch.setattr(simclock, "SESSION_DOMAINS", True)
        with_domains = steps()
        monkeypatch.setattr(simclock, "SESSION_DOMAINS", False)
        serialized = steps()
        assert with_domains == serialized

    def test_flag_off_serializes_multi_client_runs(self, monkeypatch):
        """With the flag off every pool shares the host clock, so a
        multi-session sweep degrades to single-session throughput."""

        monkeypatch.setattr(simclock, "SESSION_DOMAINS", False)
        config = WebSiteConfig(pages=4, operations=10, page_size=4 * 1024)
        workload = WebServerWorkload(config).setup()
        one, four = workload.run_session_sweep((1, 4))
        assert four["ops_per_sim_s"] == pytest.approx(
            one["ops_per_sim_s"], rel=0.2)
        assert four["queue_p99_ms"] == 0.0


class TestMultiClientInvariants:
    """Per-domain monotonicity and global_now dominance under a pool."""

    def test_client_timelines_are_monotone(self):
        system = DataLinksSystem()
        system.add_file_server("inv0")
        session = system.session("seed", uid=900)
        url = session.put_file("inv0", "/inv/doc.dat", b"x" * 2048)
        system.enable_admission(2)
        pool = ClientPool(system, 6, think_s=0.01, prefix="inv",
                          username="inv", uid_base=901)
        observed: dict[int, list[float]] = {index: [] for index in range(6)}

        def read(client_session, index, op_index):
            observed[index].append(client_session.clock.now())
            client_session.read_url(url)
            observed[index].append(client_session.clock.now())

        pool.run(3, read)
        system.disable_admission()
        for index, series in observed.items():
            assert series == sorted(series), \
                f"client {index} timeline went backwards: {series}"
        global_now = system.clocks.global_now()
        for clock in pool.clocks:
            assert clock.now() <= global_now + 1e-12
        # The final gather brought the host to the slowest client.
        assert system.clock.now() == pytest.approx(
            max(clock.now() for clock in pool.clocks))
        assert pool.latency.count == 18
        assert min(pool.queue_delay.samples) >= 0.0

    def test_admission_caps_concurrency_in_sim_time(self):
        """With a 1-slot gate and per-client domains the pool serializes:
        elapsed time is at least ops x (think + service)."""

        system = DataLinksSystem()
        system.add_file_server("cap0")
        session = system.session("seed", uid=910)
        url = session.put_file("cap0", "/cap/doc.dat", b"y" * 1024)
        admission = system.enable_admission(1)
        pool = ClientPool(system, 4, think_s=0.05, prefix="cap",
                          username="cap", uid_base=911)
        pool.run(1, lambda s, i, o: s.read_url(url))
        system.disable_admission()
        assert admission.max_held == 1
        assert pool.elapsed_s >= 4 * 0.05
        # Three of the four waited, each at least one think+service slot.
        waited = [value for value in pool.queue_delay.samples if value > 0]
        assert len(waited) == 3

    def test_hotspot_reader_pool_round_trips(self):
        """The E14 per-client-domain read path serves every scheduled
        read and loses no committed links."""

        config = HotspotConfig(shards=2, witnesses=0, prefixes=4, rounds=2,
                               links_per_round=2, reads_per_round=6,
                               file_size=256, reader_sessions=3)
        workload = HotspotWorkload(config).setup()
        metrics = workload.run()
        assert metrics.counters.get("reads_failed", 0) == 0
        assert metrics.counters["reads_ok"] == 12
        assert metrics.counters["committed_links_lost"] == 0
