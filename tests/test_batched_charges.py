"""Batched charge application vs the per-record reference path.

``SimClock.charge_run`` and ``SimClock.charge_batch`` accumulate a whole
run of charges in a local ledger and write the clock and its statistics
back once.  The module flag :data:`repro.simclock.BATCHED_CHARGES` gates
the fast path: when ``False`` both methods replay every event through the
scalar :meth:`~repro.simclock.SimClock.charge` reference implementation.

These tests assert the two modes are *bit-identical* -- every
:class:`~repro.simclock.ClockStats` label's count and total, every
domain's timestamp, and the cluster wall clock -- first on seeded random
charge programs, then on the real E1/E11/E14 smoke-configuration
workloads, whose hot paths are exactly what the ledger exists for.
"""

from __future__ import annotations

import random

import pytest

import repro.simclock as simclock
from repro.simclock import ClockDomainGroup, CostModel

PRIMITIVES = ["sql_statement_base", "row_write", "row_read", "log_write",
              "token_generate", "daemon_dispatch", "disk_seek"]


def _stats_cells(stats) -> dict:
    """``{label: (count, total)}`` -- exact, no rounding."""

    return {label: (cell[0], cell[1])
            for label, cell in stats._cells.items()}


def _group_snapshot(group: ClockDomainGroup) -> dict:
    return {
        "global": group.global_now(),
        "domains": {name: domain.now()
                    for name, domain in group.domains.items()},
        "merged": _stats_cells(group.stats),
        "per_domain": {name: _stats_cells(domain.stats)
                       for name, domain in group.domains.items()},
    }


def _with_flag(monkeypatch, value: bool, scenario):
    monkeypatch.setattr(simclock, "BATCHED_CHARGES", value)
    return scenario()


class TestChargeProgramIdentity:
    """Seeded random programs of charge/charge_run/charge_batch."""

    def _run_program(self, seed: int) -> dict:
        rng = random.Random(seed)
        group = ClockDomainGroup(CostModel())
        domains = [group.domain(f"node{index}") for index in range(3)]
        compiled = {}
        for step in range(300):
            domain = rng.choice(domains)
            action = rng.randrange(4)
            if action == 0:
                domain.charge(rng.choice(PRIMITIVES),
                              times=rng.randrange(1, 3),
                              scale=rng.choice([1.0, 0.1]))
            elif action == 1:
                domain.charge_run(rng.choice(PRIMITIVES),
                                  rng.randrange(0, 6),
                                  scale=rng.choice([1.0, 0.1]),
                                  label=rng.choice([None, "scoped.run"]))
            elif action == 2:
                events = tuple(
                    (rng.choice(PRIMITIVES), rng.choice([1.0, 0.1]),
                     rng.choice([None, "scoped.batch"]))
                    for _ in range(rng.randrange(1, 4)))
                key = (domain.name, events)
                if key not in compiled:
                    compiled[key] = domain.compile_charges(events)
                domain.charge_batch(compiled[key], rng.randrange(0, 5))
            else:
                # Cross-domain merges between charges, so ledger
                # write-backs interleave with externally moved clocks.
                other = rng.choice(domains)
                other.sync_to(domain.send_time())
        return _group_snapshot(group)

    @pytest.mark.parametrize("seed", [7, 20260807, 424242])
    def test_fast_path_matches_scalar_reference(self, seed, monkeypatch):
        fast = _with_flag(monkeypatch, True, lambda: self._run_program(seed))
        reference = _with_flag(monkeypatch, False,
                               lambda: self._run_program(seed))
        assert fast == reference

    def test_flag_actually_gates_the_path(self, monkeypatch):
        """Sanity: the reference mode really routes through ``charge``."""

        calls = []
        original = simclock.SimClock.charge

        def counting_charge(self, primitive, **kwargs):
            calls.append(primitive)
            return original(self, primitive, **kwargs)

        monkeypatch.setattr(simclock.SimClock, "charge", counting_charge)
        monkeypatch.setattr(simclock, "BATCHED_CHARGES", False)
        clock = simclock.SimClock()
        clock.charge_run("row_write", 4)
        clock.charge_batch(clock.compile_charges(
            [("row_read", 1.0, None)]), 3)
        assert calls == ["row_write"] * 4 + ["row_read"] * 3
        calls.clear()
        monkeypatch.setattr(simclock, "BATCHED_CHARGES", True)
        clock.charge_run("row_write", 4)
        assert calls == []


class TestSmokeWorkloadLedgerIdentity:
    """The real E1/E11/E14 smoke configurations, flag on vs off."""

    def _run_e1(self) -> dict:
        from repro.bench.experiments import FILES_TABLE, build_microsystem
        from repro.datalinks.control_modes import ControlMode

        system, owner, _ = build_microsystem(ControlMode.RDB, size=4096,
                                             files=10)
        for _ in range(2):
            system.engine.select(FILES_TABLE, {"file_id": 3}, lock=False)
            system.engine.get_datalink(FILES_TABLE, {"file_id": 3}, "doc",
                                       access="read")
        return _group_snapshot(system.clocks)

    def _run_e11(self) -> dict:
        from repro.bench.experiments import SMOKE_PARAMS
        from repro.datalinks.control_modes import ControlMode
        from repro.workloads.scaleout import ScaleOutConfig, ScaleOutWorkload

        params = SMOKE_PARAMS["E11"]
        config = ScaleOutConfig(shards=params["shards"],
                                clients=params["clients"],
                                transactions_per_client=params[
                                    "transactions_per_client"],
                                rows_per_transaction=params[
                                    "rows_per_transaction"],
                                file_size=params["file_size"],
                                control_mode=ControlMode.RDB)
        workload = ScaleOutWorkload(config).setup()
        workload.run()
        return _group_snapshot(workload.deployment.clocks)

    def _run_e14(self) -> dict:
        from repro.bench.experiments import SMOKE_PARAMS
        from repro.datalinks.balancer import BalancerConfig
        from repro.workloads.hotspot import HotspotConfig, HotspotWorkload

        params = SMOKE_PARAMS["E14"]
        config = HotspotConfig(
            shards=params["shards"], prefixes=params["prefixes"],
            rounds=params["rounds"],
            links_per_round=params["links_per_round"],
            reads_per_round=params["reads_per_round"],
            file_size=params["file_size"],
            balancer=BalancerConfig(window_ops_min=8, move_budget=2,
                                    cooldown_ticks=1,
                                    imbalance_tolerance=1.1,
                                    split_threshold=0.6))
        workload = HotspotWorkload(config).setup()
        workload.run()
        return _group_snapshot(workload.deployment.system.clocks)

    @pytest.mark.parametrize("scenario", ["_run_e1", "_run_e11", "_run_e14"])
    def test_every_label_count_and_total_matches(self, scenario, monkeypatch):
        runner = getattr(self, scenario)
        fast = _with_flag(monkeypatch, True, runner)
        reference = _with_flag(monkeypatch, False, runner)
        assert set(fast["merged"]) == set(reference["merged"])
        for label, cell in reference["merged"].items():
            assert fast["merged"][label] == cell, (
                f"label {label!r}: batched {fast['merged'][label]} != "
                f"per-record reference {cell}")
        assert fast == reference
