"""The reproduced experiments must run and reproduce the paper's qualitative claims."""

import io
import json

import pytest

from repro.bench.experiments import (
    ALL_EXPERIMENTS,
    SMOKE_PARAMS,
    experiment_e1,
    experiment_e2,
    experiment_e3,
    experiment_e5,
    experiment_e6,
    experiment_e7,
    experiment_e8,
    experiment_e11,
    experiment_e12,
    run_experiment,
)
from repro.bench.metrics import ExperimentResult, format_table
from repro.workloads.editors import EditorConfig


class TestHarness:
    def test_registry_covers_all_experiments(self):
        expected = {f"E{i}" for i in range(1, 15)}
        assert set(ALL_EXPERIMENTS) == expected

    def test_smoke_params_cover_every_experiment(self):
        assert set(SMOKE_PARAMS) == set(ALL_EXPERIMENTS)

    @pytest.mark.parametrize("experiment_id", sorted(ALL_EXPERIMENTS))
    def test_every_experiment_completes_in_smoke_mode(self, experiment_id):
        """CI gate: ``python -m repro.bench --smoke`` must cover E1..E12."""

        result = run_experiment(experiment_id, smoke=True)
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == experiment_id
        assert result.rows

    def test_run_experiment_by_id_case_insensitive(self):
        result = run_experiment("e1")
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == "E1"

    def test_unknown_experiment_id(self):
        with pytest.raises(KeyError):
            run_experiment("E42")

    def test_smoke_mode_emits_perf_artifact(self, tmp_path):
        """``python -m repro.bench --smoke`` writes BENCH_smoke.json with a
        per-experiment simulated-ms summary for the perf trajectory."""

        from repro.bench.harness import run_all

        artifact = tmp_path / "BENCH_smoke.json"
        run_all(["E1", "E11"], smoke=True, json_path=str(artifact),
                stream=io.StringIO())
        payload = json.loads(artifact.read_text())
        assert payload["mode"] == "smoke"
        assert set(payload["experiments"]) == {"E1", "E11"}
        e11 = payload["experiments"]["E11"]
        assert e11["rows"] and e11["wall_clock_s"] >= 0.0
        assert any(key.endswith("_ms") or "per_sim_s" in key
                   for key in e11["sim_ms"])
        # every cell is JSON-round-trippable (LSNs and such become strings)
        json.dumps(payload)

    def test_table_formatting_text_and_markdown(self):
        headers = ["name", "value"]
        rows = [{"name": "a", "value": 1.5}, ["b", 2]]
        text = format_table(headers, rows)
        assert "name" in text and "1.500" in text
        markdown = format_table(headers, rows, markdown=True)
        assert markdown.count("|") > 4
        result = ExperimentResult("EX", "t", "claim", headers, rows, notes="n")
        assert "claim" in result.as_text()
        assert "### EX" in result.as_markdown()


class TestExperimentClaims:
    def test_e1_datalink_retrieval_under_three_ms(self):
        result = experiment_e1(repeats=10)
        token_rows = [row for row in result.rows if "token" in row["statement"]]
        assert token_rows and all(row["within_3ms"] == "yes" for row in token_rows)

    def test_e2_reads_outside_full_control_avoid_upcalls(self):
        result = experiment_e2(repeats=5)
        by_mode = {row["mode"]: row for row in result.rows}
        for mode in ("rff", "rfb", "rfd"):
            assert by_mode[mode]["upcalls_per_open"] == 0
            assert by_mode[mode]["added_vs_unlinked_ms"] == pytest.approx(0.0, abs=1e-6)
        for mode in ("rdb", "rdd"):
            assert by_mode[mode]["upcalls_per_open"] >= 2
            assert 0.0 < by_mode[mode]["added_vs_unlinked_ms"] < 5.0

    def test_e3_overhead_shrinks_with_file_size_and_blob_does_not(self):
        result = experiment_e3(sizes=(64 * 1024, 1024 * 1024), repeats=2)
        small, large = result.rows
        assert large["fs_overhead_pct"] < small["fs_overhead_pct"]
        assert large["fs_overhead_pct"] < 3.0
        assert large["blob_overhead_pct"] > 10 * large["fs_overhead_pct"]

    def test_e5_scheme_comparison_shape(self):
        result = experiment_e5(EditorConfig(editors=4, files=2, edits_per_editor=2))
        by_scheme = {row["scheme"]: row for row in result.rows}
        assert by_scheme["uip"]["lost_updates"] == 0
        assert by_scheme["cico"]["lost_updates"] == 0
        assert by_scheme["cau-overwrite"]["lost_updates"] > 0
        assert by_scheme["cau-detect"]["lost_updates"] == 0
        assert by_scheme["cau-detect"]["rejected_checkins"] > 0

    def test_e6_atomicity_scenarios_all_pass(self):
        result = experiment_e6()
        assert all(row["pass"] == "yes" for row in result.rows)

    def test_e7_coordinated_restore_consistency(self):
        result = experiment_e7()
        assert all(row["file_content_matches"] == "yes" for row in result.rows)
        assert all(row["metadata_matches"] == "yes" for row in result.rows)

    def test_e8_sync_semantics_match_paper(self):
        result = experiment_e8()
        assert all(row["matches_paper"] == "yes" for row in result.rows)

    def test_e12_replica_failover_gives_full_availability(self):
        result = experiment_e12(shards=2, files=12, reads_per_phase=12,
                                file_size=512, rows_per_transaction=4,
                                follower_read_batch=12, writes_per_phase=4)
        baseline = next(row for row in result.rows
                        if "no replication" in row["configuration"])
        replicated = next(row for row in result.rows
                          if "1 witness" in row["configuration"])
        two_witness = next(row for row in result.rows
                           if "2 witnesses" in row["configuration"])
        # the crashed shard's prefix was actually exercised after the crash
        assert baseline["victim_reads_after"] > 0
        assert replicated["victim_reads_after"] > 0
        # unreplicated: every read of the crashed prefix fails;
        # replicated: zero failures after promotion
        assert baseline["victim_availability_pct"] == 0.0
        assert baseline["victim_failures_after"] == baseline["victim_reads_after"]
        assert replicated["victim_availability_pct"] == 100.0
        assert replicated["victim_failures_after"] == 0
        assert replicated["failover_ms"] > 0
        # writable failover: victim-prefix link transactions go from a full
        # outage to full availability once the witness is a full primary
        assert baseline["write_availability_pct"] == 0.0
        assert baseline["writes_ok_after"] == 0
        assert replicated["write_availability_pct"] == 100.0
        assert replicated["writes_ok_after"] > 0
        assert two_witness["write_availability_pct"] == 100.0
        # follower reads: throughput of the concurrent read burst rises
        # with every witness the router may load-balance over
        assert replicated["follower_reads_per_sim_s"] > \
            baseline["follower_reads_per_sim_s"]
        assert two_witness["follower_reads_per_sim_s"] > \
            replicated["follower_reads_per_sim_s"]
        # replication taxes the write path
        assert replicated["links_per_sim_s"] < baseline["links_per_sim_s"]

    def test_e12_smoke_rows_have_availability_shape(self):
        """CI gate: the smoke-mode E12 rows (what BENCH_smoke.json records)
        carry the write-availability and follower-read columns."""

        result = run_experiment("E12", smoke=True)
        required = {"write_availability_pct", "writes_ok_after",
                    "follower_reads_per_sim_s", "victim_availability_pct",
                    "failover_ms"}
        assert required <= set(result.headers)
        for row in result.rows:
            assert required <= set(row)
        baseline = next(row for row in result.rows
                        if "no replication" in row["configuration"])
        promoted = [row for row in result.rows
                    if "writable failover" in row["configuration"]]
        assert baseline["write_availability_pct"] == 0.0
        assert promoted and all(row["write_availability_pct"] > 0.0
                                for row in promoted)

    def test_e13_online_rebalance_keeps_foreground_alive(self):
        """E13: a prefix moves between shards with zero committed-link loss,
        nonzero foreground link+read throughput *during* the move, and the
        moved prefix promotable from the destination's witness set."""

        from repro.bench.experiments import experiment_e13

        result = experiment_e13(shards=2, hot_files=6, cold_files=6,
                                file_size=512, reads_per_phase=12,
                                links_per_phase=4)
        by_phase = {row["phase"]: row for row in result.rows}
        during = next(row for row in result.rows
                      if row["phase"].startswith("during move"))
        failover = next(row for row in result.rows
                        if "after dest failover" in row["phase"])
        # the move actually moved something, and lost nothing
        assert during["moved_files"] > 0
        for row in result.rows:
            assert row["committed_links_lost"] == 0
        assert during["move_ms"] > 0
        # foreground traffic kept flowing inside the 2PC hand-off; reads
        # of the moving prefix are dual-served from the pre-export
        # snapshot, so the move is read-invisible (100%, not merely >0)
        assert during["reads_ok"] > 0 and during["links_ok"] > 0
        assert during["read_availability_pct"] == 100.0
        assert during["link_availability_pct"] > 0
        # the moving prefix itself was back-pressured, not failed
        assert during["links_blocked"] > 0
        # old URLs resolve on the new owner afterwards
        after = by_phase["after move (old URLs, new owner)"]
        assert after["read_availability_pct"] == 100.0
        assert after["link_availability_pct"] == 100.0
        # witness placement followed the prefix: promotion on the
        # destination serves the moved files
        assert failover["reads_ok"] > 0 and failover["reads_failed"] == 0
        assert failover["move_ms"] > 0      # the promotion was timed

    def test_e13_smoke_rows_have_rebalance_shape(self):
        """CI gate: the smoke-mode E13 rows (what BENCH_smoke.json records)
        carry the availability and loss columns, and the dual-served
        read availability stays at 100% during the move."""

        result = run_experiment("E13", smoke=True)
        required = {"read_availability_pct", "link_availability_pct",
                    "committed_links_lost", "moved_files", "links_blocked",
                    "ops_per_sim_s", "move_ms"}
        assert required <= set(result.headers)
        for row in result.rows:
            assert required <= set(row)
            assert row["committed_links_lost"] == 0
        during = next(row for row in result.rows
                      if row["phase"].startswith("during move"))
        assert during["read_availability_pct"] == 100.0
        assert during["link_availability_pct"] > 0
        assert during["ops_per_sim_s"] > 0

    def test_e14_balancer_beats_static_hash(self):
        """E14: under zipf skew the self-driving balancer beats static
        hash placement on max-shard load share and p99 link latency,
        respects its move budget, and loses no committed links."""

        from repro.bench.experiments import experiment_e14

        result = experiment_e14()
        by_variant = {row["variant"]: row for row in result.rows}
        static, balanced = by_variant["static hash"], by_variant["balanced"]
        # the balancer acted, and entirely on its own initiative
        assert balanced["moves"] > 0
        assert balanced["placement_epoch"] > static["placement_epoch"]
        # governed: never more moves in a tick than the budget allows
        assert balanced["max_moves_per_tick"] <= balanced["move_budget"]
        # the win: better balance AND a better tail
        assert balanced["max_shard_load_share"] \
            < static["max_shard_load_share"]
        assert balanced["link_p99_ms"] < static["link_p99_ms"]
        assert balanced["read_p99_ms"] < static["read_p99_ms"]
        # and nothing was lost along the way
        for row in result.rows:
            assert row["committed_links_lost"] == 0

    def test_e14_smoke_rows_have_balancer_shape(self):
        """CI gate: the smoke-mode E14 rows (what BENCH_smoke.json
        records) carry the comparison columns and still show the
        balanced variant winning within its budget."""

        result = run_experiment("E14", smoke=True)
        required = {"variant", "max_shard_load_share", "link_p99_ms",
                    "read_p99_ms", "moves", "max_moves_per_tick",
                    "move_budget", "splits", "links_blocked",
                    "committed_links_lost", "placement_epoch"}
        assert required <= set(result.headers)
        for row in result.rows:
            assert required <= set(row)
            assert row["committed_links_lost"] == 0
        by_variant = {row["variant"]: row for row in result.rows}
        static, balanced = by_variant["static hash"], by_variant["balanced"]
        assert balanced["moves"] > 0
        assert balanced["max_moves_per_tick"] <= balanced["move_budget"]
        assert balanced["max_shard_load_share"] \
            < static["max_shard_load_share"]
        assert balanced["link_p99_ms"] < static["link_p99_ms"]

    def test_e9_reports_token_cache_hit_rate(self):
        """The web workload runs with the host token cache on by default and
        the rdd row shows the hot-page hit rate."""

        result = run_experiment("E9", smoke=True)
        assert "token_cache_hit_pct" in result.headers
        rdd = next(row for row in result.rows
                   if "rdd" in row["configuration"])
        assert rdd["token_cache_hit_pct"] > 0.0

    def test_e11_scaleout_beats_baseline_by_1_5x(self):
        result = experiment_e11(shards=8, clients=4, transactions_per_client=3,
                                rows_per_transaction=16, file_size=512)
        by_config = {row["configuration"]: row for row in result.rows}
        scaled = by_config["8 shards, batched links, group commit"]
        baseline = by_config["1 server, per-row links, immediate flush"]
        assert scaled["speedup_vs_baseline"] >= 1.5
        # group commit visibly reduces host log forces
        assert scaled["host_log_flushes"] < baseline["host_log_flushes"]
        # sharding spreads the linked files across servers
        assert scaled["max_links_per_shard"] < baseline["max_links_per_shard"]

    def test_e11_clock_domains_beat_serial_clock_from_parallelism_alone(self):
        """With batching and group commit both disabled, 8 shards must win
        >=1.5x over 1 shard purely from clock-domain overlap, and the
        per-node clock must never run slower than the old serial model."""

        result = experiment_e11(shards=8, clients=4, transactions_per_client=3,
                                rows_per_transaction=16, file_size=512)
        by_config = {row["configuration"]: row for row in result.rows}
        parallel = by_config["8 shards, per-row links, immediate flush"]
        one_server = by_config["1 server, per-row links, immediate flush"]
        serial_8 = by_config[
            "8 shards, per-row links, immediate flush, serial clock"]
        serial_1 = by_config[
            "1 server, per-row links, immediate flush, serial clock"]
        # parallelism alone: no batching, no group commit, same shard count
        assert parallel["links_per_sim_s"] >= 1.5 * one_server["links_per_sim_s"]
        # the clock-domain model must not be slower than the serial baseline
        assert parallel["links_per_sim_s"] >= serial_8["links_per_sim_s"]
        assert one_server["links_per_sim_s"] >= serial_1["links_per_sim_s"]
        # under the serial clock, extra shards only added 2PC fan-out cost --
        # the regression E11 used to hide
        assert serial_8["links_per_sim_s"] <= serial_1["links_per_sim_s"]

    def test_e1_token_cache_row_reports_hits(self):
        result = experiment_e1(repeats=5)
        cache_rows = [row for row in result.rows
                      if "token cache" in row["statement"]]
        assert len(cache_rows) == 1
        # the warm-up call misses; every measured retrieval hits
        assert "hit rate 0." in cache_rows[0]["statement"] or \
            "hit rate 1.00" in cache_rows[0]["statement"]
        generated = [row for row in result.rows
                     if row["statement"].endswith("read-token generation")]
        # a cache hit skips HMAC generation, so it must be cheaper
        assert cache_rows[0]["mean_ms"] < generated[0]["mean_ms"]
