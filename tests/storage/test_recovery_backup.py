"""Crash-recovery and backup/restore tests for the storage engine."""

import pytest

from repro.errors import BackupError
from repro.storage.schema import Column, TableSchema
from repro.storage.values import DataType


def _ids(db, table="people"):
    return sorted(row["person_id"] for row in db.select(table))


class TestCrashRecovery:
    def test_committed_transactions_survive_a_crash(self, people_db):
        txn = people_db.begin()
        people_db.insert("people", {"person_id": 4, "name": "durable"}, txn)
        people_db.commit(txn)
        people_db.crash()
        people_db.recover()
        assert 4 in _ids(people_db)

    def test_uncommitted_flushed_changes_are_undone(self, people_db):
        txn = people_db.begin()
        people_db.insert("people", {"person_id": 5, "name": "loser"}, txn)
        people_db.wal.flush()      # make the loser's records durable
        people_db.crash()
        summary = people_db.recover()
        assert txn.txn_id in summary["losers_undone"]
        assert 5 not in _ids(people_db)

    def test_unflushed_changes_simply_disappear(self, people_db):
        txn = people_db.begin()
        people_db.insert("people", {"person_id": 6, "name": "volatile"}, txn)
        people_db.crash()
        people_db.recover()
        assert 6 not in _ids(people_db)

    def test_update_by_loser_is_rolled_back(self, people_db):
        txn = people_db.begin()
        people_db.update("people", {"person_id": 1}, {"name": "overwritten"}, txn)
        people_db.wal.flush()
        people_db.crash()
        people_db.recover()
        assert people_db.select_one("people", {"person_id": 1})["name"] == "ada"

    def test_recovery_replays_create_table(self, db):
        db.create_table(TableSchema("events", [Column("n", DataType.INTEGER)]))
        db.insert("events", {"n": 1})
        db.crash()
        db.recover()
        assert db.count("events") == 1

    def test_recovery_from_checkpoint_plus_tail(self, people_db):
        people_db.checkpoint()
        people_db.insert("people", {"person_id": 7, "name": "after-checkpoint"})
        people_db.crash()
        summary = people_db.recover()
        assert summary["checkpoint_lsn"].value > 0
        assert 7 in _ids(people_db)

    def test_prepared_transaction_survives_as_in_doubt(self, people_db):
        txn = people_db.begin()
        people_db.insert("people", {"person_id": 8, "name": "indoubt"}, txn)
        people_db.prepare(txn)
        people_db.crash()
        summary = people_db.recover()
        assert txn.txn_id in summary["in_doubt"]
        in_doubt = people_db.in_doubt_transactions()
        assert [t.txn_id for t in in_doubt] == [txn.txn_id]
        # the coordinator may later decide to commit it
        people_db.commit_prepared(in_doubt[0])
        assert 8 in _ids(people_db)

    def test_in_doubt_transaction_can_be_aborted_after_recovery(self, people_db):
        txn = people_db.begin()
        people_db.insert("people", {"person_id": 9, "name": "indoubt"}, txn)
        people_db.prepare(txn)
        people_db.crash()
        people_db.recover()
        people_db.abort_prepared(people_db.in_doubt_transactions()[0])
        assert 9 not in _ids(people_db)

    def test_double_crash_recover_is_idempotent(self, people_db):
        txn = people_db.begin()
        people_db.insert("people", {"person_id": 12, "name": "x"}, txn)
        people_db.wal.flush()
        people_db.crash()
        people_db.recover()
        people_db.crash()
        people_db.recover()
        assert 12 not in _ids(people_db)
        assert _ids(people_db) == [1, 2, 3]

    def test_new_transactions_rejected_until_recovery(self, people_db):
        from repro.errors import TransactionNotActive

        people_db.crash()
        with pytest.raises(TransactionNotActive):
            people_db.begin()
        people_db.recover()
        people_db.begin()


class TestBackupRestore:
    def test_restore_returns_to_backup_state(self, people_db):
        image = people_db.backup("baseline")
        people_db.delete("people", {"person_id": 1})
        people_db.insert("people", {"person_id": 40, "name": "later"})
        people_db.restore(image)
        assert _ids(people_db) == [1, 2, 3]

    def test_backup_records_state_identifier(self, people_db):
        image = people_db.backup()
        assert int(image.state_id) == int(people_db.wal.flushed_lsn)

    def test_backup_rejected_with_active_transactions(self, people_db):
        txn = people_db.begin()
        with pytest.raises(BackupError):
            people_db.backup()
        people_db.abort(txn)

    def test_restore_then_crash_recovers_to_restored_state(self, people_db):
        image = people_db.backup()
        people_db.delete("people", {"person_id": 2})
        people_db.restore(image)
        people_db.crash()
        people_db.recover()
        assert 2 in _ids(people_db)

    def test_multiple_backups_restore_out_of_order(self, people_db):
        first = people_db.backup("first")
        people_db.insert("people", {"person_id": 41, "name": "a"})
        second = people_db.backup("second")
        people_db.insert("people", {"person_id": 42, "name": "b"})
        people_db.restore(first)
        assert _ids(people_db) == [1, 2, 3]
        people_db.restore(second)
        assert _ids(people_db) == [1, 2, 3, 41]

    def test_restore_rebuilds_indexes(self, people_db):
        image = people_db.backup()
        people_db.delete("people", {"person_id": 3})
        people_db.restore(image)
        # unique index is consistent: duplicate insert still rejected
        from repro.errors import DuplicateKeyError

        with pytest.raises(DuplicateKeyError):
            people_db.insert("people", {"person_id": 3, "name": "dup"})

    def test_backup_images_listed(self, people_db):
        people_db.backup("one")
        people_db.backup("two")
        labels = [image.label for image in people_db.backups.images()]
        assert labels == ["one", "two"]
        assert people_db.backups.latest().label == "two"
