"""Unit tests for column value validation and coercion."""

import pytest

from repro.errors import TypeMismatchError
from repro.storage.values import DataType, validate_value


class TestIntegerValidation:
    def test_accepts_int(self):
        assert validate_value(DataType.INTEGER, 42) == 42

    def test_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            validate_value(DataType.INTEGER, True)

    def test_rejects_float(self):
        with pytest.raises(TypeMismatchError):
            validate_value(DataType.INTEGER, 4.2)

    def test_rejects_string(self):
        with pytest.raises(TypeMismatchError):
            validate_value(DataType.INTEGER, "42")


class TestRealValidation:
    def test_accepts_float(self):
        assert validate_value(DataType.REAL, 2.5) == 2.5

    def test_coerces_int_to_float(self):
        value = validate_value(DataType.REAL, 3)
        assert value == 3.0
        assert isinstance(value, float)

    def test_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            validate_value(DataType.REAL, False)


class TestTextValidation:
    def test_accepts_str(self):
        assert validate_value(DataType.TEXT, "hello") == "hello"

    def test_rejects_bytes(self):
        with pytest.raises(TypeMismatchError):
            validate_value(DataType.TEXT, b"hello")


class TestBooleanValidation:
    def test_accepts_bool(self):
        assert validate_value(DataType.BOOLEAN, True) is True

    def test_rejects_int(self):
        with pytest.raises(TypeMismatchError):
            validate_value(DataType.BOOLEAN, 1)


class TestTimestampValidation:
    def test_accepts_float_seconds(self):
        assert validate_value(DataType.TIMESTAMP, 12.5) == 12.5

    def test_coerces_int(self):
        assert validate_value(DataType.TIMESTAMP, 3) == 3.0

    def test_rejects_string(self):
        with pytest.raises(TypeMismatchError):
            validate_value(DataType.TIMESTAMP, "noon")


class TestBlobValidation:
    def test_accepts_bytes(self):
        assert validate_value(DataType.BLOB, b"\x00\x01") == b"\x00\x01"

    def test_coerces_bytearray(self):
        value = validate_value(DataType.BLOB, bytearray(b"abc"))
        assert value == b"abc"
        assert isinstance(value, bytes)

    def test_rejects_str(self):
        with pytest.raises(TypeMismatchError):
            validate_value(DataType.BLOB, "abc")


class TestDatalinkValidation:
    def test_accepts_well_formed_url(self):
        url = "dlfs://fs1/movies/clip.mpg"
        assert validate_value(DataType.DATALINK, url) == url

    def test_rejects_non_url_text(self):
        with pytest.raises(TypeMismatchError):
            validate_value(DataType.DATALINK, "not a url")

    def test_rejects_url_without_server(self):
        with pytest.raises(TypeMismatchError):
            validate_value(DataType.DATALINK, "dlfs:///movies/clip.mpg")

    def test_rejects_non_string(self):
        with pytest.raises(TypeMismatchError):
            validate_value(DataType.DATALINK, 17)


class TestNullHandling:
    @pytest.mark.parametrize("dtype", list(DataType))
    def test_none_passes_through_for_every_type(self, dtype):
        assert validate_value(dtype, None) is None
