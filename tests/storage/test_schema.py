"""Unit tests for table schemas and row validation."""

import pytest

from repro.errors import (
    NoSuchColumnError,
    NullViolationError,
    SchemaError,
    TypeMismatchError,
)
from repro.storage.schema import Column, TableSchema
from repro.storage.values import DataType


def people_schema() -> TableSchema:
    return TableSchema("people", [
        Column("person_id", DataType.INTEGER, nullable=False),
        Column("name", DataType.TEXT, nullable=False),
        Column("age", DataType.INTEGER),
        Column("active", DataType.BOOLEAN, default=True),
    ], primary_key=("person_id",))


class TestSchemaConstruction:
    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", DataType.INTEGER),
                              Column("a", DataType.TEXT)])

    def test_empty_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("", [Column("a", DataType.INTEGER)])

    def test_primary_key_must_reference_existing_column(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", DataType.INTEGER)], primary_key=("b",))

    def test_column_lookup(self):
        schema = people_schema()
        assert schema.column("age").dtype is DataType.INTEGER
        assert schema.has_column("name")
        assert not schema.has_column("salary")
        with pytest.raises(NoSuchColumnError):
            schema.column("salary")

    def test_column_names_preserve_order(self):
        assert people_schema().column_names == ["person_id", "name", "age", "active"]

    def test_datalink_columns_listed(self):
        schema = TableSchema("t", [
            Column("a", DataType.INTEGER),
            Column("doc", DataType.DATALINK),
            Column("img", DataType.DATALINK),
        ])
        assert [c.name for c in schema.datalink_columns()] == ["doc", "img"]


class TestRowValidation:
    def test_defaults_are_applied(self):
        row = people_schema().validate_row({"person_id": 1, "name": "ada"})
        assert row["active"] is True
        assert row["age"] is None

    def test_unknown_column_rejected(self):
        with pytest.raises(NoSuchColumnError):
            people_schema().validate_row({"person_id": 1, "name": "x", "salary": 10})

    def test_not_null_enforced(self):
        with pytest.raises(NullViolationError):
            people_schema().validate_row({"person_id": 1})

    def test_type_mismatch_reported_with_column(self):
        with pytest.raises(TypeMismatchError):
            people_schema().validate_row({"person_id": 1, "name": "ada", "age": "old"})

    def test_primary_key_extraction(self):
        schema = people_schema()
        row = schema.validate_row({"person_id": 7, "name": "alan"})
        assert schema.primary_key_of(row) == (7,)

    def test_validation_returns_new_dict_in_column_order(self):
        original = {"name": "ada", "person_id": 1}
        row = people_schema().validate_row(original)
        assert list(row) == ["person_id", "name", "age", "active"]
        assert original == {"name": "ada", "person_id": 1}

    def test_copy_is_independent(self):
        schema = people_schema()
        copy = schema.copy()
        assert copy is not schema
        assert copy.column_names == schema.column_names
        assert copy.primary_key == schema.primary_key
