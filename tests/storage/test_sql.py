"""The SQL text front-end: parsing, execution, and DataLinks routing."""

import pytest

from repro.storage.sql import SQLExecutor, SQLSyntaxError
from repro.storage.values import DataType
from tests.conftest import build_system
from repro.datalinks.control_modes import ControlMode


@pytest.fixture
def sql_db(db):
    db.execute("CREATE TABLE people (person_id INTEGER NOT NULL PRIMARY KEY, "
               "name TEXT NOT NULL, age INTEGER, active BOOLEAN)")
    db.execute("INSERT INTO people (person_id, name, age, active) VALUES "
               "(1, 'ada', 36, TRUE), (2, 'grace', 45, TRUE), (3, 'edsger', 72, FALSE)")
    return db


class TestDDL:
    def test_create_table_with_types_and_pk(self, db):
        db.execute("CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY, "
                   "score REAL, label VARCHAR(20), payload BLOB, seen TIMESTAMP)")
        schema = db.catalog.schema("t")
        assert schema.primary_key == ("id",)
        assert schema.column("score").dtype is DataType.REAL
        assert schema.column("label").dtype is DataType.TEXT
        assert not schema.column("id").nullable

    def test_create_table_with_datalink_mode(self, db):
        from repro.datalinks.datalink_type import options_of_column

        db.execute("CREATE TABLE docs (doc_id INTEGER NOT NULL PRIMARY KEY, "
                   "body DATALINK MODE RFD)")
        column = db.catalog.schema("docs").column("body")
        assert column.dtype is DataType.DATALINK
        assert options_of_column(column).control_mode is ControlMode.RFD

    def test_drop_table(self, sql_db):
        sql_db.execute("DROP TABLE people")
        assert not sql_db.catalog.has_table("people")

    def test_unknown_type_rejected(self, db):
        with pytest.raises(SQLSyntaxError):
            db.execute("CREATE TABLE t (id UUID)")


class TestDML:
    def test_select_star_and_projection(self, sql_db):
        rows = sql_db.execute("SELECT * FROM people WHERE person_id = 2")
        assert rows == [{"person_id": 2, "name": "grace", "age": 45, "active": True}]
        names = sql_db.execute("SELECT name FROM people WHERE age >= 45")
        assert sorted(row["name"] for row in names) == ["edsger", "grace"]

    def test_where_combinators_and_like(self, sql_db):
        rows = sql_db.execute(
            "SELECT name FROM people WHERE (age < 40 OR age > 70) AND active = TRUE")
        assert [row["name"] for row in rows] == ["ada"]
        rows = sql_db.execute("SELECT name FROM people WHERE name LIKE 'ds'")
        assert [row["name"] for row in rows] == ["edsger"]

    def test_string_escaping(self, sql_db):
        sql_db.execute("INSERT INTO people (person_id, name) VALUES (9, 'o''brien')")
        rows = sql_db.execute("SELECT name FROM people WHERE person_id = 9")
        assert rows[0]["name"] == "o'brien"

    def test_update_and_delete_return_counts(self, sql_db):
        assert sql_db.execute("UPDATE people SET age = 37 WHERE name = 'ada'") == 1
        assert sql_db.execute("SELECT age FROM people WHERE name = 'ada'")[0]["age"] == 37
        assert sql_db.execute("DELETE FROM people WHERE age > 40") == 2
        assert len(sql_db.execute("SELECT * FROM people")) == 1

    def test_multi_row_insert_returns_count(self, sql_db):
        count = sql_db.execute("INSERT INTO people (person_id, name) VALUES "
                               "(10, 'a'), (11, 'b'), (12, 'c')")
        assert count == 3

    def test_multi_row_insert_is_one_batched_statement(self, sql_db):
        """The VALUES list routes through insert_many: one parse/plan charge
        for the whole statement, versus one per row-at-a-time statement."""

        clock = sql_db.clock
        before = clock.stats.count("sql_statement_base")
        sql_db.execute("INSERT INTO people (person_id, name) VALUES "
                       "(40, 'a'), (41, 'b'), (42, 'c'), (43, 'd')")
        batched = clock.stats.count("sql_statement_base") - before

        before = clock.stats.count("sql_statement_base")
        for person_id in (50, 51, 52, 53):
            sql_db.execute(f"INSERT INTO people (person_id, name) "
                           f"VALUES ({person_id}, 'x')")
        per_row = clock.stats.count("sql_statement_base") - before
        assert batched < per_row
        assert len(sql_db.execute("SELECT * FROM people WHERE person_id >= 40")) == 8

    def test_multi_row_insert_rolls_back_atomically(self, sql_db):
        """A duplicate key in the VALUES list aborts the whole statement."""

        import pytest as _pytest

        from repro.errors import DuplicateKeyError

        with _pytest.raises(DuplicateKeyError):
            sql_db.execute("INSERT INTO people (person_id, name) VALUES "
                           "(60, 'ok'), (60, 'dup')")
        assert sql_db.execute("SELECT * FROM people WHERE person_id = 60") == []

    def test_null_literal(self, sql_db):
        sql_db.execute("INSERT INTO people (person_id, name, age) VALUES (20, 'x', NULL)")
        assert sql_db.execute("SELECT age FROM people WHERE person_id = 20")[0]["age"] is None

    def test_inside_transaction(self, sql_db):
        txn = sql_db.begin()
        sql_db.execute("INSERT INTO people (person_id, name) VALUES (30, 'temp')", txn)
        sql_db.abort(txn)
        assert sql_db.execute("SELECT * FROM people WHERE person_id = 30") == []


class TestSyntaxErrors:
    @pytest.mark.parametrize("statement", [
        "SELECT FROM people",
        "INSERT INTO people (a, b) VALUES (1)",
        "UPDATE people age = 1",
        "DELETE people",
        "SELECT * FROM people WHERE age ~ 3",
        "SELECT * FROM people WHERE",
        "EXPLAIN SELECT * FROM people",
        "SELECT * FROM people trailing garbage",
    ])
    def test_malformed_statements_raise(self, sql_db, statement):
        with pytest.raises(SQLSyntaxError):
            sql_db.execute(statement)


class TestDataLinksRouting:
    def test_sql_insert_links_and_delete_unlinks(self):
        system, alice, paths, _ = build_system(ControlMode.RFD, link=False)
        url = system.engine.make_url("fs1", paths[0])
        alice.sql(f"INSERT INTO docs (doc_id, body) VALUES (0, '{url}')")
        dlfm = system.file_server("fs1").dlfm
        assert dlfm.repository.linked_file(paths[0]) is not None
        alice.sql("DELETE FROM docs WHERE doc_id = 0")
        assert dlfm.repository.linked_file(paths[0]) is None

    def test_sql_select_through_session(self):
        system, alice, _, urls = build_system(ControlMode.RFD, files=2)
        rows = alice.sql("SELECT doc_id, body FROM docs WHERE doc_id = 1")
        assert rows == [{"doc_id": 1, "body": urls[1]}]

    def test_executor_without_engine_skips_link_processing(self, sql_db):
        executor = SQLExecutor(sql_db)
        assert executor.engine is None

    def test_multi_row_sql_insert_ships_one_link_batch_per_server(self):
        """SQL multi-row INSERT pays one DBMS-to-DLFM message for its links,
        the same batched pipeline as the typed insert_many API."""

        system, alice, paths, _ = build_system(ControlMode.RFD, files=6,
                                               link=False)
        urls = [system.engine.make_url("fs1", path) for path in paths]
        # DBMS-to-DLFM wire latency accrues on the receiving file server's
        # clock domain; count it cluster-wide through the merged group stats.
        stats = system.clocks.stats

        values = ", ".join(f"({index}, '{url}')"
                           for index, url in enumerate(urls[:3]))
        before = stats.count("db_dlfm_message")
        alice.sql(f"INSERT INTO docs (doc_id, body) VALUES {values}")
        batched_messages = stats.count("db_dlfm_message") - before

        before = stats.count("db_dlfm_message")
        for index, url in enumerate(urls[3:], start=3):
            alice.sql(f"INSERT INTO docs (doc_id, body) VALUES ({index}, '{url}')")
        per_row_messages = stats.count("db_dlfm_message") - before

        assert batched_messages < per_row_messages
        dlfm = system.file_server("fs1").dlfm
        assert all(dlfm.repository.linked_file(path) is not None
                   for path in paths)
