"""Unit tests for the database DML layer (insert/select/update/delete)."""

import pytest

from repro.errors import (
    DuplicateKeyError,
    LockConflictError,
    NoSuchTableError,
    NullViolationError,
    TableExistsError,
)
from repro.storage.lock_manager import LockMode
from repro.storage.query import And, Eq, Ge, Gt, Le, Like, Lt, Ne, Not, Or
from repro.storage.schema import Column, TableSchema
from repro.storage.values import DataType


class TestDDL:
    def test_create_and_drop_table(self, db):
        db.create_table(TableSchema("t", [Column("a", DataType.INTEGER)]))
        assert db.catalog.has_table("t")
        db.drop_table("t")
        assert not db.catalog.has_table("t")

    def test_duplicate_table_rejected(self, db):
        db.create_table(TableSchema("t", [Column("a", DataType.INTEGER)]))
        with pytest.raises(TableExistsError):
            db.create_table(TableSchema("t", [Column("a", DataType.INTEGER)]))

    def test_unknown_table_rejected(self, db):
        with pytest.raises(NoSuchTableError):
            db.select("missing")

    def test_primary_key_creates_unique_index(self, people_db):
        index = people_db.catalog.index_by_name("people", "people_pk")
        assert index is not None and index.unique


class TestInsertSelect:
    def test_insert_returns_rid_and_select_finds_row(self, people_db):
        rid = people_db.insert("people", {"person_id": 4, "name": "barbara"})
        rows = people_db.select("people", {"person_id": 4})
        assert rows[0]["_rid"] == rid
        assert rows[0]["name"] == "barbara"

    def test_duplicate_primary_key_rejected(self, people_db):
        with pytest.raises(DuplicateKeyError):
            people_db.insert("people", {"person_id": 1, "name": "dup"})

    def test_not_null_enforced_on_insert(self, people_db):
        with pytest.raises(NullViolationError):
            people_db.insert("people", {"person_id": 9})

    def test_select_all(self, people_db):
        assert len(people_db.select("people")) == 3

    def test_select_with_dict_where(self, people_db):
        rows = people_db.select("people", {"name": "grace"})
        assert [r["person_id"] for r in rows] == [2]

    def test_select_with_callable_where(self, people_db):
        rows = people_db.select("people", lambda r: r["age"] > 40)
        assert sorted(r["name"] for r in rows) == ["edsger", "grace"]

    def test_select_one_returns_none_when_missing(self, people_db):
        assert people_db.select_one("people", {"person_id": 99}) is None

    def test_count(self, people_db):
        assert people_db.count("people", lambda r: r["age"] < 50) == 2

    def test_internal_rid_key_stripped_on_insert(self, people_db):
        row = people_db.select_one("people", {"person_id": 1})
        row["person_id"] = 10
        people_db.insert("people", row)   # "_rid" key must be ignored
        assert people_db.select_one("people", {"person_id": 10})["name"] == "ada"


class TestConditionWhere:
    def test_eq_and_ne(self, people_db):
        assert len(people_db.select("people", Eq("name", "ada"))) == 1
        assert len(people_db.select("people", Ne("name", "ada"))) == 2

    def test_comparisons(self, people_db):
        assert len(people_db.select("people", Gt("age", 45))) == 1
        assert len(people_db.select("people", Ge("age", 45))) == 2
        assert len(people_db.select("people", Lt("age", 45))) == 1
        assert len(people_db.select("people", Le("age", 45))) == 2

    def test_boolean_combinators(self, people_db):
        condition = And(Ge("age", 36), Not(Eq("name", "edsger")))
        assert sorted(r["name"] for r in people_db.select("people", condition)) == \
            ["ada", "grace"]
        either = Or(Eq("name", "ada"), Eq("name", "edsger"))
        assert len(people_db.select("people", either)) == 2

    def test_operator_overloads(self, people_db):
        condition = Eq("active", True) & ~Eq("name", "grace")
        assert len(people_db.select("people", condition)) == 2

    def test_like(self, people_db):
        assert [r["name"] for r in people_db.select("people", Like("name", "ds"))] == \
            ["edsger"]

    def test_equality_bindings_use_pk_index(self, people_db):
        before = people_db.clock.stats.count("index_probe")
        people_db.select("people", Eq("person_id", 2))
        assert people_db.clock.stats.count("index_probe") == before + 1


class TestUpdateDelete:
    def test_update_changes_matching_rows(self, people_db):
        touched = people_db.update("people", {"name": "ada"}, {"age": 37})
        assert touched == 1
        assert people_db.select_one("people", {"name": "ada"})["age"] == 37

    def test_update_rejects_pk_duplicate(self, people_db):
        with pytest.raises(DuplicateKeyError):
            people_db.update("people", {"person_id": 1}, {"person_id": 2})

    def test_delete_removes_rows(self, people_db):
        removed = people_db.delete("people", lambda r: r["age"] > 40)
        assert removed == 2
        assert people_db.count("people") == 1

    def test_update_maintains_pk_index(self, people_db):
        people_db.update("people", {"person_id": 3}, {"person_id": 30})
        assert people_db.select_one("people", {"person_id": 30}) is not None
        assert people_db.select_one("people", {"person_id": 3}) is None


class TestRowLocking:
    def test_writers_block_writers(self, people_db):
        txn1 = people_db.begin()
        people_db.update("people", {"person_id": 1}, {"age": 40}, txn1)
        txn2 = people_db.begin()
        with pytest.raises(LockConflictError):
            people_db.update("people", {"person_id": 1}, {"age": 50}, txn2)
        people_db.commit(txn1)
        # after commit the lock is released and txn2 can retry
        assert people_db.update("people", {"person_id": 1}, {"age": 50}, txn2) == 1
        people_db.commit(txn2)

    def test_readers_share_and_block_writers(self, people_db):
        txn1 = people_db.begin()
        txn2 = people_db.begin()
        people_db.select("people", {"person_id": 1}, txn1)
        people_db.select("people", {"person_id": 1}, txn2)   # shared is fine
        txn3 = people_db.begin()
        with pytest.raises(LockConflictError):
            people_db.update("people", {"person_id": 1}, {"age": 1}, txn3)
        for txn in (txn1, txn2, txn3):
            people_db.abort(txn)

    def test_select_for_update_takes_exclusive_lock(self, people_db):
        txn1 = people_db.begin()
        people_db.select("people", {"person_id": 2}, txn1, for_update=True)
        rid = people_db.select_one("people", {"person_id": 2}, lock=False)["_rid"]
        assert people_db.locks.holds(txn1.txn_id, ("row", "people", rid),
                                     LockMode.EXCLUSIVE)
        people_db.commit(txn1)

    def test_unlocked_select_takes_no_locks(self, people_db):
        txn = people_db.begin()
        people_db.select("people", {"person_id": 1}, txn, lock=False)
        assert people_db.locks.locks_of(txn.txn_id) == set()
        people_db.commit(txn)

    def test_failed_autocommit_statement_rolls_back(self, people_db):
        # blocking lock held by txn1 makes the autocommit update fail...
        txn1 = people_db.begin()
        people_db.update("people", {"person_id": 1}, {"age": 99}, txn1)
        with pytest.raises(LockConflictError):
            people_db.update("people", {"person_id": 1}, {"age": 100})
        people_db.abort(txn1)
        # ...and leaves no partial change behind
        assert people_db.select_one("people", {"person_id": 1})["age"] == 36
