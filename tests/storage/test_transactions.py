"""Unit tests for transactions: commit, abort, savepoints, two-phase commit."""

import pytest

from repro.errors import PreparedStateError, TransactionNotActive
from repro.storage.transaction import TxnState


class TestCommitAbort:
    def test_committed_changes_are_visible(self, people_db):
        txn = people_db.begin()
        people_db.insert("people", {"person_id": 10, "name": "new"}, txn)
        people_db.commit(txn)
        assert people_db.select_one("people", {"person_id": 10}) is not None

    def test_aborted_insert_disappears(self, people_db):
        txn = people_db.begin()
        people_db.insert("people", {"person_id": 10, "name": "new"}, txn)
        people_db.abort(txn)
        assert people_db.select_one("people", {"person_id": 10}) is None

    def test_aborted_update_restores_before_image(self, people_db):
        txn = people_db.begin()
        people_db.update("people", {"person_id": 1}, {"name": "changed"}, txn)
        people_db.abort(txn)
        assert people_db.select_one("people", {"person_id": 1})["name"] == "ada"

    def test_aborted_delete_restores_row_with_same_rid(self, people_db):
        original = people_db.select_one("people", {"person_id": 2})
        txn = people_db.begin()
        people_db.delete("people", {"person_id": 2}, txn)
        people_db.abort(txn)
        restored = people_db.select_one("people", {"person_id": 2})
        assert restored["_rid"] == original["_rid"]
        assert restored["name"] == "grace"

    def test_abort_restores_index_entries(self, people_db):
        txn = people_db.begin()
        people_db.delete("people", {"person_id": 2}, txn)
        people_db.abort(txn)
        # the pk index must see the restored row again
        assert people_db.select("people", {"person_id": 2}) != []

    def test_operations_on_finished_transaction_fail(self, people_db):
        txn = people_db.begin()
        people_db.commit(txn)
        with pytest.raises(TransactionNotActive):
            people_db.insert("people", {"person_id": 11, "name": "x"}, txn)
        with pytest.raises(TransactionNotActive):
            people_db.abort(txn)

    def test_commit_releases_locks(self, people_db):
        txn = people_db.begin()
        people_db.update("people", {"person_id": 1}, {"age": 1}, txn)
        people_db.commit(txn)
        assert people_db.locks.locks_of(txn.txn_id) == set()

    def test_on_commit_and_on_abort_callbacks(self, people_db):
        events = []
        txn = people_db.begin()
        txn.on_commit.append(lambda: events.append("commit"))
        txn.on_abort.append(lambda: events.append("abort"))
        people_db.commit(txn)
        assert events == ["commit"]

        txn2 = people_db.begin()
        txn2.on_commit.append(lambda: events.append("commit2"))
        txn2.on_abort.append(lambda: events.append("abort2"))
        people_db.abort(txn2)
        assert events == ["commit", "abort2"]


class TestSavepoints:
    def test_rollback_to_savepoint_undoes_later_changes_only(self, people_db):
        txn = people_db.begin()
        people_db.update("people", {"person_id": 1}, {"age": 40}, txn)
        people_db.savepoint(txn, "s1")
        people_db.insert("people", {"person_id": 50, "name": "temp"}, txn)
        people_db.rollback_to_savepoint(txn, "s1")
        people_db.commit(txn)
        assert people_db.select_one("people", {"person_id": 50}) is None
        assert people_db.select_one("people", {"person_id": 1})["age"] == 40

    def test_unknown_savepoint_raises(self, people_db):
        txn = people_db.begin()
        with pytest.raises(TransactionNotActive):
            people_db.rollback_to_savepoint(txn, "missing")
        people_db.abort(txn)

    def test_nested_savepoints(self, people_db):
        txn = people_db.begin()
        people_db.savepoint(txn, "a")
        people_db.insert("people", {"person_id": 60, "name": "one"}, txn)
        people_db.savepoint(txn, "b")
        people_db.insert("people", {"person_id": 61, "name": "two"}, txn)
        people_db.rollback_to_savepoint(txn, "b")
        people_db.commit(txn)
        assert people_db.select_one("people", {"person_id": 60}) is not None
        assert people_db.select_one("people", {"person_id": 61}) is None


class TestTwoPhaseCommit:
    def test_prepare_then_commit(self, people_db):
        txn = people_db.begin()
        people_db.insert("people", {"person_id": 70, "name": "prep"}, txn)
        people_db.prepare(txn)
        assert txn.state is TxnState.PREPARED
        people_db.commit_prepared(txn)
        assert people_db.select_one("people", {"person_id": 70}) is not None

    def test_prepare_then_abort(self, people_db):
        txn = people_db.begin()
        people_db.insert("people", {"person_id": 71, "name": "prep"}, txn)
        people_db.prepare(txn)
        people_db.abort_prepared(txn)
        assert people_db.select_one("people", {"person_id": 71}) is None

    def test_prepared_transaction_keeps_its_locks(self, people_db):
        from repro.errors import LockConflictError

        txn = people_db.begin()
        people_db.update("people", {"person_id": 1}, {"age": 41}, txn)
        people_db.prepare(txn)
        with pytest.raises(LockConflictError):
            people_db.update("people", {"person_id": 1}, {"age": 42})
        people_db.commit_prepared(txn)

    def test_commit_prepared_requires_prepared_state(self, people_db):
        txn = people_db.begin()
        with pytest.raises(PreparedStateError):
            people_db.commit_prepared(txn)
        people_db.abort(txn)

    def test_dml_rejected_after_prepare(self, people_db):
        txn = people_db.begin()
        people_db.prepare(txn)
        with pytest.raises(TransactionNotActive):
            people_db.insert("people", {"person_id": 72, "name": "late"}, txn)
        people_db.abort_prepared(txn)
