"""Unit tests for the write-ahead log and the lock manager."""

import pytest

from repro.errors import DeadlockError, LockConflictError
from repro.storage.lock_manager import LockManager, LockMode
from repro.storage.wal import LogRecordType, WriteAheadLog


class TestWriteAheadLog:
    def test_lsns_are_monotonic(self):
        wal = WriteAheadLog()
        first = wal.append(1, LogRecordType.BEGIN)
        second = wal.append(1, LogRecordType.COMMIT)
        assert second.lsn > first.lsn

    def test_flush_marks_durable_prefix(self):
        wal = WriteAheadLog()
        wal.append(1, LogRecordType.BEGIN)
        wal.flush()
        wal.append(1, LogRecordType.COMMIT)
        durable = wal.records(durable_only=True)
        assert [r.type for r in durable] == [LogRecordType.BEGIN]
        assert len(wal.records()) == 2

    def test_lose_unflushed_discards_tail(self):
        wal = WriteAheadLog()
        wal.append(1, LogRecordType.BEGIN)
        wal.flush()
        wal.append(1, LogRecordType.INSERT, table="t", rid=1, after={"a": 1})
        lost = wal.lose_unflushed()
        assert lost == 1
        assert len(wal) == 1
        # LSN sequence resumes after the surviving records
        record = wal.append(2, LogRecordType.BEGIN)
        assert record.lsn.value == 2

    def test_records_from_filters_by_lsn(self):
        wal = WriteAheadLog()
        first = wal.append(1, LogRecordType.BEGIN)
        wal.append(1, LogRecordType.COMMIT)
        wal.flush()
        later = wal.records_from(first.lsn)
        assert [r.type for r in later] == [LogRecordType.COMMIT]

    def test_records_of_transaction(self):
        wal = WriteAheadLog()
        wal.append(1, LogRecordType.BEGIN)
        wal.append(2, LogRecordType.BEGIN)
        wal.append(1, LogRecordType.COMMIT)
        assert len(wal.records_of(1)) == 2
        assert len(wal.records_of(2)) == 1

    def test_tail_and_flushed_lsn_defaults(self):
        wal = WriteAheadLog()
        assert int(wal.tail_lsn()) == 0
        assert int(wal.flushed_lsn) == 0


class TestLockManager:
    def test_shared_locks_are_compatible(self):
        locks = LockManager()
        assert locks.acquire(1, "r", LockMode.SHARED)
        assert locks.acquire(2, "r", LockMode.SHARED)

    def test_exclusive_conflicts_with_shared(self):
        locks = LockManager()
        locks.acquire(1, "r", LockMode.SHARED)
        with pytest.raises(LockConflictError) as info:
            locks.acquire(2, "r", LockMode.EXCLUSIVE)
        assert 1 in info.value.holders

    def test_reacquire_same_mode_is_idempotent(self):
        locks = LockManager()
        locks.acquire(1, "r", LockMode.EXCLUSIVE)
        assert locks.acquire(1, "r", LockMode.EXCLUSIVE)
        assert locks.acquire(1, "r", LockMode.SHARED)  # X covers S

    def test_upgrade_when_sole_holder(self):
        locks = LockManager()
        locks.acquire(1, "r", LockMode.SHARED)
        assert locks.acquire(1, "r", LockMode.EXCLUSIVE)
        assert locks.holds(1, "r", LockMode.EXCLUSIVE)

    def test_upgrade_blocked_by_other_sharer(self):
        locks = LockManager()
        locks.acquire(1, "r", LockMode.SHARED)
        locks.acquire(2, "r", LockMode.SHARED)
        with pytest.raises(LockConflictError):
            locks.acquire(1, "r", LockMode.EXCLUSIVE)

    def test_release_all_frees_resources(self):
        locks = LockManager()
        locks.acquire(1, "a", LockMode.EXCLUSIVE)
        locks.acquire(1, "b", LockMode.SHARED)
        locks.release_all(1)
        assert locks.acquire(2, "a", LockMode.EXCLUSIVE)
        assert locks.acquire(2, "b", LockMode.EXCLUSIVE)

    def test_deadlock_detected_on_cycle(self):
        locks = LockManager()
        locks.acquire(1, "a", LockMode.EXCLUSIVE)
        locks.acquire(2, "b", LockMode.EXCLUSIVE)
        # txn 1 waits for b (held by 2)
        with pytest.raises(LockConflictError):
            locks.acquire(1, "b", LockMode.EXCLUSIVE)
        # txn 2 waiting for a (held by 1) would close the cycle
        with pytest.raises(DeadlockError):
            locks.acquire(2, "a", LockMode.EXCLUSIVE)

    def test_try_acquire_returns_false_on_conflict(self):
        locks = LockManager()
        locks.acquire(1, "r", LockMode.EXCLUSIVE)
        assert locks.try_acquire(2, "r", LockMode.SHARED) is False
        assert locks.try_acquire(1, "r", LockMode.EXCLUSIVE) is True

    def test_holders_of_reports_modes(self):
        locks = LockManager()
        locks.acquire(1, "r", LockMode.SHARED)
        locks.acquire(2, "r", LockMode.SHARED)
        holders = locks.holders_of("r")
        assert holders == {1: LockMode.SHARED, 2: LockMode.SHARED}

    def test_wait_edges_cleared_after_release(self):
        locks = LockManager()
        locks.acquire(1, "a", LockMode.EXCLUSIVE)
        with pytest.raises(LockConflictError):
            locks.acquire(2, "a", LockMode.EXCLUSIVE)
        locks.release_all(1)
        # no stale wait-for edge: acquiring in the other direction is fine
        assert locks.acquire(2, "a", LockMode.EXCLUSIVE)
        with pytest.raises(LockConflictError):
            locks.acquire(1, "a", LockMode.EXCLUSIVE)
