"""Unit tests for heap tables and secondary indexes."""

import pytest

from repro.errors import DuplicateKeyError, NoSuchRowError
from repro.storage.heap import HeapTable
from repro.storage.index import HashIndex, OrderedIndex
from repro.storage.schema import Column, TableSchema
from repro.storage.values import DataType


def simple_schema() -> TableSchema:
    return TableSchema("t", [Column("k", DataType.INTEGER), Column("v", DataType.TEXT)])


class TestHeapTable:
    def test_insert_assigns_increasing_rids(self):
        heap = HeapTable(simple_schema())
        rids = [heap.insert({"k": i, "v": "x"}) for i in range(5)]
        assert rids == [1, 2, 3, 4, 5]

    def test_get_returns_copy(self):
        heap = HeapTable(simple_schema())
        rid = heap.insert({"k": 1, "v": "a"})
        row = heap.get(rid)
        row["v"] = "mutated"
        assert heap.get(rid)["v"] == "a"

    def test_update_and_delete(self):
        heap = HeapTable(simple_schema())
        rid = heap.insert({"k": 1, "v": "a"})
        heap.update(rid, {"k": 1, "v": "b"})
        assert heap.get(rid)["v"] == "b"
        removed = heap.delete(rid)
        assert removed["v"] == "b"
        assert not heap.exists(rid)

    def test_missing_row_errors(self):
        heap = HeapTable(simple_schema())
        with pytest.raises(NoSuchRowError):
            heap.get(99)
        with pytest.raises(NoSuchRowError):
            heap.update(99, {"k": 1, "v": "a"})
        with pytest.raises(NoSuchRowError):
            heap.delete(99)

    def test_forced_rid_used_by_recovery(self):
        heap = HeapTable(simple_schema())
        heap.insert({"k": 1, "v": "a"}, rid=10)
        assert heap.get(10)["k"] == 1
        # subsequent inserts continue past the forced rid
        assert heap.insert({"k": 2, "v": "b"}) == 11

    def test_scan_is_sorted_by_rid(self):
        heap = HeapTable(simple_schema())
        heap.insert({"k": 2, "v": "b"}, rid=7)
        heap.insert({"k": 1, "v": "a"}, rid=3)
        assert [rid for rid, _ in heap.scan()] == [3, 7]

    def test_snapshot_roundtrip(self):
        heap = HeapTable(simple_schema())
        heap.insert({"k": 1, "v": "a"})
        snapshot = heap.snapshot()
        heap.insert({"k": 2, "v": "b"})
        heap.load_snapshot(snapshot)
        assert len(heap) == 1
        # the snapshot is deep: mutating it later does not affect the heap
        snapshot["rows"][1]["v"] = "hacked"
        assert heap.get(1)["v"] == "a"


class TestHashIndex:
    def test_lookup_after_insert_and_remove(self):
        index = HashIndex("idx", "t", ("k",))
        index.insert({"k": 5, "v": "a"}, 1)
        index.insert({"k": 5, "v": "b"}, 2)
        assert index.lookup((5,)) == {1, 2}
        index.remove({"k": 5, "v": "a"}, 1)
        assert index.lookup((5,)) == {2}

    def test_unique_violation(self):
        index = HashIndex("idx", "t", ("k",), unique=True)
        index.insert({"k": 5}, 1)
        with pytest.raises(DuplicateKeyError):
            index.insert({"k": 5}, 2)

    def test_unique_reinsert_same_rid_is_idempotent(self):
        index = HashIndex("idx", "t", ("k",), unique=True)
        index.insert({"k": 5}, 1)
        index.insert({"k": 5}, 1)
        assert index.lookup((5,)) == {1}

    def test_remove_unknown_key_is_noop(self):
        index = HashIndex("idx", "t", ("k",))
        index.remove({"k": 1}, 1)
        assert len(index) == 0


class TestOrderedIndex:
    def test_range_scan_inclusive(self):
        index = OrderedIndex("idx", "t", ("k",))
        for value, rid in ((10, 1), (20, 2), (30, 3), (20, 4)):
            index.insert({"k": value}, rid)
        hits = list(index.range_scan(low=(20,), high=(30,)))
        assert sorted(rid for key, rid in hits if key == (20,)) == [2, 4]
        assert [rid for key, rid in hits if key == (30,)] == [3]
        assert [key for key, _ in hits] == sorted(key for key, _ in hits)

    def test_range_scan_exclusive_bounds(self):
        index = OrderedIndex("idx", "t", ("k",))
        for value, rid in ((10, 1), (20, 2), (30, 3)):
            index.insert({"k": value}, rid)
        hits = list(index.range_scan(low=(10,), high=(30,),
                                     include_low=False, include_high=False))
        assert [rid for _, rid in hits] == [2]

    def test_unique_violation(self):
        index = OrderedIndex("idx", "t", ("k",), unique=True)
        index.insert({"k": 1}, 1)
        with pytest.raises(DuplicateKeyError):
            index.insert({"k": 1}, 2)

    def test_remove_specific_rid_among_duplicates(self):
        index = OrderedIndex("idx", "t", ("k",))
        index.insert({"k": 1}, 1)
        index.insert({"k": 1}, 2)
        index.remove({"k": 1}, 1)
        assert index.lookup((1,)) == {2}
