"""Public API surface, simulated clock, and small utility modules."""

import pytest

from repro.datalinks.control_modes import ControlMode
from repro.errors import DataLinksError
from repro.fs.vfs import OpenFlags
from repro.simclock import CostModel, SimClock
from repro.util.ids import IdGenerator
from repro.util.lsn import LSN, NULL_LSN
from tests.conftest import FILES_TABLE, build_system


class TestSimClock:
    def test_charge_advances_time_and_records_stats(self):
        clock = SimClock()
        spent = clock.charge("sql_statement_base", times=2)
        assert clock.now() == pytest.approx(spent)
        assert clock.stats.count("sql_statement_base") == 1
        assert clock.stats.total("sql_statement_base") == pytest.approx(spent)

    def test_per_byte_charges(self):
        clock = SimClock()
        one_mb = clock.charge("disk_transfer_per_byte", nbytes=1024 * 1024)
        assert one_mb == pytest.approx(clock.costs.disk_transfer_per_byte * 1024 * 1024)

    def test_scale_parameter(self):
        clock = SimClock()
        full = clock.costs.sql_statement_base
        charged = clock.charge("sql_statement_base", scale=0.1)
        assert charged == pytest.approx(full * 0.1)

    def test_advance_rejects_negative(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-1)

    def test_stopwatch_measures_interval(self):
        clock = SimClock()
        with clock.measure() as timer:
            clock.advance(0.25)
        assert timer.elapsed == pytest.approx(0.25)
        assert timer.elapsed_ms == pytest.approx(250.0)

    def test_cost_model_scaled_copy(self):
        model = CostModel()
        doubled = model.scaled(2.0)
        assert doubled.disk_seek == pytest.approx(model.disk_seek * 2)
        assert model.disk_seek == CostModel().disk_seek   # original untouched


class TestUtilities:
    def test_id_generator_sequences(self):
        gen = IdGenerator(start=5, prefix="txn-")
        assert gen.next_int() == 5
        assert gen.next_str() == "txn-6"

    def test_lsn_ordering_and_hash(self):
        assert LSN(2) > LSN(1)
        assert LSN(3) == 3
        assert LSN(0) == NULL_LSN
        assert hash(LSN(7)) == hash(LSN(7))
        assert LSN(4).next() == LSN(5)
        assert int(LSN(9)) == 9


class TestSessionAPI:
    def test_put_file_creates_directories_and_returns_url(self, rfd_system):
        system, alice, _, _ = rfd_system
        url = alice.put_file("fs1", "/deep/nested/dir/file.txt", b"payload")
        assert url == "dlfs://fs1/deep/nested/dir/file.txt"
        assert alice.fs("fs1").read_file("/deep/nested/dir/file.txt") == b"payload"

    def test_open_url_respects_flags(self, rdd_system):
        system, alice, _, _ = rdd_system
        url = alice.get_datalink(FILES_TABLE, {"doc_id": 0}, "body", access="read")
        fd = alice.open_url(url, OpenFlags.READ)
        assert len(system.file_server("fs1").lfs.read(fd, 10)) == 10
        system.file_server("fs1").lfs.close(fd)

    def test_bound_fs_operations(self, rfd_system):
        system, alice, _, _ = rfd_system
        fs = alice.fs("fs1")
        fs.makedirs("/library/scratch/a")
        fs.write_file("/library/scratch/a/x.txt", b"abc")
        assert fs.listdir("/library/scratch/a") == ["x.txt"]
        assert fs.stat("/library/scratch/a/x.txt").size == 3
        fs.rename("/library/scratch/a/x.txt", "/library/scratch/a/y.txt")
        fd = fs.open("/library/scratch/a/y.txt", OpenFlags.READ)
        assert fs.read(fd) == b"abc"
        fs.lseek(fd, 1)
        assert fs.read(fd) == b"bc"
        fs.close(fd)
        fs.chmod("/library/scratch/a/y.txt", 0o600)
        fs.unlink("/library/scratch/a/y.txt")
        assert not fs.exists("/library/scratch/a/y.txt")

    def test_duplicate_file_server_name_rejected(self, rfd_system):
        system, _, _, _ = rfd_system
        with pytest.raises(DataLinksError):
            system.add_file_server("fs1")

    def test_unknown_file_server_lookup_rejected(self, rfd_system):
        system, _, _, _ = rfd_system
        with pytest.raises(DataLinksError):
            system.file_server("does-not-exist")

    def test_top_level_package_exports(self):
        import repro

        assert repro.__version__
        system = repro.DataLinksSystem()
        assert isinstance(system.clock, repro.SimClock)
        assert repro.ControlMode.RFD.supports_update

    def test_sessions_are_isolated_by_credentials(self):
        system, alice, paths, _ = build_system(ControlMode.RFD)
        mallory = system.session("mallory", uid=6666)
        with pytest.raises(Exception):
            mallory.fs("fs1").write_file(paths[0], b"defaced", create=False)
        # mallory can still read (rfd leaves read access with the file system)
        assert len(mallory.fs("fs1").read_file(paths[0])) == 4096
