"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.api.system import DataLinksSystem
from repro.datalinks.control_modes import ControlMode
from repro.datalinks.datalink_type import DatalinkOptions, datalink_column
from repro.fs.logical import LogicalFileSystem
from repro.fs.physical import PhysicalFileSystem
from repro.fs.vfs import Credentials
from repro.simclock import SimClock
from repro.storage.database import Database
from repro.storage.schema import Column, TableSchema
from repro.storage.values import DataType
from repro.workloads.generator import make_content

FILES_TABLE = "docs"
ALICE_UID = 1001
BOB_UID = 1002


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def db(clock):
    """An empty database with a simulated clock."""

    return Database("testdb", clock)


@pytest.fixture
def people_db(db):
    """A database with a small ``people`` table and three rows."""

    db.create_table(TableSchema("people", [
        Column("person_id", DataType.INTEGER, nullable=False),
        Column("name", DataType.TEXT, nullable=False),
        Column("age", DataType.INTEGER),
        Column("active", DataType.BOOLEAN, default=True),
    ], primary_key=("person_id",)))
    for person_id, name, age in ((1, "ada", 36), (2, "grace", 45), (3, "edsger", 72)):
        db.insert("people", {"person_id": person_id, "name": name, "age": age})
    return db


@pytest.fixture
def fs_stack(clock):
    """A plain file-system stack: physical FS mounted at / under an LFS."""

    physical = PhysicalFileSystem("pfs-test", clock=clock)
    lfs = LogicalFileSystem(clock=clock)
    lfs.mount("/", physical)
    return physical, lfs


@pytest.fixture
def root_cred():
    return Credentials(uid=0, gid=0, username="root")


@pytest.fixture
def alice_cred():
    return Credentials(uid=ALICE_UID, gid=100, username="alice")


@pytest.fixture
def bob_cred():
    return Credentials(uid=BOB_UID, gid=100, username="bob")


def build_system(mode: ControlMode | None, *, size: int = 4096, files: int = 1,
                 server: str = "fs1", recovery: bool = True,
                 on_unlink=None, link: bool = True) -> tuple:
    """Build a DataLinksSystem with *files* files, linked when *mode* is given.

    ``mode=None`` declares the DATALINK column with default (rff) options and
    creates the files without linking them; ``link=False`` keeps the files
    unlinked while still declaring the column with *mode*.
    Returns ``(system, alice_session, [paths], [urls])``.
    """

    from repro.datalinks.datalink_type import OnUnlink

    system = DataLinksSystem()
    system.add_file_server(server)
    options = DatalinkOptions(control_mode=mode if mode is not None else ControlMode.RFF,
                              recovery=recovery,
                              on_unlink=on_unlink if on_unlink is not None else OnUnlink.RESTORE)
    system.create_table(TableSchema(FILES_TABLE, [
        Column("doc_id", DataType.INTEGER, nullable=False),
        Column("title", DataType.TEXT),
        datalink_column("body", options),
        Column("body_size", DataType.INTEGER),
        Column("body_mtime", DataType.TIMESTAMP),
    ], primary_key=("doc_id",)))
    system.register_metadata_columns(FILES_TABLE, "body", "body_size", "body_mtime")
    alice = system.session("alice", uid=ALICE_UID)
    paths, urls = [], []
    for index in range(files):
        path = f"/library/doc{index:03d}.dat"
        content = make_content(size, tag=f"doc{index}", version=0)
        url = alice.put_file(server, path, content)
        if mode is not None and link:
            alice.insert(FILES_TABLE, {"doc_id": index, "title": f"Doc {index}",
                                       "body": url, "body_size": len(content),
                                       "body_mtime": 0.0})
        paths.append(path)
        urls.append(url)
    if mode is not None and link:
        system.run_archiver()
    return system, alice, paths, urls


@pytest.fixture
def rfd_system():
    return build_system(ControlMode.RFD)


@pytest.fixture
def rdd_system():
    return build_system(ControlMode.RDD)


@pytest.fixture
def rdb_system():
    return build_system(ControlMode.RDB)
