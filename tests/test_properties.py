"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import string

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datalinks.tokens import TokenManager, TokenType
from repro.errors import (
    DuplicateKeyError,
    FileSystemError,
    InvalidTokenError,
    LockConflictError,
)
from repro.fs.physical import PhysicalFileSystem
from repro.fs.vfs import Credentials
from repro.simclock import SimClock
from repro.storage.database import Database
from repro.storage.lock_manager import LockManager, LockMode
from repro.storage.schema import Column, TableSchema
from repro.storage.values import DataType
from repro.util.urls import format_url, parse_url

SETTINGS = settings(max_examples=60, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

# ---------------------------------------------------------------------------
# URL round-trips
# ---------------------------------------------------------------------------

_name_alphabet = string.ascii_lowercase + string.digits + "_-."
_names = st.text(alphabet=_name_alphabet, min_size=1, max_size=12).filter(
    lambda s: s not in (".", "..") and not s.startswith("."))
_paths = st.lists(_names, min_size=1, max_size=4).map(lambda parts: "/" + "/".join(parts))
_servers = st.text(alphabet=string.ascii_lowercase + string.digits, min_size=1, max_size=10)


class TestURLProperties:
    @SETTINGS
    @given(server=_servers, path=_paths)
    def test_format_parse_roundtrip(self, server, path):
        url = format_url(server, path)
        parsed = parse_url(url)
        assert parsed.server == server
        assert parsed.path == path
        assert parsed.token is None

    @SETTINGS
    @given(server=_servers, path=_paths,
           token=st.text(alphabet=string.ascii_letters + string.digits + "-.",
                         min_size=1, max_size=30))
    def test_token_roundtrip(self, server, path, token):
        url = parse_url(format_url(server, path)).with_token(token)
        parsed = parse_url(url.render())
        assert parsed.token == token
        assert parsed.path == path


# ---------------------------------------------------------------------------
# Token manager
# ---------------------------------------------------------------------------

class TestTokenProperties:
    @SETTINGS
    @given(path=_paths, ttl=st.floats(min_value=0.1, max_value=1000.0),
           token_type=st.sampled_from(list(TokenType)))
    def test_generated_tokens_always_validate_for_their_path(self, path, ttl, token_type):
        manager = TokenManager("secret", SimClock())
        token = manager.generate(path, token_type, ttl)
        assert manager.validate(token, path).token_type is token_type

    @SETTINGS
    @given(path=_paths, other=_paths)
    def test_tokens_never_validate_for_a_different_path(self, path, other):
        if path == other:
            return
        manager = TokenManager("secret", SimClock())
        token = manager.generate(path, TokenType.READ)
        with pytest.raises(InvalidTokenError):
            manager.validate(token, other)


# ---------------------------------------------------------------------------
# Lock manager invariant: at most one exclusive holder, X excludes S
# ---------------------------------------------------------------------------

class TestLockManagerProperties:
    @SETTINGS
    @given(ops=st.lists(st.tuples(st.integers(1, 4),           # transaction
                                  st.integers(0, 2),           # resource
                                  st.sampled_from(list(LockMode)),
                                  st.booleans()),              # release_all after
                        min_size=1, max_size=40))
    def test_no_conflicting_holders_ever(self, ops):
        locks = LockManager()
        for txn, resource, mode, release in ops:
            try:
                locks.acquire(txn, resource, mode)
            except LockConflictError:
                pass
            except Exception:
                pass
            if release:
                locks.release_all(txn)
            holders = locks.holders_of(resource)
            exclusive = [t for t, m in holders.items() if m is LockMode.EXCLUSIVE]
            assert len(exclusive) <= 1
            if exclusive:
                assert len(holders) == 1


# ---------------------------------------------------------------------------
# Storage engine vs a model dict
# ---------------------------------------------------------------------------

_operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 20), st.integers(0, 100)),
        st.tuples(st.just("update"), st.integers(0, 20), st.integers(0, 100)),
        st.tuples(st.just("delete"), st.integers(0, 20), st.just(0)),
    ),
    min_size=1, max_size=40,
)


class TestDatabaseMatchesModel:
    def _new_db(self) -> Database:
        db = Database("prop")
        db.create_table(TableSchema("kv", [
            Column("key", DataType.INTEGER, nullable=False),
            Column("value", DataType.INTEGER),
        ], primary_key=("key",)))
        return db

    @SETTINGS
    @given(ops=_operations)
    def test_committed_operations_match_model(self, ops):
        db = self._new_db()
        model: dict[int, int] = {}
        for kind, key, value in ops:
            if kind == "insert":
                try:
                    db.insert("kv", {"key": key, "value": value})
                    model[key] = value
                except DuplicateKeyError:
                    assert key in model
            elif kind == "update":
                touched = db.update("kv", {"key": key}, {"value": value})
                assert touched == (1 if key in model else 0)
                if key in model:
                    model[key] = value
            else:
                removed = db.delete("kv", {"key": key})
                assert removed == (1 if key in model else 0)
                model.pop(key, None)
        stored = {row["key"]: row["value"] for row in db.select("kv", lock=False)}
        assert stored == model

    @SETTINGS
    @given(ops=_operations, crash_after=st.integers(0, 39))
    def test_recovery_preserves_exactly_the_committed_prefix(self, ops, crash_after):
        db = self._new_db()
        model: dict[int, int] = {}
        for index, (kind, key, value) in enumerate(ops):
            if index == crash_after:
                break
            if kind == "insert":
                try:
                    db.insert("kv", {"key": key, "value": value})
                    model[key] = value
                except DuplicateKeyError:
                    pass
            elif kind == "update":
                if db.update("kv", {"key": key}, {"value": value}) and key in model:
                    model[key] = value
            else:
                db.delete("kv", {"key": key})
                model.pop(key, None)
        # one uncommitted transaction in flight at the crash
        txn = db.begin()
        db.insert("kv", {"key": 999, "value": 1}, txn)
        db.wal.flush()
        db.crash()
        db.recover()
        stored = {row["key"]: row["value"] for row in db.select("kv", lock=False)}
        assert stored == model

    @SETTINGS
    @given(ops=_operations)
    def test_abort_leaves_no_trace(self, ops):
        db = self._new_db()
        db.insert("kv", {"key": 1, "value": 10})
        before = {row["key"]: row["value"] for row in db.select("kv", lock=False)}
        txn = db.begin()
        for kind, key, value in ops:
            try:
                if kind == "insert":
                    db.insert("kv", {"key": key, "value": value}, txn)
                elif kind == "update":
                    db.update("kv", {"key": key}, {"value": value}, txn)
                else:
                    db.delete("kv", {"key": key}, txn)
            except DuplicateKeyError:
                continue
        db.abort(txn)
        after = {row["key"]: row["value"] for row in db.select("kv", lock=False)}
        assert after == before


# ---------------------------------------------------------------------------
# File system: random writes behave like a bytearray
# ---------------------------------------------------------------------------

class TestFileSystemProperties:
    @SETTINGS
    @given(writes=st.lists(
        st.tuples(st.integers(0, 3000), st.binary(min_size=1, max_size=500)),
        min_size=1, max_size=12))
    def test_writes_match_bytearray_model(self, writes):
        pfs = PhysicalFileSystem("prop")
        root = Credentials(uid=0)
        vnode = pfs.fs_create(pfs.root_vnode(), "f.bin", 0o644, root)
        model = bytearray()
        for offset, data in writes:
            pfs.fs_readwrite(vnode, offset, data=data, write=True, cred=root)
            if len(model) < offset:
                model.extend(bytes(offset - len(model)))
            end = offset + len(data)
            if len(model) < end:
                model.extend(bytes(end - len(model)))
            model[offset:end] = data
        stored = pfs.fs_readwrite(vnode, 0, write=False, cred=root)
        assert stored == bytes(model)
        assert pfs.fs_getattr(vnode, root).size == len(model)

    @SETTINGS
    @given(names=st.lists(_names, min_size=1, max_size=8, unique=True))
    def test_created_names_are_exactly_what_readdir_lists(self, names):
        pfs = PhysicalFileSystem("prop")
        root = Credentials(uid=0)
        for name in names:
            pfs.fs_create(pfs.root_vnode(), name, 0o644, root)
        assert pfs.fs_readdir(pfs.root_vnode(), root) == sorted(names)
        with pytest.raises(FileSystemError):
            pfs.fs_create(pfs.root_vnode(), names[0], 0o644, root)


# ---------------------------------------------------------------------------
# Replication router: round-robin read fairness
# ---------------------------------------------------------------------------

class TestRoundRobinFairness:
    """The follower-read round-robin must stay fair and bounded.

    The position counter wraps at the candidate count and resets whenever
    the candidate set changes (e.g. a witness crash shrinking it), so no
    node is skipped or double-served because of a phase inherited from an
    older membership.
    """

    _pool = ["n0", "n1", "n2", "n3"]

    def _router(self):
        from repro.datalinks.routing import ReplicationRouter, ShardRouter

        return ReplicationRouter(ShardRouter(["shard0"]))

    @SETTINGS
    @given(phases=st.lists(
        st.tuples(
            st.lists(st.sampled_from(["n0", "n1", "n2", "n3"]),
                     min_size=1, max_size=4, unique=True),
            st.integers(min_value=1, max_value=12),
        ),
        min_size=1, max_size=6))
    def test_reads_within_a_stable_membership_are_fair(self, phases):
        from types import SimpleNamespace

        router = self._router()
        membership: list = []
        router.read_candidates = lambda shard, path=None: list(membership)
        router.serving_node = lambda shard: membership[0].name

        previous_names: tuple = ()
        for names, reads in phases:
            membership = [SimpleNamespace(name=name) for name in names]
            counts: dict[str, int] = {}
            first_pick = None
            for _ in range(reads):
                chosen = router.route_read("shard0")
                if first_pick is None:
                    first_pick = chosen.name
                counts[chosen.name] = counts.get(chosen.name, 0) + 1
                # The stored position always stays wrapped in range.
                assert 0 <= router._round_robin["shard0"] < len(names)
            # Fairness: under stable membership the spread between the
            # most- and least-served candidate is at most one read.
            served = [counts.get(name, 0) for name in names]
            assert max(served) - min(served) <= 1
            # A membership change restarts the rotation at the first
            # candidate instead of inheriting the old phase.
            if tuple(names) != previous_names:
                assert first_pick == names[0]
            previous_names = tuple(names)
