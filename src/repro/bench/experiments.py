"""The reproduced experiments (E1..E14).

The paper's evaluation (Sections 3.2 and 5) is narrative rather than a set of
numbered tables, so each quantitative or comparative claim becomes one
experiment here.  Every experiment builds a fresh simulated system, drives it
through the public API, and reports *simulated* milliseconds (comparable in
shape to the paper's 200 MHz-era measurements) plus whatever counts the claim
is about.  ``python -m repro.bench`` prints all tables; EXPERIMENTS.md records
paper-vs-measured.  E11-E14 go beyond the paper: E11 measures the
scale-out layer (sharded multi-DLFM deployments, WAL group commit, batched
link pipelines), E12 measures shard replication (WAL-stream shipping to
witness replicas, read availability across a primary crash and failover),
E13 measures online prefix rebalancing (foreground availability while a hot
prefix moves between shards under a 2PC hand-off) and E14 measures the
autonomous placement balancer (zipf-skewed traffic under static hash
placement versus the self-driving balancer's budgeted moves and splits).

``python -m repro.bench --smoke`` runs every experiment with tiny
configurations (:data:`SMOKE_PARAMS`) as a fast CI sanity pass.
"""

from __future__ import annotations

from repro.api.system import DataLinksSystem
from repro.bench.metrics import ExperimentResult
from repro.datalinks.baselines.blob_store import BlobFileStore
from repro.datalinks.control_modes import ControlMode
from repro.datalinks.datalink_type import DatalinkOptions, datalink_column
from repro.errors import DataLinksError, FileSystemError
from repro.fs.vfs import OpenFlags
from repro.storage.schema import Column, TableSchema
from repro.storage.values import DataType
from repro.util.urls import parse_url
from repro.workloads.editors import ALL_SCHEMES, EditorConfig, compare_schemes
from repro.workloads.generator import make_content
from repro.workloads.webserver import (
    BlobWebSiteWorkload,
    WebServerWorkload,
    WebSiteConfig,
)

FILES_TABLE = "managed_files"
OWNER_UID = 1001

#: Set by the bench harness during a ``--profile`` run: a zero-argument
#: callable returning the profiler's cumulative function-call count so
#: far.  Sweep experiments use it (via :func:`_profile_step_hook`) to
#: attribute deterministic ``profile_calls`` deltas to each sweep step
#: instead of only the per-experiment total.  ``None`` outside profiled
#: runs.
PROFILE_SNAPSHOT = None


def _profile_step_hook():
    """A per-step call-count delta hook for sweep loops.

    Returns ``None`` when no profiler is attached; otherwise a
    zero-argument callable whose each invocation returns the number of
    profiled function calls since the previous invocation (the first
    interval starts here, at hook creation -- call this right before
    entering the sweep).
    """

    snapshot = PROFILE_SNAPSHOT
    if snapshot is None:
        return None
    state = {"last": snapshot()}

    def hook() -> int:
        current = snapshot()
        delta = current - state["last"]
        state["last"] = current
        return delta

    return hook


# ---------------------------------------------------------------------------
# shared scaffolding
# ---------------------------------------------------------------------------

def _build_system(mode: ControlMode | None, *, size: int = 64 * 1024,
                  server: str = "fs1", path: str = "/data/file0.bin",
                  files: int = 1):
    """Build a system with *files* files; link them when *mode* is given.

    Returns ``(system, owner_session, [paths])``.
    """

    system = DataLinksSystem()
    system.add_file_server(server)
    system.create_table(TableSchema(FILES_TABLE, [
        Column("file_id", DataType.INTEGER, nullable=False),
        datalink_column("doc", DatalinkOptions(control_mode=mode)
                        if mode is not None else DatalinkOptions()),
        Column("doc_size", DataType.INTEGER),
        Column("doc_mtime", DataType.TIMESTAMP),
    ], primary_key=("file_id",)))
    system.register_metadata_columns(FILES_TABLE, "doc", "doc_size", "doc_mtime")
    owner = system.session("owner", uid=OWNER_UID)
    paths = []
    for index in range(files):
        file_path = path if files == 1 else f"/data/file{index}.bin"
        content = make_content(size, tag=f"file{index}", version=0)
        url = owner.put_file(server, file_path, content)
        if mode is not None:
            owner.insert(FILES_TABLE, {"file_id": index, "doc": url,
                                       "doc_size": len(content), "doc_mtime": 0.0})
        paths.append(file_path)
    if mode is not None:
        system.run_archiver()
    return system, owner, paths


def _measure(system: DataLinksSystem, operation, repeats: int = 20,
             clock=None) -> float:
    """Mean simulated milliseconds of *operation* over *repeats* runs.

    ``clock`` selects the clock domain the stopwatch runs on -- the domain
    where the measured operation starts and completes.  Host-side and
    session-driven operations measure on ``system.clock`` (the host domain;
    session file calls merge the file server's completion time back into
    it), while operations driven directly against one file server's file
    system measure on that server's domain.
    """

    stopwatch_clock = clock if clock is not None else system.clock
    total = 0.0
    for _ in range(repeats):
        with stopwatch_clock.measure() as timer:
            operation()
        total += timer.elapsed_ms
    return total / repeats


# ---------------------------------------------------------------------------
# E1 -- DATALINK column retrieval cost at the host database
# ---------------------------------------------------------------------------

def experiment_e1(repeats: int = 50) -> ExperimentResult:
    """SELECT of a DATALINK column with and without token generation."""

    system, owner, _ = _build_system(ControlMode.RDB, size=4096, files=10)
    engine = system.engine

    def select_plain():
        engine.select(FILES_TABLE, {"file_id": 3}, lock=False)

    def select_read_token():
        engine.get_datalink(FILES_TABLE, {"file_id": 3}, "doc", access="read")

    rows = [
        {"statement": "SELECT row (no DATALINK processing)",
         "mean_ms": _measure(system, select_plain, repeats)},
        {"statement": "SELECT DATALINK with read-token generation",
         "mean_ms": _measure(system, select_read_token, repeats)},
    ]

    # Write tokens require an update mode; measure on a second system.
    system_w, _, _ = _build_system(ControlMode.RFD, size=4096, files=10)

    def select_write_token():
        system_w.engine.get_datalink(FILES_TABLE, {"file_id": 3}, "doc", access="write")

    rows.append({"statement": "SELECT DATALINK with write-token generation",
                 "mean_ms": _measure(system_w, select_write_token, repeats)})

    # Host-side token cache (ROADMAP read-caching, first slice): repeated
    # retrievals of the same DATALINK reuse the live token and skip the HMAC.
    system_c, _, _ = _build_system(ControlMode.RDB, size=4096, files=10)
    cache = system_c.engine.enable_token_cache()

    def select_cached_token():
        system_c.engine.get_datalink(FILES_TABLE, {"file_id": 3}, "doc",
                                     access="read", ttl=10_000.0)

    select_cached_token()   # warm the cache outside the measured window
    cached_ms = _measure(system_c, select_cached_token, repeats)
    rows.append({"statement": "SELECT DATALINK with token cache "
                              f"(hit rate {cache.stats()['hit_rate']:.2f})",
                 "mean_ms": cached_ms})
    for row in rows:
        row["within_3ms"] = "yes" if row["mean_ms"] < 3.0 else "no"
    return ExperimentResult(
        experiment_id="E1",
        title="DATALINK column retrieval overhead at the host database",
        paper_claim="Retrieving a DATALINK column, including access token "
                    "generation, costs less than 3 ms at the host database "
                    "(Section 3.2).",
        headers=["statement", "mean_ms", "within_3ms"],
        rows=rows,
        notes="The token-cache row goes beyond the paper: repeated "
              "retrievals of the same (path, access) reuse a still-live "
              "token instead of regenerating the HMAC.",
    )


# ---------------------------------------------------------------------------
# E2 -- DLFS + token validation overhead at open/close, per control mode
# ---------------------------------------------------------------------------

def experiment_e2(repeats: int = 20) -> ExperimentResult:
    """open+close latency and upcall counts across control modes."""

    rows = []
    baseline_ms = None
    scenarios = [("unlinked", None), ("rff", ControlMode.RFF),
                 ("rfb", ControlMode.RFB), ("rdb", ControlMode.RDB),
                 ("rfd", ControlMode.RFD), ("rdd", ControlMode.RDD)]
    for label, mode in scenarios:
        system, owner, paths = _build_system(mode, size=4096)
        path = paths[0]
        server = system.file_server("fs1")
        lfs = server.lfs
        needs_token = mode is not None and mode.requires_read_token
        url = None
        if needs_token:
            url = owner.get_datalink(FILES_TABLE, {"file_id": 0}, "doc",
                                     access="read", ttl=10_000.0)

        def open_close():
            if needs_token:
                parsed = parse_url(url)
                open_path = f"{parsed.directory}/{parsed.filename};token={parsed.token}"
            else:
                open_path = path
            fd = lfs.open(open_path, OpenFlags.READ, owner.cred)
            lfs.close(fd)

        # open/close (and its upcalls) run entirely on the file server's
        # node, so measure on that clock domain and count upcalls in the
        # cluster-wide merged statistics.
        before_upcalls = system.clocks.stats.count("upcall_round_trip")
        mean_ms = _measure(system, open_close, repeats, clock=server.clock)
        upcalls = (system.clocks.stats.count("upcall_round_trip")
                   - before_upcalls) / repeats
        if label == "unlinked":
            baseline_ms = mean_ms
        rows.append({
            "mode": label,
            "read_open_close_ms": mean_ms,
            "added_vs_unlinked_ms": mean_ms - (baseline_ms or 0.0),
            "upcalls_per_open": upcalls,
        })
    return ExperimentResult(
        experiment_id="E2",
        title="DLFS and token-validation overhead on the open/close path",
        paper_claim="The DLFS layer plus token validation add roughly 1 ms to "
                    "open, read and close at the file server (Section 3.2); "
                    "modes not under full control avoid upcalls on read opens.",
        headers=["mode", "read_open_close_ms", "added_vs_unlinked_ms", "upcalls_per_open"],
        rows=rows,
        notes="Full-control modes (rdb, rdd) pay two upcalls per tokenized read "
              "open (token validation at lookup, Sync-table check at open); "
              "rff/rfb/rfd reads bypass the DLFM entirely.",
    )


# ---------------------------------------------------------------------------
# E3 -- end-to-end read overhead vs file size; DataLinks vs plain FS vs BLOB
# ---------------------------------------------------------------------------

def experiment_e3(sizes: tuple = (64 * 1024, 1024 * 1024, 4 * 1024 * 1024),
                  repeats: int = 5) -> ExperimentResult:
    rows = []
    for size in sizes:
        # plain file system (file not linked) -- a node-local read, measured
        # on the file server's clock domain
        system_plain, owner_plain, paths_plain = _build_system(None, size=size)
        server_plain = system_plain.file_server("fs1")
        lfs_plain = server_plain.lfs

        def read_plain():
            lfs_plain.read_file(paths_plain[0], owner_plain.cred)

        plain_ms = _measure(system_plain, read_plain, repeats,
                            clock=server_plain.clock)

        # DataLinks full control: the DB-side token retrieval and the FS-side
        # tokenized read are measured separately so the paper's "<1 % at the
        # file system side" claim can be checked on its own terms.
        system_dl, owner_dl, _ = _build_system(ControlMode.RDB, size=size)
        url_holder = {}

        def retrieve_token():
            url_holder["url"] = owner_dl.get_datalink(FILES_TABLE, {"file_id": 0},
                                                      "doc", access="read")

        def read_datalinks_fs():
            owner_dl.read_url(url_holder["url"])

        token_ms = _measure(system_dl, retrieve_token, repeats)
        datalinks_fs_ms = _measure(system_dl, read_datalinks_fs, repeats)

        # BLOB in the database (iFS / IXFS style)
        system_blob = DataLinksSystem()
        store = BlobFileStore(system_blob.host_db, system_blob.clock)
        store.write("/data/file0.bin", make_content(size, tag="blob", version=0))

        def read_blob():
            store.read("/data/file0.bin")

        blob_ms = _measure(system_blob, read_blob, repeats)

        rows.append({
            "size_kb": size // 1024,
            "plain_fs_ms": plain_ms,
            "datalinks_fs_ms": datalinks_fs_ms,
            "fs_overhead_pct": 100.0 * (datalinks_fs_ms - plain_ms) / plain_ms,
            "db_token_ms": token_ms,
            "total_overhead_pct": 100.0 * (datalinks_fs_ms + token_ms - plain_ms) / plain_ms,
            "blob_in_db_ms": blob_ms,
            "blob_overhead_pct": 100.0 * (blob_ms - plain_ms) / plain_ms,
        })
    return ExperimentResult(
        experiment_id="E3",
        title="End-to-end read cost: DataLinks vs plain file system vs BLOB-in-DB",
        paper_claim="The DLFS layer and token validation add about 1 ms, i.e. "
                    "under 1 % of the time to read a 1 MB file (Section 3.2); "
                    "LOB/BLOB approaches pay database processing on every read "
                    "byte (Section 1).",
        headers=["size_kb", "plain_fs_ms", "datalinks_fs_ms", "fs_overhead_pct",
                 "db_token_ms", "total_overhead_pct", "blob_in_db_ms",
                 "blob_overhead_pct"],
        rows=rows,
        notes="fs_overhead_pct isolates the file-server side (DLFS + upcalls + "
              "token validation), which is what the paper's <1 % figure covers; "
              "total_overhead_pct additionally counts the DATALINK retrieval at "
              "the host database.  Both are fixed per open, so they shrink as "
              "the file grows, while the BLOB penalty is per byte.",
    )


# ---------------------------------------------------------------------------
# E4 -- update-status bookkeeping overhead (the paper's Section 5 claim)
# ---------------------------------------------------------------------------

def experiment_e4(repeats: int = 20) -> ExperimentResult:
    rows = []

    # Plain file owned by the application: open for write, close.  A
    # node-local operation, measured on the file server's clock domain.
    system_plain, owner_plain, paths_plain = _build_system(None, size=8192)
    server_plain = system_plain.file_server("fs1")
    lfs_plain = server_plain.lfs

    def plain_write_open_close():
        fd = lfs_plain.open(paths_plain[0], OpenFlags.READ | OpenFlags.WRITE,
                            owner_plain.cred)
        lfs_plain.close(fd)

    plain_ms = _measure(system_plain, plain_write_open_close, repeats,
                        clock=server_plain.clock)
    rows.append({"case": "plain file, write open/close (no DataLinks)",
                 "mean_ms": plain_ms, "added_ms": 0.0})

    for mode in (ControlMode.RFD, ControlMode.RDD):
        system, owner, paths = _build_system(mode, size=8192)

        def managed_write_open_close():
            url = owner.get_datalink(FILES_TABLE, {"file_id": 0}, "doc", access="write")
            update = owner.update_file(url)
            update.begin()
            update.commit()
            system.run_archiver()

        mean_ms = _measure(system, managed_write_open_close, repeats)
        rows.append({"case": f"{mode.value}-linked file, write open/close "
                             f"(token + Sync + tracking)",
                     "mean_ms": mean_ms, "added_ms": mean_ms - plain_ms})
    return ExperimentResult(
        experiment_id="E4",
        title="Cost of maintaining file-update status at the DLFM",
        paper_claim="'There is only minor difference in the response time between "
                    "opening a DataLinks managed file and opening a file system "
                    "managed file'; the update-status bookkeeping at DLFM is "
                    "insignificant (Section 5).",
        headers=["case", "mean_ms", "added_ms"],
        rows=rows,
        notes="The managed cases include write-token generation at the host DB, "
              "the lookup/open/close upcalls and the Sync-table and "
              "update-tracking rows -- everything Section 4 adds to an update.",
    )


# ---------------------------------------------------------------------------
# E5 -- update schemes compared: UIP vs CICO vs CAU
# ---------------------------------------------------------------------------

def experiment_e5(config: EditorConfig | None = None) -> ExperimentResult:
    base = config if config is not None else EditorConfig(
        editors=6, files=3, edits_per_editor=4)
    results = compare_schemes(base)
    rows = []
    for scheme in ALL_SCHEMES:
        metrics = results[scheme]
        completed = metrics.counters.get("completed_edits", 0)
        rows.append({
            "scheme": scheme,
            "completed_edits": completed,
            "acquire_conflicts": metrics.counters.get("conflicts", 0),
            "lost_updates": metrics.counters.get("lost_updates", 0),
            "rejected_checkins": metrics.counters.get("rejected_checkins", 0),
            "mean_busy_s": metrics.stats("edit_session").mean,
            "elapsed_s": metrics.elapsed,
            "edits_per_min": 60.0 * completed / metrics.elapsed if metrics.elapsed else 0.0,
        })
    return ExperimentResult(
        experiment_id="E5",
        title="Update schemes under concurrent editing",
        paper_claim="CICO holds database locks across whole edit sessions and "
                    "needs two extra database updates per edit; CAU avoids locks "
                    "but admits lost updates; UIP serializes writers at open/close "
                    "without losing updates (Section 3).",
        headers=["scheme", "completed_edits", "acquire_conflicts", "lost_updates",
                 "rejected_checkins", "mean_busy_s", "elapsed_s", "edits_per_min"],
        rows=[{key: (round(value, 3) if isinstance(value, float) else value)
               for key, value in row.items()} for row in rows],
        notes="cau-overwrite publishes every edit but silently loses intervening "
              "ones; cau-detect refuses them instead; uip and cico both refuse "
              "concurrent writers up front and never lose an update.",
    )


# ---------------------------------------------------------------------------
# E6 -- atomicity of file update under aborts and crashes
# ---------------------------------------------------------------------------

def experiment_e6() -> ExperimentResult:
    rows = []

    def scenario(name: str, expected: str, run) -> None:
        observed = run()
        rows.append({"scenario": name, "expected": expected, "observed": observed,
                     "pass": "yes" if observed == expected else "NO"})

    # 1. explicit abort in the middle of an update
    def run_abort():
        system, owner, paths = _build_system(ControlMode.RFD, size=4096)
        before = system.file_server("fs1").files.read(paths[0])
        url = owner.get_datalink(FILES_TABLE, {"file_id": 0}, "doc", access="write")
        try:
            with owner.update_file(url, truncate=True) as update:
                update.write(b"partial garbage")
                raise RuntimeError("application failure")
        except RuntimeError:
            pass
        after = system.file_server("fs1").files.read(paths[0])
        return "last committed version restored" if after == before \
            else "partial update survived"

    scenario("application fails mid-update (rfd)",
             "last committed version restored", run_abort)

    # 2. file-server crash while an update is open
    def run_crash():
        system, owner, paths = _build_system(ControlMode.RDD, size=4096)
        before = system.file_server("fs1").files.read(paths[0])
        url = owner.get_datalink(FILES_TABLE, {"file_id": 0}, "doc", access="write")
        update = owner.update_file(url, truncate=True)
        update.begin()
        update.write(b"in flight")
        system.crash_file_server("fs1")
        system.recover_file_server("fs1")
        after = system.file_server("fs1").files.read(paths[0])
        return "last committed version restored" if after == before \
            else "partial update survived"

    scenario("file server crashes mid-update (rdd)",
             "last committed version restored", run_crash)

    # 3. crash after commit but before asynchronous archiving
    def run_crash_after_commit():
        system, owner, paths = _build_system(ControlMode.RFD, size=4096)
        new_content = make_content(4096, tag="committed", version=1)
        url = owner.get_datalink(FILES_TABLE, {"file_id": 0}, "doc", access="write")
        with owner.update_file(url, truncate=True) as update:
            update.replace(new_content)
        # crash before the archiver has run
        system.crash_file_server("fs1")
        system.recover_file_server("fs1")
        after = system.file_server("fs1").files.read(paths[0])
        return "committed update survived" if after == new_content \
            else "committed update lost"

    scenario("crash after close/commit, before archiving",
             "committed update survived", run_crash_after_commit)

    # 4. SQL transaction that links a file rolls back
    def run_link_rollback():
        system, owner, paths = _build_system(None, size=4096)
        url = system.engine.make_url("fs1", paths[0])
        owner.begin()
        owner.insert(FILES_TABLE, {"file_id": 99, "doc": url,
                                   "doc_size": 0, "doc_mtime": 0.0})
        owner.abort()
        linked = system.file_server("fs1").dlfm.repository.linked_file(paths[0])
        attrs = system.file_server("fs1").files.stat(paths[0])
        writable = bool(attrs.mode & 0o200)
        if linked is None and writable:
            return "link undone, file permissions restored"
        return "link or permissions leaked"

    scenario("SQL transaction with link rolls back",
             "link undone, file permissions restored", run_link_rollback)

    return ExperimentResult(
        experiment_id="E6",
        title="Atomicity of in-place file update",
        paper_claim="'This ensures that either all changes to a file between open "
                    "and close calls complete successfully or none of the changes "
                    "survive the failure' (Section 4.2); DLFM changes roll back "
                    "with the SQL transaction (Section 2.2).",
        headers=["scenario", "expected", "observed", "pass"],
        rows=rows,
    )


# ---------------------------------------------------------------------------
# E7 -- coordinated backup and point-in-time restore
# ---------------------------------------------------------------------------

def experiment_e7() -> ExperimentResult:
    system, owner, paths = _build_system(ControlMode.RFD, size=4096)
    path = paths[0]
    files = system.file_server("fs1").files
    contents = {0: files.read(path)}
    backups = {}

    def update_to(version: int) -> None:
        content = make_content(4096, tag="v", version=version)
        url = owner.get_datalink(FILES_TABLE, {"file_id": 0}, "doc", access="write")
        with owner.update_file(url, truncate=True) as update:
            update.replace(content)
        system.run_archiver()
        contents[version] = content

    backups[0] = system.backup("v0")
    update_to(1)
    backups[1] = system.backup("v1")
    update_to(2)
    backups[2] = system.backup("v2")
    update_to(3)

    rows = []
    for version in (1, 0, 2):
        system.restore(backups[version])
        file_content = files.read(path)
        metadata = system.host_db.select_one(FILES_TABLE, {"file_id": 0}, lock=False)
        content_ok = file_content == contents[version]
        metadata_ok = metadata is not None and metadata["doc_size"] == len(contents[version])
        rows.append({
            "restore_to": f"backup taken after v{version}",
            "state_id": backups[version].state_id,
            "file_content_matches": "yes" if content_ok else "NO",
            "metadata_matches": "yes" if metadata_ok else "NO",
        })
    return ExperimentResult(
        experiment_id="E7",
        title="Coordinated backup and point-in-time restore",
        paper_claim="Each file version carries the database state identifier; "
                    "restoring the database to a previous point also restores the "
                    "corresponding file versions from the archive (Section 4.4).",
        headers=["restore_to", "state_id", "file_content_matches", "metadata_matches"],
        rows=rows,
        notes="Restores are exercised out of order (v1, then back to v0, then "
              "forward to v2) to show the restore picks versions by state id, "
              "not by recency.",
    )


# ---------------------------------------------------------------------------
# E8 -- synchronization of file access with link/unlink; the rfd window
# ---------------------------------------------------------------------------

def experiment_e8() -> ExperimentResult:
    rows = []

    def record(name: str, paper_expectation: str, observed: str, matches: bool) -> None:
        rows.append({"scenario": name, "paper": paper_expectation,
                     "observed": observed, "matches_paper": "yes" if matches else "NO"})

    # a. unlink rejected while the file is open (rdd read)
    system, owner, paths = _build_system(ControlMode.RDD, size=4096)
    url = owner.get_datalink(FILES_TABLE, {"file_id": 0}, "doc", access="read")
    fd = owner.open_url(url, OpenFlags.READ)
    try:
        owner.delete(FILES_TABLE, {"file_id": 0})
        record("unlink while file open (rdd)", "unlink rejected via Sync table",
               "unlink succeeded", False)
    except (DataLinksError, FileSystemError) as error:
        record("unlink while file open (rdd)", "unlink rejected via Sync table",
               f"rejected: {type(error).__name__}", True)
    system.file_server("fs1").lfs.close(fd)

    # b. rfd: a reader holds the file open while a writer updates it
    system, owner, paths = _build_system(ControlMode.RFD, size=4096)
    reader = system.session("reader", uid=3002)
    reader_fd = system.file_server("fs1").lfs.open(paths[0], OpenFlags.READ, reader.cred)
    wurl = owner.get_datalink(FILES_TABLE, {"file_id": 0}, "doc", access="write")
    try:
        with owner.update_file(wurl, truncate=True) as update:
            update.replace(b"new data visible to the concurrent reader")
        observed = "writer allowed while reader has the file open"
        matches = True
    except FileSystemError:
        observed = "writer blocked by existing reader"
        matches = False
    record("rfd: write open while another application reads",
           "allowed -- the documented read/write inconsistency window", observed, matches)
    data_after = system.file_server("fs1").lfs.read(reader_fd)
    record("rfd: reader's next read during/after the update",
           "may observe the new (or mixed) content",
           "reader saw updated content" if b"new data" in data_after
           else "reader saw original content", b"new data" in data_after)
    system.file_server("fs1").lfs.close(reader_fd)

    # c. rdd: reader open blocks a writer (serialized at open time)
    system, owner, paths = _build_system(ControlMode.RDD, size=4096)
    rurl = owner.get_datalink(FILES_TABLE, {"file_id": 0}, "doc", access="read")
    reader_fd = owner.open_url(rurl, OpenFlags.READ)
    wurl = owner.get_datalink(FILES_TABLE, {"file_id": 0}, "doc", access="write")
    try:
        owner.update_file(wurl).begin()
        record("rdd: write open while a reader holds the file",
               "rejected -- reads and writes serialized at open", "writer allowed", False)
    except FileSystemError:
        record("rdd: write open while a reader holds the file",
               "rejected -- reads and writes serialized at open", "writer rejected", True)
    system.file_server("fs1").lfs.close(reader_fd)

    # d. rdd: writer open blocks a reader
    wurl = owner.get_datalink(FILES_TABLE, {"file_id": 0}, "doc", access="write")
    update = owner.update_file(wurl)
    update.begin()
    rurl = owner.get_datalink(FILES_TABLE, {"file_id": 0}, "doc", access="read")
    try:
        owner.open_url(rurl, OpenFlags.READ)
        record("rdd: read open while a writer holds the file",
               "rejected -- reads and writes serialized at open", "reader allowed", False)
    except FileSystemError:
        record("rdd: read open while a writer holds the file",
               "rejected -- reads and writes serialized at open", "reader rejected", True)
    update.commit()

    # e. link succeeds while the file is already open (acknowledged window)
    system, owner, paths = _build_system(None, size=4096)
    lfs = system.file_server("fs1").lfs
    open_fd = lfs.open(paths[0], OpenFlags.READ, owner.cred)
    url = system.engine.make_url("fs1", paths[0])
    try:
        owner.insert(FILES_TABLE, {"file_id": 0, "doc": url,
                                   "doc_size": 0, "doc_mtime": 0.0})
        record("link while the file is open by an application",
               "link succeeds (window of inconsistency left as future work)",
               "link succeeded", True)
    except (DataLinksError, FileSystemError):
        record("link while the file is open by an application",
               "link succeeds (window of inconsistency left as future work)",
               "link rejected", False)
    lfs.close(open_fd)

    return ExperimentResult(
        experiment_id="E8",
        title="Synchronization of file access with link/unlink; rfd consistency window",
        paper_claim="Unlink is rejected while a Sync-table entry exists; rdd "
                    "serializes readers and writers at open time; rfd leaves a "
                    "read/write window; a link can succeed while the file is open "
                    "(Sections 4.5 and 5).",
        headers=["scenario", "paper", "observed", "matches_paper"],
        rows=rows,
    )


# ---------------------------------------------------------------------------
# E9 -- read-mostly web workload; scale-out and the BLOB comparison
# ---------------------------------------------------------------------------

def experiment_e9(pages: int = 24, operations: int = 200,
                  page_size: int = 64 * 1024,
                  clients: int = 1,
                  session_sweep: tuple = (),
                  admission_limit: int | None = None,
                  client_think_s: float = 0.0) -> ExperimentResult:
    rows = []
    for servers in (1, 2, 4):
        config = WebSiteConfig(pages=pages, operations=operations, page_size=page_size,
                               file_servers=servers, control_mode=ControlMode.RFD,
                               clients=clients)
        workload = WebServerWorkload(config).setup()
        metrics = workload.run()
        per_server_mb = [
            workload.system.file_server(f"web{index}").physical.device.stats.bytes_read
            / (1024 * 1024)
            for index in range(servers)
        ]
        cache = workload.system.engine.token_cache_stats()
        reads = metrics.stats("read_page")
        rows.append({
            "configuration": f"DataLinks rfd, {servers} file server(s)",
            "reads": reads.count,
            "mean_read_ms": round(reads.mean * 1000, 3),
            "read_p50_ms": round(reads.p50 * 1000, 3),
            "read_p99_ms": round(reads.p99 * 1000, 3),
            "queue_p50_ms": 0.0,
            "queue_p99_ms": 0.0,
            "mean_update_ms": round(metrics.stats("update_page").mean * 1000, 3),
            "ops_per_sim_s": round(metrics.throughput(), 1),
            "max_mb_read_per_server": round(max(per_server_mb), 1),
            "host_db_read_mb": 0.0,
            "token_cache_hit_pct": round(100.0 * cache.get("hit_rate", 0.0), 1)
            if cache.get("enabled") else 0.0,
        })
    # Tokenized-read variant: under rdd every page read needs a read token,
    # so the (default-on) host-side token cache carries the hot path -- the
    # Zipf-skewed popularity means almost every retrieval reuses a live
    # token instead of regenerating the HMAC.
    rdd_config = WebSiteConfig(pages=pages, operations=operations,
                               page_size=page_size, file_servers=1,
                               control_mode=ControlMode.RDD, clients=clients)
    rdd = WebServerWorkload(rdd_config).setup()
    metrics = rdd.run()
    cache = rdd.system.engine.token_cache_stats()
    rdd_mb = rdd.system.file_server("web0").physical.device.stats.bytes_read \
        / (1024 * 1024)
    rdd_reads = metrics.stats("read_page")
    rows.append({
        "configuration": "DataLinks rdd (tokenized reads), 1 file server",
        "reads": rdd_reads.count,
        "mean_read_ms": round(rdd_reads.mean * 1000, 3),
        "read_p50_ms": round(rdd_reads.p50 * 1000, 3),
        "read_p99_ms": round(rdd_reads.p99 * 1000, 3),
        "queue_p50_ms": 0.0,
        "queue_p99_ms": 0.0,
        "mean_update_ms": round(metrics.stats("update_page").mean * 1000, 3),
        "ops_per_sim_s": round(metrics.throughput(), 1),
        "max_mb_read_per_server": round(rdd_mb, 1),
        "host_db_read_mb": 0.0,
        "token_cache_hit_pct": round(100.0 * cache.get("hit_rate", 0.0), 1)
        if cache.get("enabled") else 0.0,
    })
    blob_config = WebSiteConfig(pages=pages, operations=operations, page_size=page_size)
    blob = BlobWebSiteWorkload(blob_config).setup()
    metrics = blob.run()
    blob_bytes = sum(stats.count for stats in metrics.operations.values()) * page_size
    blob_reads = metrics.stats("read_page")
    rows.append({
        "configuration": "BLOB-in-database (iFS/IXFS style)",
        "reads": blob_reads.count,
        "mean_read_ms": round(blob_reads.mean * 1000, 3),
        "read_p50_ms": round(blob_reads.p50 * 1000, 3),
        "read_p99_ms": round(blob_reads.p99 * 1000, 3),
        "queue_p50_ms": 0.0,
        "queue_p99_ms": 0.0,
        "mean_update_ms": round(metrics.stats("update_page").mean * 1000, 3),
        "ops_per_sim_s": round(metrics.throughput(), 1),
        "max_mb_read_per_server": 0.0,
        "host_db_read_mb": round(blob_bytes / (1024 * 1024), 1),
        "token_cache_hit_pct": 0.0,
    })
    profile_steps = {}
    if session_sweep:
        # Concurrent-session sweep: tokenized (rdd) reads so every page
        # retrieval exercises the vectorized bulk token handout.  Every
        # swept session rides its own client clock domain through the
        # host admission gate (see repro.workloads.clients).
        sweep_config = WebSiteConfig(pages=pages, operations=operations,
                                     page_size=page_size, file_servers=4,
                                     control_mode=ControlMode.RDD,
                                     admission_limit=admission_limit,
                                     client_think_s=client_think_s)
        sweep = WebServerWorkload(sweep_config).setup()
        gate = f", admission limit {admission_limit}" \
            if admission_limit is not None else ""
        for step in sweep.run_session_sweep(tuple(session_sweep),
                                            step_hook=_profile_step_hook()):
            cache = sweep.system.engine.token_cache_stats()
            label = (f"rdd session sweep, {step['sessions']} sessions{gate} "
                     f"(bulk handout {step['handout_ms']} ms)")
            rows.append({
                "configuration": label,
                "reads": step["reads"],
                "mean_read_ms": step["mean_read_ms"],
                "read_p50_ms": step["read_p50_ms"],
                "read_p99_ms": step["read_p99_ms"],
                "queue_p50_ms": step["queue_p50_ms"],
                "queue_p99_ms": step["queue_p99_ms"],
                "mean_update_ms": 0.0,
                "ops_per_sim_s": step["ops_per_sim_s"],
                "max_mb_read_per_server": step["max_mb_read_per_server"],
                "host_db_read_mb": 0.0,
                "token_cache_hit_pct": round(100.0 * cache.get("hit_rate", 0.0), 1)
                if cache.get("enabled") else 0.0,
            })
            if step.get("profile_calls") is not None:
                profile_steps[label] = step["profile_calls"]
    result = ExperimentResult(
        experiment_id="E9",
        title="Read-mostly web workload: DataLinks scale-out vs BLOB-in-DB",
        paper_claim="DataLinks keeps the read path almost free of database "
                    "involvement and lets files be spread over multiple file "
                    "servers, unlike LOB/BLOB storage which funnels every byte "
                    "through the database server (Section 1).",
        headers=["configuration", "reads", "mean_read_ms", "read_p50_ms",
                 "read_p99_ms", "queue_p50_ms", "queue_p99_ms",
                 "mean_update_ms", "ops_per_sim_s",
                 "max_mb_read_per_server", "host_db_read_mb",
                 "token_cache_hit_pct"],
        rows=rows,
        notes="max_mb_read_per_server shows how the data-path load spreads as "
              "file servers are added; the BLOB configuration moves that entire "
              "volume through the host database instead.  The host-side token "
              "cache is on by default in the web workload: rfd reads need no "
              "token, so its hit rate reflects the write-token handouts of the "
              "Zipf-hot page updates.  Session-sweep rows spread a tokenized "
              "rdd read mix over N concurrent visitor sessions, each on its "
              "own client clock domain behind the host admission gate: a "
              "session acquires a connection slot (measured queue delay, "
              "the queue_* columns), thinks while holding it, reads, and "
              "releases -- so once N exceeds the admission limit, "
              "ops_per_sim_s flattens at the limit (the saturation knee) "
              "while read_p99_ms keeps growing with the queue.  Each "
              "session's read tokens are minted in one vectorized "
              "get_datalink_many handout whose cost the row reports "
              "separately, and throughput counts the handout inside the "
              "measured window.",
    )
    if profile_steps:
        result.extra["profile_steps"] = profile_steps
    return result


# ---------------------------------------------------------------------------
# E10 -- ablation: strict read synchronization (the paper's future-work fix)
# ---------------------------------------------------------------------------

def experiment_e10(repeats: int = 20) -> ExperimentResult:
    """Cost and effect of closing the rfd read/write window with Sync entries."""

    from repro.fs.vfs import OpenFlags as _OpenFlags

    rows = []
    for label, strict in (("rfd (default, window open)", False),
                          ("rfd + strict read sync (window closed)", True)):
        system = DataLinksSystem()
        system.add_file_server("fs1", strict_read_upcalls=strict)
        system.create_table(TableSchema(FILES_TABLE, [
            Column("file_id", DataType.INTEGER, nullable=False),
            datalink_column("doc", DatalinkOptions(control_mode=ControlMode.RFD,
                                                   strict_read_sync=strict)),
            Column("doc_size", DataType.INTEGER),
            Column("doc_mtime", DataType.TIMESTAMP),
        ], primary_key=("file_id",)))
        system.register_metadata_columns(FILES_TABLE, "doc", "doc_size", "doc_mtime")
        owner = system.session("owner", uid=OWNER_UID)
        path = "/data/file0.bin"
        url = owner.put_file("fs1", path, make_content(8192, tag="e10"))
        owner.insert(FILES_TABLE, {"file_id": 0, "doc": url,
                                   "doc_size": 0, "doc_mtime": 0.0})
        system.run_archiver()
        server = system.file_server("fs1")
        lfs = server.lfs

        def open_close():
            fd = lfs.open(path, _OpenFlags.READ, owner.cred)
            lfs.close(fd)

        before_upcalls = system.clocks.stats.count("upcall_round_trip")
        mean_ms = _measure(system, open_close, repeats, clock=server.clock)
        upcalls = (system.clocks.stats.count("upcall_round_trip")
                   - before_upcalls) / repeats

        # Semantic probe: does a writer get in while a reader holds the file?
        reader = system.session("reader", uid=3002)
        reader_fd = lfs.open(path, _OpenFlags.READ, reader.cred)
        write_url = owner.get_datalink(FILES_TABLE, {"file_id": 0}, "doc", access="write")
        try:
            update = owner.update_file(write_url)
            update.begin()
            update.commit()
            writer_outcome = "allowed (window open)"
        except FileSystemError:
            writer_outcome = "rejected (window closed)"
        lfs.close(reader_fd)

        rows.append({
            "configuration": label,
            "read_open_close_ms": mean_ms,
            "upcalls_per_read_open": upcalls,
            "writer_while_reader_open": writer_outcome,
        })
    return ExperimentResult(
        experiment_id="E10",
        title="Ablation: strict read synchronization for rfd-linked files",
        paper_claim="'Making an upcall to DLFM from DLFS and adding an entry in "
                    "the Sync table will eliminate the problem' but 'would incur "
                    "additional overhead ... for every open call', which is why "
                    "the paper does not recommend it (Section 5).",
        headers=["configuration", "read_open_close_ms", "upcalls_per_read_open",
                 "writer_while_reader_open"],
        rows=rows,
        notes="The ablation quantifies the trade-off the authors describe: strict "
              "synchronization closes the rfd read/write window at the price of an "
              "upcall plus two Sync-table updates on every read open.",
    )


# ---------------------------------------------------------------------------
# E11 -- scale-out: sharded multi-DLFM, WAL group commit, batched pipelines
# ---------------------------------------------------------------------------

def experiment_e11(shards: int = 8, clients: int = 4,
                   transactions_per_client: int = 3,
                   rows_per_transaction: int = 16,
                   file_size: int = 512,
                   client_sweep: tuple = (),
                   sweep_admission_limit: int | None = None,
                   sweep_think_s: float = 0.0) -> ExperimentResult:
    """Link throughput of the scale-out layer versus the per-row baseline.

    Links use rdb mode (token-protected reads), so every link drives the
    full DLFM path -- repository rows plus the link-time ownership takeover
    on the shard -- the same deployment style E12 replicates.
    """

    from repro.datalinks.control_modes import ControlMode as _ControlMode
    from repro.workloads.scaleout import ScaleOutConfig, ScaleOutWorkload

    def run(label, **overrides):
        config = ScaleOutConfig(clients=clients,
                                transactions_per_client=transactions_per_client,
                                rows_per_transaction=rows_per_transaction,
                                file_size=file_size,
                                control_mode=_ControlMode.RDB, **overrides)
        workload = ScaleOutWorkload(config).setup()
        metrics = workload.run()
        stats = workload.deployment.stats()
        per_shard = stats["linked_files_per_shard"].values()
        return {
            "configuration": label,
            "links": metrics.counters.get("links", 0),
            "links_per_sim_s": round(workload.link_throughput(metrics), 1),
            "mean_txn_ms": round(metrics.stats("link_txn").mean * 1000, 3),
            "txn_p99_ms": round(metrics.stats("link_txn").p99 * 1000, 3),
            "queue_p99_ms": 0.0,
            "host_log_flushes": stats["host_log_flushes"],
            "max_links_per_shard": max(per_shard) if per_shard else 0,
        }

    rows = [
        run("1 server, per-row links, immediate flush, serial clock",
            shards=1, batch_links=False, flush_policy="immediate",
            group_commit_window=1, serial_clock=True),
        run(f"{shards} shards, per-row links, immediate flush, serial clock",
            shards=shards, batch_links=False, flush_policy="immediate",
            group_commit_window=1, serial_clock=True),
        run("1 server, per-row links, immediate flush",
            shards=1, batch_links=False, flush_policy="immediate",
            group_commit_window=1),
        run(f"{shards} shards, per-row links, immediate flush",
            shards=shards, batch_links=False, flush_policy="immediate",
            group_commit_window=1),
        run(f"{shards} shards, batched links, group commit",
            shards=shards, batch_links=True, flush_policy="group",
            group_commit_window=8),
    ]
    profile_steps = {}
    if client_sweep:
        # Concurrent-writer sweep: every ingest client on its own clock
        # domain, admitted through the host connection gate, committing
        # one batched link transaction per operation through its own
        # session (client <-> host barriers per SQL call).
        sweep_config = ScaleOutConfig(shards=shards, clients=0,
                                      transactions_per_client=0,
                                      rows_per_transaction=rows_per_transaction,
                                      file_size=file_size,
                                      control_mode=_ControlMode.RDB,
                                      batch_links=True, flush_policy="group",
                                      group_commit_window=8)
        sweep = ScaleOutWorkload(sweep_config).setup()
        gate = f", admission limit {sweep_admission_limit}" \
            if sweep_admission_limit is not None else ""
        for step in sweep.run_client_sweep(
                tuple(client_sweep), transactions_per_client=1,
                admission_limit=sweep_admission_limit,
                think_s=sweep_think_s, step_hook=_profile_step_hook()):
            label = f"client sweep, {step['clients']} clients{gate}"
            rows.append({
                "configuration": label,
                "links": step["links"],
                "links_per_sim_s": step["links_per_sim_s"],
                "mean_txn_ms": step["txn_mean_ms"],
                "txn_p99_ms": step["txn_p99_ms"],
                "queue_p99_ms": step["queue_p99_ms"],
                "host_log_flushes": step["host_log_flushes"],
                "max_links_per_shard": step["max_links_per_shard"],
            })
            if step.get("profile_calls") is not None:
                profile_steps[label] = step["profile_calls"]
    baseline_row = next(
        row for row in rows
        if row["configuration"] == "1 server, per-row links, immediate flush")
    baseline = baseline_row["links_per_sim_s"] or 1.0
    for row in rows:
        row["speedup_vs_baseline"] = round(row["links_per_sim_s"] / baseline, 2)
    result = ExperimentResult(
        experiment_id="E11",
        title="Scale-out: sharded DLFMs with group commit and batched pipelines",
        paper_claim="Beyond the paper: hash-sharding linked files over many "
                    "DLFMs, letting each shard's clock domain progress "
                    "concurrently, shipping one batched link message per "
                    "enlisted shard and resolving commits in groups (one log "
                    "force and one prepare/commit message per shard per "
                    "batch) should raise link throughput well above the "
                    "serial one-server, per-row, per-commit-flush baseline.",
        headers=["configuration", "links", "links_per_sim_s", "mean_txn_ms",
                 "txn_p99_ms", "queue_p99_ms", "host_log_flushes",
                 "max_links_per_shard", "speedup_vs_baseline"],
        rows=rows,
        notes="speedup_vs_baseline is relative to the 1-server clock-domain "
              "row.  The serial-clock rows reproduce the old single-timeline "
              "model, where adding shards *without* batching only adds "
              "two-phase-commit fan-out cost; with per-node clock domains "
              "the same per-row configuration overlaps link work across "
              "shards (the fourth row's win is parallelism alone), and "
              "batching plus WAL group commit stack on top of it while "
              "sharding spreads the linked files (max_links_per_shard) and "
              "with them the data-path load.  Client-sweep rows drive N "
              "concurrent writers, each on its own client clock domain "
              "behind the host admission gate, committing one batched link "
              "transaction apiece: queue_p99_ms is the measured admission "
              "queue delay and txn latency is end-to-end on the client's "
              "timeline, so throughput saturates on whichever is tighter -- "
              "the admission limit or the host commit path.",
    )
    if profile_steps:
        result.extra["profile_steps"] = profile_steps
    return result


# ---------------------------------------------------------------------------
# E12 -- replication: witness replicas, WAL shipping, replica failover
# ---------------------------------------------------------------------------

def experiment_e12(shards: int = 4, files: int = 32, reads_per_phase: int = 48,
                   file_size: int = 2048,
                   rows_per_transaction: int = 8,
                   follower_read_batch: int = 24,
                   writes_per_phase: int = 8,
                   client_sweep: tuple = (),
                   sweep_admission_limit: int | None = None,
                   sweep_think_s: float = 0.0,
                   sweep_reads_per_client: int = 1) -> ExperimentResult:
    """Availability across a shard primary crash: reads, writes, follower reads."""

    from repro.workloads.failover import FailoverConfig, FailoverWorkload

    def run(label: str, replication: bool, witnesses: int = 1) -> dict:
        config = FailoverConfig(shards=shards, files=files,
                                reads_per_phase=reads_per_phase,
                                file_size=file_size,
                                rows_per_transaction=rows_per_transaction,
                                follower_read_batch=follower_read_batch,
                                writes_per_phase=writes_per_phase,
                                replication=replication,
                                witnesses=witnesses)
        workload = FailoverWorkload(config).setup()
        metrics = workload.run()
        counters = metrics.counters
        return {
            "configuration": label,
            "links_per_sim_s": round(workload.link_throughput(metrics), 1),
            "victim_reads_after": (
                counters.get("victim_reads_ok_after", 0)
                + counters.get("victim_reads_failed_after", 0)),
            "victim_failures_after": counters.get("victim_reads_failed_after", 0),
            "victim_availability_pct": round(
                100.0 * workload.availability(metrics), 1),
            "write_availability_pct": round(
                100.0 * workload.write_availability(metrics), 1),
            "writes_ok_after": counters.get("writes_ok_after", 0),
            "follower_reads_per_sim_s": round(
                workload.follower_read_throughput(metrics), 1),
            "mean_read_ms_after": round(
                metrics.stats("read_after").mean * 1000, 3),
            "read_p99_ms": round(
                metrics.stats("read_after").p99 * 1000, 3),
            "queue_p99_ms": 0.0,
            "failover_ms": round(metrics.stats("promotion").mean * 1000, 3),
        }

    rows = [
        run(f"{shards} shards, no replication (crash = outage)", False),
        run(f"{shards} shards, 1 witness, writable failover + follower reads",
            True, witnesses=1),
        run(f"{shards} shards, 2 witnesses, writable failover + follower reads",
            True, witnesses=2),
    ]
    profile_steps = {}
    if client_sweep:
        # Concurrent-reader sweep over a healthy replicated cluster:
        # every reader on its own client clock domain behind the host
        # admission gate, its reads routed over the serving node and its
        # witnesses.  The per-client replacement for the single
        # follower-read scatter-gather burst.
        sweep_config = FailoverConfig(shards=shards, files=files,
                                      reads_per_phase=reads_per_phase,
                                      file_size=file_size,
                                      rows_per_transaction=rows_per_transaction,
                                      follower_read_batch=follower_read_batch,
                                      writes_per_phase=writes_per_phase,
                                      replication=True, witnesses=1)
        sweep = FailoverWorkload(sweep_config).setup()
        gate = f", admission limit {sweep_admission_limit}" \
            if sweep_admission_limit is not None else ""
        for step in sweep.run_read_sweep(
                tuple(client_sweep),
                reads_per_client=sweep_reads_per_client,
                admission_limit=sweep_admission_limit,
                think_s=sweep_think_s, step_hook=_profile_step_hook()):
            label = f"routed read sweep, {step['clients']} clients{gate}"
            rows.append({
                "configuration": label,
                "links_per_sim_s": 0.0,
                "victim_reads_after": 0,
                "victim_failures_after": step["reads_failed"],
                "victim_availability_pct": 0.0,
                "write_availability_pct": 0.0,
                "writes_ok_after": 0,
                "follower_reads_per_sim_s": step["reads_per_sim_s"],
                "mean_read_ms_after": step["read_mean_ms"],
                "read_p99_ms": step["read_p99_ms"],
                "queue_p99_ms": step["queue_p99_ms"],
                "failover_ms": 0.0,
            })
            if step.get("profile_calls") is not None:
                profile_steps[label] = step["profile_calls"]
    result = ExperimentResult(
        experiment_id="E12",
        title="Shard replication: writable failover, follower reads, availability",
        paper_claim="Beyond the paper: shipping each shard's repository WAL "
                    "stream to witness replicas and routing through a "
                    "replication-aware layer should keep a crashed shard's "
                    "URL prefix fully *readable and writable* after "
                    "promotion (the promoted witness takes link/unlink "
                    "branches and 2PC votes, where the unreplicated "
                    "deployment fails every read and every write of that "
                    "prefix), and healthy witnesses serving bounded-"
                    "staleness follower reads should raise read throughput "
                    "with every witness added; the cost is a lower link "
                    "ingest rate (content mirroring plus WAL shipping).",
        headers=["configuration", "links_per_sim_s",
                 "victim_reads_after", "victim_failures_after",
                 "victim_availability_pct", "write_availability_pct",
                 "writes_ok_after", "follower_reads_per_sim_s",
                 "mean_read_ms_after", "read_p99_ms", "queue_p99_ms",
                 "failover_ms"],
        rows=rows,
        notes="Reads use rdb-linked files, so every read needs its token "
              "validated by the node serving it -- failover and follower "
              "reads cover the upcall path, not just raw file content "
              "(witnesses share the primary's token secret, and their "
              "follower-read soft state stays out of the redo-only replica "
              "heaps).  write_availability_pct counts victim-prefix link "
              "transactions after the crash: 0% without replication, ~100% "
              "once the witness is promoted to a full primary.  "
              "follower_reads_per_sim_s measures a concurrent read burst "
              "issued in one scatter-gather window, so it reflects the "
              "bottleneck node's busy time; the router's round-robin over "
              "serving node + witnesses makes it scale with the witness "
              "count.  An epoch fence keeps the deposed ex-primary from "
              "serving anything until it rejoins the (reversed) WAL stream "
              "at fail-back.  Routed-read-sweep rows drive N concurrent "
              "readers over a healthy 1-witness cluster, each on its own "
              "client clock domain behind the host admission gate "
              "(queue_p99_ms is the measured queue delay, and the latency "
              "columns are end-to-end on the reader's timeline); the "
              "crash-phase columns are zero for those rows by "
              "construction.",
    )
    if profile_steps:
        result.extra["profile_steps"] = profile_steps
    return result


# ---------------------------------------------------------------------------
# E13 -- online prefix rebalancing: availability during a live shard move
# ---------------------------------------------------------------------------

def experiment_e13(shards: int = 3, witnesses: int = 1, hot_files: int = 8,
                   cold_files: int = 8, file_size: int = 1024,
                   reads_per_phase: int = 12,
                   links_per_phase: int = 4) -> ExperimentResult:
    """Foreground link/read traffic while a hot prefix moves between shards."""

    from repro.workloads.rebalance import RebalanceConfig, RebalanceWorkload

    config = RebalanceConfig(shards=shards, witnesses=witnesses,
                             hot_files=hot_files, cold_files=cold_files,
                             file_size=file_size,
                             reads_per_phase=reads_per_phase,
                             links_per_phase=links_per_phase)
    workload = RebalanceWorkload(config).setup()
    metrics = workload.run()
    counters = metrics.counters

    moved = counters.get("moved_files", 0)

    def phase_row(phase: str, label: str, *, moved_files: int) -> dict:
        return {
            "phase": label,
            "reads_ok": counters.get(f"reads_ok_{phase}", 0),
            "reads_failed": counters.get(f"reads_failed_{phase}", 0),
            "links_ok": counters.get(f"links_ok_{phase}", 0),
            "links_blocked": counters.get(f"links_blocked_{phase}", 0),
            "read_availability_pct": round(
                100.0 * workload.availability(metrics, phase, "reads"), 1),
            "link_availability_pct": round(
                100.0 * workload.availability(metrics, phase, "links"), 1),
            "ops_per_sim_s": round(
                workload.phase_throughput(metrics, phase), 1),
            "moved_files": moved_files,
            "committed_links_lost": counters.get("committed_links_lost", 0),
            "move_ms": 0.0,
        }

    during = phase_row("during", "during move (inside the 2PC hand-off)",
                       moved_files=moved)
    during["move_ms"] = round(metrics.stats("rebalance").mean * 1000, 3)
    # No links are even attempted in the failover probe: its link and
    # throughput cells stay non-numeric so the per-experiment numeric
    # summary (BENCH_smoke.json) averages measured phases only.
    failover = {
        "phase": f"after dest failover (moved prefix served by "
                 f"{counters.get('promoted_serving')})",
        "reads_ok": counters.get("reads_ok_failover", 0),
        "reads_failed": counters.get("reads_failed_failover", 0),
        "links_ok": "n/a", "links_blocked": "n/a",
        "read_availability_pct": round(
            100.0 * workload.availability(metrics, "failover", "reads"), 1),
        "link_availability_pct": "n/a",
        "ops_per_sim_s": "n/a",
        "moved_files": moved,
        "committed_links_lost": counters.get("committed_links_lost", 0),
        "move_ms": round(metrics.stats("promotion").mean * 1000, 3),
    }
    rows = [
        phase_row("before", "before move", moved_files=0),
        during,
        phase_row("after", "after move (old URLs, new owner)",
                  moved_files=moved),
        failover,
    ]
    return ExperimentResult(
        experiment_id="E13",
        title="Online prefix rebalancing: availability during a live shard move",
        paper_claim="Beyond the paper: converting static hash placement into "
                    "a versioned, epoched placement map should let a hot URL "
                    "prefix move between shards online -- its linked-file "
                    "rows, archived version chain and file content handed "
                    "off under one two-phase commit, the destination's "
                    "witnesses mirrored in the same step -- with zero "
                    "committed-link loss, nonzero foreground link and read "
                    "throughput during the move, and the moved prefix "
                    "promotable from the destination's witness set "
                    "afterwards.",
        headers=["phase", "reads_ok", "reads_failed", "links_ok",
                 "links_blocked", "read_availability_pct",
                 "link_availability_pct", "ops_per_sim_s", "moved_files",
                 "committed_links_lost", "move_ms"],
        rows=rows,
        notes="The during-phase traffic runs *inside* the hand-off (hooks "
              "on the rebalance failpoints issue reads and links "
              "mid-protocol).  links_blocked counts links aimed at the "
              "moving prefix itself, refused with a retryable "
              "PlacementError until the map swings -- back-pressure, not "
              "unavailability; hot-prefix reads keep being served on the "
              "source from the pre-export dual-serve snapshot, so "
              "during-phase read availability stays at 100% (the move is "
              "read-invisible).  After the commit a verified sweep "
              "deletes the moved prefix's physical bytes on the fenced "
              "source (deferred and redriven at recovery if any node is "
              "down mid-sweep).  committed_links_lost audits every "
              "committed DATALINK row end-to-end after the move; the "
              "final row crashes the destination's serving node and reads "
              "the moved prefix through the promoted witness -- witness "
              "placement followed the prefix.",
    )


# ---------------------------------------------------------------------------
# E14 -- autonomous placement balancing: static hash vs the balancer
# ---------------------------------------------------------------------------

def experiment_e14(shards: int = 4, prefixes: int = 8, rounds: int = 8,
                   links_per_round: int = 8, reads_per_round: int = 24,
                   file_size: int = 512, theta: float = 1.1,
                   move_budget: int = 2) -> ExperimentResult:
    """Zipf-skewed traffic: static hash placement vs the self-driving balancer."""

    from repro.datalinks.balancer import BalancerConfig
    from repro.workloads.hotspot import HotspotConfig, HotspotWorkload

    def run_variant(balancer: BalancerConfig | None):
        config = HotspotConfig(shards=shards, prefixes=prefixes,
                               rounds=rounds,
                               links_per_round=links_per_round,
                               reads_per_round=reads_per_round,
                               file_size=file_size, theta=theta,
                               balancer=balancer)
        workload = HotspotWorkload(config).setup()
        metrics = workload.run()
        return workload, metrics

    balancer_config = BalancerConfig(window_ops_min=8,
                                     move_budget=move_budget,
                                     cooldown_ticks=1,
                                     imbalance_tolerance=1.1,
                                     split_threshold=0.6)
    rows = []
    for variant, balancer in (("static hash", None),
                              ("balanced", balancer_config)):
        workload, metrics = run_variant(balancer)
        counters = metrics.counters
        rows.append({
            "variant": variant,
            "link_ops": workload.deployment.clocks.stats.total_count(),
            "max_shard_load_share": round(workload.max_shard_load_share(), 3),
            "link_p50_ms": round(metrics.stats("link_steady").p50 * 1000, 3),
            "link_p99_ms": round(metrics.stats("link_steady").p99 * 1000, 3),
            "read_p99_ms": round(metrics.stats("read_steady").p99 * 1000, 3),
            "moves": counters.get("balancer_moves_issued", 0),
            "max_moves_per_tick": counters.get("balancer_max_moves_per_tick",
                                               0),
            "move_budget": counters.get("balancer_move_budget", "n/a"),
            "splits": counters.get("balancer_splits", 0),
            "links_blocked": counters.get("links_blocked", 0),
            "committed_links_lost": counters.get("committed_links_lost", 0),
            "placement_epoch": counters.get("placement_epoch", 0),
        })
    return ExperimentResult(
        experiment_id="E14",
        title="Autonomous placement balancing under zipf-skewed traffic",
        paper_claim="Beyond the paper: with placement epoched and moves "
                    "online (E13), a balancer daemon watching the routing "
                    "layer's per-prefix traffic counters should detect a "
                    "zipfian hotspot on its own, move hot prefixes off the "
                    "loaded shard within a per-tick move budget and "
                    "per-prefix cooldown, split a prefix that dominates its "
                    "shard so the subtree can spread, and thereby beat "
                    "static hash placement on both max-shard load share and "
                    "tail latency -- without losing a single committed "
                    "link.",
        headers=["variant", "link_ops", "max_shard_load_share", "link_p50_ms",
                 "link_p99_ms", "read_p99_ms", "moves", "max_moves_per_tick",
                 "move_budget", "splits", "links_blocked",
                 "committed_links_lost", "placement_epoch"],
        rows=rows,
        notes="link_ops is the variant's total charged simulated primitive "
              "operations, summed across every clock domain in the cluster "
              "(host shards, file servers, replicas) -- the honest "
              "denominator for the large tier's million-op capacity claim.  "
              "Both variants replay the identical zipf traffic (same "
              "seeds); each round's uploads and token-validated reads run "
              "as one concurrent burst in a scatter-gather window, so an "
              "operation's latency is its completion on the node that "
              "served it -- queueing behind the zipf head included, which "
              "is what placement skew costs.  max_shard_load_share is the "
              "busiest shard's fraction of steady-state operations "
              "(1/shards is perfect).  The balanced variant's moves are "
              "all issued by the balancer itself from the router's "
              "per-prefix counters (max_moves_per_tick never exceeds "
              "move_budget); splits deepen the map under a dominating "
              "prefix so its subtrees become independently movable.  "
              "links_blocked counts uploads refused mid-move with the "
              "retryable PlacementError; committed_links_lost audits "
              "every committed row end-to-end after all the balancer's "
              "moves and splits.",
    )


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

ALL_EXPERIMENTS = {
    "E1": experiment_e1,
    "E2": experiment_e2,
    "E3": experiment_e3,
    "E4": experiment_e4,
    "E5": experiment_e5,
    "E6": experiment_e6,
    "E7": experiment_e7,
    "E8": experiment_e8,
    "E9": experiment_e9,
    "E10": experiment_e10,
    "E11": experiment_e11,
    "E12": experiment_e12,
    "E13": experiment_e13,
    "E14": experiment_e14,
}

#: Tiny per-experiment overrides for the ``--smoke`` CI mode: every
#: experiment must complete in a fraction of a second, exercising the full
#: code path with minimal repeats/sizes.
SMOKE_PARAMS = {
    "E1": {"repeats": 2},
    "E2": {"repeats": 2},
    "E3": {"sizes": (16 * 1024,), "repeats": 1},
    "E4": {"repeats": 2},
    "E5": {"config": EditorConfig(editors=2, files=1, edits_per_editor=1)},
    "E6": {},
    "E7": {},
    "E8": {},
    "E9": {"pages": 4, "operations": 10, "page_size": 4 * 1024,
           "session_sweep": (2, 4), "admission_limit": 2,
           "client_think_s": 0.05},
    "E10": {"repeats": 2},
    "E11": {"shards": 2, "clients": 2, "transactions_per_client": 1,
            "rows_per_transaction": 4, "file_size": 256,
            "client_sweep": (2, 4), "sweep_admission_limit": 2,
            "sweep_think_s": 0.02},
    "E12": {"shards": 2, "files": 8, "reads_per_phase": 8, "file_size": 256,
            "rows_per_transaction": 4, "follower_read_batch": 8,
            "writes_per_phase": 4,
            "client_sweep": (2, 4), "sweep_admission_limit": 2,
            "sweep_think_s": 0.02},
    "E13": {"shards": 2, "hot_files": 4, "cold_files": 4, "file_size": 256,
            "reads_per_phase": 8, "links_per_phase": 4},
    "E14": {"shards": 3, "prefixes": 6, "rounds": 6, "links_per_round": 6,
            "reads_per_round": 18, "file_size": 256},
}


#: Scaled-up overrides for the ``--scale large`` bench tier.  These runs
#: exist to exercise the vectorized-schedule fast paths at volume -- E14 at
#: roughly 100x the smoke operation count (12 rounds x (120 links + 1080
#: reads) = 14,400 burst operations against smoke's 144), E9 with the
#: operation mix spread over 1,200 concurrent reader sessions plus a
#: 10..10,000-session admission-control sweep (each session on its own
#: client clock domain; the sweep is where the saturation knee lives),
#: E11 with a 10..1,000 concurrent-writer sweep and E12 with a
#: 10..10,000 concurrent routed-reader sweep.  The tier is *not* part of
#: tier-1 CI and writes no artifact by default; the working budget is
#: that E14 completes in well under a minute.
LARGE_PARAMS = {
    "E9": {"pages": 64, "operations": 2400, "page_size": 16 * 1024,
           "clients": 1200, "session_sweep": (10, 100, 1000, 10000),
           "admission_limit": 128, "client_think_s": 2.0},
    "E11": {"shards": 8, "clients": 4, "transactions_per_client": 3,
            "rows_per_transaction": 8, "file_size": 512,
            "client_sweep": (10, 100, 1000),
            "sweep_admission_limit": 64, "sweep_think_s": 0.2},
    "E12": {"shards": 4, "files": 32, "reads_per_phase": 48,
            "file_size": 2048, "rows_per_transaction": 8,
            "follower_read_batch": 24, "writes_per_phase": 8,
            "client_sweep": (10, 100, 1000, 10000),
            "sweep_admission_limit": 256, "sweep_think_s": 0.2},
    "E14": {"shards": 4, "prefixes": 12, "rounds": 12,
            "links_per_round": 120, "reads_per_round": 1080,
            "file_size": 512},
}

#: Per-scale parameter overrides; ``"default"`` runs every experiment with
#: its full (paper-shaped) configuration.
SCALE_PARAMS = {
    "smoke": SMOKE_PARAMS,
    "default": {},
    "large": LARGE_PARAMS,
}


def run_experiment(experiment_id: str, smoke: bool = False,
                   scale: str | None = None) -> ExperimentResult:
    """Run one experiment by id (``"E1"`` .. ``"E14"``).

    ``smoke=True`` substitutes the tiny :data:`SMOKE_PARAMS` configuration --
    the fast sanity mode behind ``python -m repro.bench --smoke``.  ``scale``
    names a tier from :data:`SCALE_PARAMS` explicitly (``"smoke"``,
    ``"default"`` or ``"large"``) and wins over the ``smoke`` flag.
    """

    identifier = experiment_id.upper()
    try:
        factory = ALL_EXPERIMENTS[identifier]
    except KeyError:
        raise KeyError(f"unknown experiment {experiment_id!r}; "
                       f"known: {sorted(ALL_EXPERIMENTS)}") from None
    if scale is None:
        scale = "smoke" if smoke else "default"
    try:
        params = SCALE_PARAMS[scale]
    except KeyError:
        raise KeyError(f"unknown scale {scale!r}; "
                       f"known: {sorted(SCALE_PARAMS)}") from None
    return factory(**params.get(identifier, {}))


# Public aliases used by the pytest-benchmark wrappers in ``benchmarks/``.
build_microsystem = _build_system
measure_simulated = _measure
