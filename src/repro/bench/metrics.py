"""Result containers and plain-text/markdown table formatting."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExperimentResult:
    """The outcome of one reproduced experiment."""

    experiment_id: str
    title: str
    paper_claim: str
    headers: list
    rows: list
    notes: str = ""
    extra: dict = field(default_factory=dict)

    def as_text(self) -> str:
        lines = [
            f"{self.experiment_id}: {self.title}",
            f"paper claim: {self.paper_claim}",
            format_table(self.headers, self.rows),
        ]
        if self.notes:
            lines.append(f"notes: {self.notes}")
        return "\n".join(lines)

    def as_markdown(self) -> str:
        lines = [
            f"### {self.experiment_id} — {self.title}",
            "",
            f"**Paper claim.** {self.paper_claim}",
            "",
            format_table(self.headers, self.rows, markdown=True),
        ]
        if self.notes:
            lines.extend(["", f"**Notes.** {self.notes}"])
        return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(headers: list, rows: list, markdown: bool = False) -> str:
    """Format *rows* (sequences or dicts) under *headers* as an aligned table."""

    normalized = []
    for row in rows:
        if isinstance(row, dict):
            normalized.append([_cell(row.get(header, "")) for header in headers])
        else:
            normalized.append([_cell(value) for value in row])
    header_cells = [str(header) for header in headers]
    widths = [len(cell) for cell in header_cells]
    for row in normalized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render(cells: list[str]) -> str:
        padded = [cell.ljust(widths[index]) for index, cell in enumerate(cells)]
        if markdown:
            return "| " + " | ".join(padded) + " |"
        return "  ".join(padded)

    lines = [render(header_cells)]
    if markdown:
        lines.append("|" + "|".join("-" * (width + 2) for width in widths) + "|")
    else:
        lines.append("  ".join("-" * width for width in widths))
    lines.extend(render(row) for row in normalized)
    return "\n".join(lines)
