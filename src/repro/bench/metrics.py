"""Result containers, table formatting, and JSON serialization.

:meth:`ExperimentResult.to_dict` feeds the ``BENCH_smoke.json`` artifact
that ``python -m repro.bench --smoke`` emits: a per-experiment summary of
the simulated-millisecond columns, so successive changes leave a perf
trajectory that can be diffed across commits.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _jsonable(value):
    """Coerce a cell to a JSON-serializable value (LSNs etc. become str)."""

    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


@dataclass
class ExperimentResult:
    """The outcome of one reproduced experiment."""

    experiment_id: str
    title: str
    paper_claim: str
    headers: list
    rows: list
    notes: str = ""
    extra: dict = field(default_factory=dict)

    def _dict_rows(self) -> list[dict]:
        rows = []
        for row in self.rows:
            if isinstance(row, dict):
                rows.append({str(header): _jsonable(row.get(header))
                             for header in self.headers})
            else:
                rows.append({str(header): _jsonable(value)
                             for header, value in zip(self.headers, row)})
        return rows

    def numeric_summary(self) -> dict:
        """Mean of every numeric column -- the per-experiment perf summary."""

        sums: dict[str, list] = {}
        for row in self._dict_rows():
            for key, value in row.items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    sums.setdefault(key, []).append(float(value))
        return {key: sum(values) / len(values) for key, values in sums.items()}

    def sim_ms_summary(self) -> dict:
        """Mean of the simulated-millisecond columns only (``*_ms`` etc.)."""

        return {key: mean for key, mean in self.numeric_summary().items()
                if key.endswith("_ms") or key.endswith("_pct")
                or "per_sim_s" in key or key.startswith("speedup")}

    def to_dict(self) -> dict:
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": [str(header) for header in self.headers],
            "rows": self._dict_rows(),
            "sim_ms": self.sim_ms_summary(),
            "notes": self.notes,
        }

    def as_text(self) -> str:
        lines = [
            f"{self.experiment_id}: {self.title}",
            f"paper claim: {self.paper_claim}",
            format_table(self.headers, self.rows),
        ]
        if self.notes:
            lines.append(f"notes: {self.notes}")
        return "\n".join(lines)

    def as_markdown(self) -> str:
        lines = [
            f"### {self.experiment_id} — {self.title}",
            "",
            f"**Paper claim.** {self.paper_claim}",
            "",
            format_table(self.headers, self.rows, markdown=True),
        ]
        if self.notes:
            lines.extend(["", f"**Notes.** {self.notes}"])
        return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(headers: list, rows: list, markdown: bool = False) -> str:
    """Format *rows* (sequences or dicts) under *headers* as an aligned table."""

    normalized = []
    for row in rows:
        if isinstance(row, dict):
            normalized.append([_cell(row.get(header, "")) for header in headers])
        else:
            normalized.append([_cell(value) for value in row])
    header_cells = [str(header) for header in headers]
    widths = [len(cell) for cell in header_cells]
    for row in normalized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render(cells: list[str]) -> str:
        padded = [cell.ljust(widths[index]) for index, cell in enumerate(cells)]
        if markdown:
            return "| " + " | ".join(padded) + " |"
        return "  ".join(padded)

    lines = [render(header_cells)]
    if markdown:
        lines.append("|" + "|".join("-" * (width + 2) for width in widths) + "|")
    else:
        lines.append("  ".join("-" * width for width in widths))
    lines.extend(render(row) for row in normalized)
    return "\n".join(lines)
