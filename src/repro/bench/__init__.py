"""Benchmark harness reproducing the paper's evaluation claims (E1..E9).

``python -m repro.bench`` runs every experiment and prints the tables that
EXPERIMENTS.md records; ``benchmarks/`` contains the pytest-benchmark wrappers
that measure the wall-clock cost of the same code paths.
"""

from repro.bench.metrics import ExperimentResult, format_table
from repro.bench.experiments import ALL_EXPERIMENTS, run_experiment

__all__ = ["ExperimentResult", "format_table", "ALL_EXPERIMENTS", "run_experiment"]
