"""Run every experiment and render the results (text, markdown, JSON).

``python -m repro.bench --smoke`` additionally writes a ``BENCH_smoke.json``
artifact -- a per-experiment summary of the simulated-millisecond columns --
so future changes have a perf trajectory to compare against (``--json PATH``
overrides the location; ``--json`` also works for full, non-smoke runs).
The default artifact path is relative to the current working directory; run
the command from the repository root so the checked-in copy there -- the
trajectory's committed baseline -- is the one refreshed, and commit it
whenever a change moves the numbers.

Wall-clock plumbing: each experiment's ``wall_clock_s`` is measured around
its run, and when a previous artifact exists at the output path its values
become the *baseline*: the new artifact carries ``wall_clock_delta_s`` per
experiment plus a top-level ``wall_clock`` summary (new total, baseline
total, delta and speedup), so every smoke run reports its perf trajectory
against the committed numbers.  Keys starting with ``wall_clock`` (and the
``profile`` tables) are the only non-deterministic fields in the artifact;
everything else is simulated and must be byte-identical across runs of the
same code (the tier-1 invariant test enforces this).

``--profile`` wraps every experiment in :mod:`cProfile` and attaches the
top-N cumulative-time rows to the artifact (and prints them), so "what got
slow" is answered by the artifact itself instead of an ad-hoc rerun.
Sweep experiments additionally attribute the deterministic call count
per sweep *step* (``profile_steps`` in the artifact entry, keyed by the
step's row label): the harness installs a pause-read-resume snapshot of
the live profiler as
:data:`repro.bench.experiments.PROFILE_SNAPSHOT`, and the sweep loops
record the delta each step consumed.
"""

from __future__ import annotations

import argparse
import cProfile
import gc
import json
import os
import pstats
import sys
import time

from repro.bench import experiments as experiments_module
from repro.bench.experiments import (ALL_EXPERIMENTS, LARGE_PARAMS,
                                     run_experiment)
from repro.bench.metrics import ExperimentResult

SMOKE_ARTIFACT = "BENCH_smoke.json"
LARGE_ARTIFACT = "BENCH_large.json"
PROFILE_TOP_N = 15


def _profile_summary(profiler: cProfile.Profile,
                     top_n: int = PROFILE_TOP_N) -> dict:
    """Profile digest: deterministic total call count + top-N rows.

    ``total_calls`` is the profiler's total function-call count across the
    experiment -- unlike the timing columns it is a *deterministic* measure
    of how much work the hot paths do (the simulator is single-threaded and
    seeded), so successive artifacts can be diffed call-for-call.
    """

    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    rows = []
    for func in stats.fcn_list[:top_n]:        # (file, line, name), sorted
        cc, ncalls, tottime, cumtime, _callers = stats.stats[func]
        filename, line, name = func
        location = f"{os.path.basename(filename)}:{line}({name})" \
            if line else name
        rows.append({
            "function": location,
            "ncalls": ncalls,
            "tottime_s": round(tottime, 4),
            "cumtime_s": round(cumtime, 4),
        })
    return {"total_calls": stats.total_calls, "rows": rows}


def _snapshot_for(profiler: cProfile.Profile):
    """A call-count snapshot callable for *profiler* (per-step attribution).

    Installed as :data:`repro.bench.experiments.PROFILE_SNAPSHOT` around
    a profiled run: sweep experiments invoke it between steps to charge
    each step its own deterministic slice of the call count.  The
    profiler is paused for the duration of the read so the snapshot's
    own bookkeeping never lands in the profile.
    """

    def snapshot() -> int:
        profiler.disable()
        try:
            return sum(entry.callcount for entry in profiler.getstats())
        finally:
            profiler.enable()

    return snapshot


def _render_profile(identifier: str, summary: dict) -> str:
    rows = summary["rows"]
    lines = [f"profile {identifier} (total calls: {summary['total_calls']}; "
             f"top {len(rows)} by cumulative time):"]
    lines.append(f"  {'ncalls':>8}  {'tottime_s':>9}  {'cumtime_s':>9}  function")
    for row in rows:
        lines.append(f"  {row['ncalls']:>8}  {row['tottime_s']:>9.4f}  "
                     f"{row['cumtime_s']:>9.4f}  {row['function']}")
    return "\n".join(lines)


def _load_baseline(path: str) -> dict:
    """Per-experiment ``wall_clock_s`` from the artifact currently at *path*.

    That file is the committed baseline when the bench runs from the
    repository root; a missing or unreadable file just means no deltas.
    """

    try:
        with open(path, "r", encoding="utf-8") as stream:
            previous = json.load(stream)
        return {name: experiment.get("wall_clock_s")
                for name, experiment in previous.get("experiments", {}).items()}
    except (OSError, ValueError):
        return {}


def write_artifact(results: list[ExperimentResult], wall_clock: dict,
                   path: str, smoke: bool,
                   profiles: dict | None = None,
                   wall_clock_samples: dict | None = None,
                   mode: str | None = None) -> None:
    """Write the JSON perf artifact for *results* to *path*.

    A pre-existing artifact at *path* supplies the wall-clock baseline the
    new numbers are diffed against (``wall_clock_delta_s`` per experiment,
    totals under the top-level ``wall_clock`` key).  ``wall_clock_samples``
    records *every* timing sample of a best-of-N run (the per-experiment
    ``wall_clock_s`` is the winner, but the artifact keeps the full sample
    list so the measurement's spread is auditable, not just its minimum).
    """

    baseline = _load_baseline(path)
    experiments = {}
    for result in results:
        identifier = result.experiment_id
        entry = {
            **result.to_dict(),
            "wall_clock_s": round(wall_clock.get(identifier, 0.0), 3),
        }
        samples = (wall_clock_samples or {}).get(identifier)
        if samples:
            entry["wall_clock_samples_s"] = [round(sample, 3)
                                             for sample in samples]
        previous = baseline.get(identifier)
        if isinstance(previous, (int, float)):
            entry["wall_clock_delta_s"] = round(
                entry["wall_clock_s"] - previous, 3)
        if profiles and identifier in profiles:
            entry["profile"] = profiles[identifier]["rows"]
            entry["profile_calls"] = profiles[identifier]["total_calls"]
            if result.extra.get("profile_steps"):
                entry["profile_steps"] = result.extra["profile_steps"]
        experiments[identifier] = entry
    payload = {
        "mode": mode if mode is not None else ("smoke" if smoke else "full"),
        "experiments": experiments,
    }
    total = sum(wall_clock.get(result.experiment_id, 0.0) for result in results)
    summary = {"total_s": round(total, 3)}
    baseline_totals = [value for value in baseline.values()
                       if isinstance(value, (int, float))]
    if baseline_totals and len(baseline_totals) == len(results):
        baseline_total = sum(baseline_totals)
        summary["baseline_total_s"] = round(baseline_total, 3)
        summary["delta_total_s"] = round(total - baseline_total, 3)
        if total > 0:
            summary["speedup_vs_baseline"] = round(baseline_total / total, 2)
    payload["wall_clock"] = summary
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=2, sort_keys=True, default=str)
        stream.write("\n")


def run_all(experiment_ids: list[str] | None = None, *,
            markdown: bool = False, smoke: bool = False,
            scale: str | None = None, json_path: str | None = None,
            profile: bool = False, best_of: int = 1,
            stream=None) -> list[ExperimentResult]:
    """Run the selected experiments (all by default), printing each table.

    ``smoke=True`` (equivalently ``scale="smoke"``) uses the tiny
    per-experiment configurations -- a fast sanity pass over every
    experiment's full code path -- and, unless ``json_path`` says
    otherwise, writes the :data:`SMOKE_ARTIFACT` perf summary next to the
    current working directory.  ``scale="large"`` runs the scaled-up tier
    (by default only the experiments with large configurations,
    :data:`~repro.bench.experiments.LARGE_PARAMS`).  ``profile=True``
    additionally wraps every experiment in :mod:`cProfile` and attaches
    the deterministic total call count plus the top-N cumulative table to
    its artifact entry.  ``best_of`` re-times each experiment that many
    times: ``wall_clock_s`` is the fastest sample and the artifact records
    the full ``wall_clock_samples_s`` list (simulated results come from
    the first run; reruns are timing-only and discarded).
    """

    stream = stream if stream is not None else sys.stdout
    if scale is None:
        scale = "smoke" if smoke else "default"
    smoke = scale == "smoke"
    if experiment_ids:
        ids = [identifier.upper() for identifier in experiment_ids]
    elif scale == "large":
        ids = sorted(LARGE_PARAMS)
    else:
        ids = sorted(ALL_EXPERIMENTS)
    best_of = max(1, best_of)
    results = []
    wall_clock: dict[str, float] = {}
    wall_samples: dict[str, list] = {}
    profiles: dict[str, dict] = {}
    # The experiments allocate heavily but retain almost nothing between
    # rounds; collector pauses inside the measured window are pure noise,
    # so the cyclic GC is parked for the duration of the run.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for identifier in ids:
            profiler = cProfile.Profile() if profile else None
            if profiler is not None and best_of > 1:
                # Timing and profiling want different passes: the
                # instrumented pass is not a timing sample, and the
                # profile should count *steady-state* calls (cold
                # first-run cache fills depend on what ran earlier in
                # the process).  So all best-of samples come from clean
                # passes first, and the profiled pass runs last, warm.
                samples = []
                for _ in range(best_of):
                    started = time.time()
                    run_experiment(identifier, scale=scale)
                    samples.append(time.time() - started)
                experiments_module.PROFILE_SNAPSHOT = _snapshot_for(profiler)
                try:
                    profiler.enable()
                    result = run_experiment(identifier, scale=scale)
                    profiler.disable()
                finally:
                    experiments_module.PROFILE_SNAPSHOT = None
            else:
                started = time.time()
                if profiler is not None:
                    experiments_module.PROFILE_SNAPSHOT = \
                        _snapshot_for(profiler)
                try:
                    if profiler is not None:
                        profiler.enable()
                    result = run_experiment(identifier, scale=scale)
                    if profiler is not None:
                        profiler.disable()
                finally:
                    experiments_module.PROFILE_SNAPSHOT = None
                samples = [time.time() - started]
                for _ in range(best_of - 1):
                    started = time.time()
                    run_experiment(identifier, scale=scale)
                    samples.append(time.time() - started)
            elapsed = min(samples)
            wall_clock[identifier] = elapsed
            wall_samples[identifier] = samples
            results.append(result)
            rendered = result.as_markdown() if markdown else result.as_text()
            print(rendered, file=stream)
            if best_of > 1:
                rendered_samples = ", ".join(f"{value:.3f}" for value in samples)
                print(f"(wall clock: {elapsed:.1f} s, best of {best_of}: "
                      f"[{rendered_samples}])", file=stream)
            else:
                print(f"(wall clock: {elapsed:.1f} s)", file=stream)
            if profiler is not None:
                profiles[identifier] = _profile_summary(profiler)
                print(_render_profile(identifier, profiles[identifier]),
                      file=stream)
            print("", file=stream)
    finally:
        if gc_was_enabled:
            gc.enable()
    if json_path is None and smoke:
        json_path = SMOKE_ARTIFACT
    elif json_path is None and scale == "large":
        json_path = LARGE_ARTIFACT
    if json_path:
        write_artifact(results, wall_clock, json_path, smoke,
                       profiles=profiles or None,
                       wall_clock_samples=wall_samples,
                       mode=scale if scale != "default" else "full")
        print(f"wrote {json_path}", file=stream)
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the paper's evaluation claims (experiments "
                    "E1..E10) plus the scale-out study (E11), the "
                    "replica-failover study (E12), the online-"
                    "rebalancing study (E13) and the autonomous-"
                    "balancer study (E14).")
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids to run (default: all)")
    parser.add_argument("--markdown", action="store_true",
                        help="emit markdown tables (for EXPERIMENTS.md)")
    parser.add_argument("--smoke", action="store_true",
                        help="run every experiment with a tiny configuration "
                             "(fast CI sanity mode); writes BENCH_smoke.json "
                             "(shorthand for --scale smoke)")
    parser.add_argument("--scale", choices=("smoke", "default", "large"),
                        default=None,
                        help="configuration tier: smoke (tiny CI configs), "
                             "default (full paper-shaped configs) or large "
                             "(scaled-up stress tier -- E14 at ~100x the "
                             "smoke operation count, E9 with thousands of "
                             "client sessions; not part of tier-1 CI)")
    parser.add_argument("--profile", action="store_true",
                        help="wrap each experiment in cProfile and attach the "
                             "deterministic total call count plus the "
                             f"top-{PROFILE_TOP_N} cumulative-time table to "
                             "the artifact (and print it)")
    parser.add_argument("--best-of", type=int, default=1, metavar="N",
                        help="time each experiment N times, report the "
                             "fastest run and record every sample in the "
                             "artifact (simulated results are identical "
                             "across reruns; default: 1)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write a JSON perf summary to PATH (default: "
                             f"{SMOKE_ARTIFACT} in smoke mode, off otherwise)")
    args = parser.parse_args(argv)
    scale = args.scale if args.scale is not None else \
        ("smoke" if args.smoke else "default")
    run_all(args.experiments or None, markdown=args.markdown, scale=scale,
            json_path=args.json, profile=args.profile, best_of=args.best_of)
    return 0
