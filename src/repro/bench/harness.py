"""Run every experiment and render the results (text, markdown, JSON).

``python -m repro.bench --smoke`` additionally writes a ``BENCH_smoke.json``
artifact -- a per-experiment summary of the simulated-millisecond columns --
so future changes have a perf trajectory to compare against (``--json PATH``
overrides the location; ``--json`` also works for full, non-smoke runs).
The default artifact path is relative to the current working directory; run
the command from the repository root so the checked-in copy there -- the
trajectory's committed baseline -- is the one refreshed, and commit it
whenever a change moves the numbers.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.bench.experiments import ALL_EXPERIMENTS, run_experiment
from repro.bench.metrics import ExperimentResult

SMOKE_ARTIFACT = "BENCH_smoke.json"


def write_artifact(results: list[ExperimentResult], wall_clock: dict,
                   path: str, smoke: bool) -> None:
    """Write the JSON perf artifact for *results* to *path*."""

    payload = {
        "mode": "smoke" if smoke else "full",
        "experiments": {
            result.experiment_id: {
                **result.to_dict(),
                "wall_clock_s": round(wall_clock.get(result.experiment_id, 0.0), 3),
            }
            for result in results
        },
    }
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=2, sort_keys=True, default=str)
        stream.write("\n")


def run_all(experiment_ids: list[str] | None = None, *,
            markdown: bool = False, smoke: bool = False,
            json_path: str | None = None,
            stream=None) -> list[ExperimentResult]:
    """Run the selected experiments (all by default), printing each table.

    ``smoke=True`` uses the tiny per-experiment configurations -- a fast
    sanity pass over every experiment's full code path -- and, unless
    ``json_path`` says otherwise, writes the :data:`SMOKE_ARTIFACT` perf
    summary next to the current working directory.
    """

    stream = stream if stream is not None else sys.stdout
    ids = [identifier.upper() for identifier in (experiment_ids or sorted(ALL_EXPERIMENTS))]
    results = []
    wall_clock: dict[str, float] = {}
    for identifier in ids:
        started = time.time()
        result = run_experiment(identifier, smoke=smoke)
        elapsed = time.time() - started
        wall_clock[identifier] = elapsed
        results.append(result)
        rendered = result.as_markdown() if markdown else result.as_text()
        print(rendered, file=stream)
        print(f"(wall clock: {elapsed:.1f} s)", file=stream)
        print("", file=stream)
    if json_path is None and smoke:
        json_path = SMOKE_ARTIFACT
    if json_path:
        write_artifact(results, wall_clock, json_path, smoke)
        print(f"wrote {json_path}", file=stream)
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the paper's evaluation claims (experiments "
                    "E1..E10) plus the scale-out study (E11), the "
                    "replica-failover study (E12) and the online-"
                    "rebalancing study (E13).")
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids to run (default: all)")
    parser.add_argument("--markdown", action="store_true",
                        help="emit markdown tables (for EXPERIMENTS.md)")
    parser.add_argument("--smoke", action="store_true",
                        help="run every experiment with a tiny configuration "
                             "(fast CI sanity mode); writes BENCH_smoke.json")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write a JSON perf summary to PATH (default: "
                             f"{SMOKE_ARTIFACT} in smoke mode, off otherwise)")
    args = parser.parse_args(argv)
    run_all(args.experiments or None, markdown=args.markdown, smoke=args.smoke,
            json_path=args.json)
    return 0
