"""Run every experiment and render the results (text or markdown)."""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.experiments import ALL_EXPERIMENTS, run_experiment
from repro.bench.metrics import ExperimentResult


def run_all(experiment_ids: list[str] | None = None, *,
            markdown: bool = False, smoke: bool = False,
            stream=None) -> list[ExperimentResult]:
    """Run the selected experiments (all by default), printing each table.

    ``smoke=True`` uses the tiny per-experiment configurations -- a fast
    sanity pass over every experiment's full code path.
    """

    stream = stream if stream is not None else sys.stdout
    ids = [identifier.upper() for identifier in (experiment_ids or sorted(ALL_EXPERIMENTS))]
    results = []
    for identifier in ids:
        started = time.time()
        result = run_experiment(identifier, smoke=smoke)
        elapsed = time.time() - started
        results.append(result)
        rendered = result.as_markdown() if markdown else result.as_text()
        print(rendered, file=stream)
        print(f"(wall clock: {elapsed:.1f} s)", file=stream)
        print("", file=stream)
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the paper's evaluation claims (experiments "
                    "E1..E10) plus the scale-out study (E11) and the "
                    "replica-failover study (E12).")
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids to run (default: all)")
    parser.add_argument("--markdown", action="store_true",
                        help="emit markdown tables (for EXPERIMENTS.md)")
    parser.add_argument("--smoke", action="store_true",
                        help="run every experiment with a tiny configuration "
                             "(fast CI sanity mode)")
    args = parser.parse_args(argv)
    run_all(args.experiments or None, markdown=args.markdown, smoke=args.smoke)
    return 0
