"""Request/response message types for the simulated IPC.

Both types are plain ``__slots__`` classes rather than dataclasses: a
:class:`Message`/:class:`Reply` pair is allocated for every simulated IPC
exchange, and slotted instances skip the per-object ``__dict__`` that
dominated the envelope path's allocation cost.
"""

from __future__ import annotations


class Message:
    """A request sent to a daemon.

    ``placement_epoch`` is the sender's view of the cluster placement map
    (see :mod:`repro.datalinks.placement`): channels whose traffic depends
    on prefix ownership stamp it, and the receiving daemon's epoch gate
    rejects envelopes carrying a stale epoch with a
    :class:`~repro.errors.PlacementEpochError` redirect instead of acting
    on a request routed by an outdated map.  ``None`` means the sender is
    placement-agnostic (upcalls, WAL shipping) and no check applies.
    """

    __slots__ = ("kind", "payload", "sender", "placement_epoch")

    def __init__(self, kind: str, payload: dict | None = None,
                 sender: str = "", placement_epoch: int | None = None):
        self.kind = kind
        self.payload = payload if payload is not None else {}
        self.sender = sender
        self.placement_epoch = placement_epoch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Message(kind={self.kind!r}, payload={self.payload!r}, "
                f"sender={self.sender!r}, "
                f"placement_epoch={self.placement_epoch!r})")


class Reply:
    """A daemon's response to a :class:`Message`."""

    __slots__ = ("ok", "payload", "error")

    def __init__(self, ok: bool, payload: dict | None = None,
                 error: Exception | None = None):
        self.ok = ok
        self.payload = payload if payload is not None else {}
        self.error = error

    @classmethod
    def success(cls, **payload) -> "Reply":
        return cls(True, payload)

    @classmethod
    def failure(cls, error: Exception) -> "Reply":
        return cls(False, None, error)

    def unwrap(self) -> dict:
        """Return the payload, re-raising the carried error when not ok."""

        if not self.ok:
            assert self.error is not None
            raise self.error
        return self.payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Reply(ok={self.ok!r}, payload={self.payload!r}, "
                f"error={self.error!r})")
