"""Request/response message types for the simulated IPC."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Message:
    """A request sent to a daemon.

    ``placement_epoch`` is the sender's view of the cluster placement map
    (see :mod:`repro.datalinks.placement`): channels whose traffic depends
    on prefix ownership stamp it, and the receiving daemon's epoch gate
    rejects envelopes carrying a stale epoch with a
    :class:`~repro.errors.PlacementEpochError` redirect instead of acting
    on a request routed by an outdated map.  ``None`` means the sender is
    placement-agnostic (upcalls, WAL shipping) and no check applies.
    """

    kind: str
    payload: dict = field(default_factory=dict)
    sender: str = ""
    placement_epoch: int | None = None


@dataclass
class Reply:
    """A daemon's response to a :class:`Message`."""

    ok: bool
    payload: dict = field(default_factory=dict)
    error: Exception | None = None

    @classmethod
    def success(cls, **payload) -> "Reply":
        return cls(ok=True, payload=payload)

    @classmethod
    def failure(cls, error: Exception) -> "Reply":
        return cls(ok=False, error=error)

    def unwrap(self) -> dict:
        """Return the payload, re-raising the carried error when not ok."""

        if not self.ok:
            assert self.error is not None
            raise self.error
        return self.payload
