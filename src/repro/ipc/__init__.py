"""Simulated inter-process communication between DLFS, DLFM and the DBMS.

In the real system DLFS lives in the kernel and reaches the DLFM's upcall
daemon through an IPC "upcall", while the DataLinks engine inside the DBMS
talks to a per-connection child agent spawned by the DLFM main daemon.  Here
daemons are plain objects and messages are method calls, but every message
still crosses a :class:`~repro.ipc.channel.Channel` that charges the
calibrated IPC latency, so message *counts* and their cost remain visible in
the benchmarks (e.g. "one extra upcall per read open under full control").
"""

from repro.ipc.message import Message, Reply
from repro.ipc.channel import Channel
from repro.ipc.daemon import Daemon

__all__ = ["Message", "Reply", "Channel", "Daemon"]
