"""Channels: the cost-charging path between two simulated processes."""

from __future__ import annotations

from repro.errors import DaemonUnavailableError
from repro.ipc.message import Message, Reply
from repro.simclock import SimClock


class Channel:
    """A synchronous request/reply channel to one daemon.

    ``latency_primitive`` names the :class:`~repro.simclock.CostModel` entry
    charged per round trip (``upcall_round_trip`` for DLFS-to-DLFM upcalls,
    ``db_dlfm_message`` for DBMS-agent-to-child-agent traffic).
    """

    def __init__(self, daemon, clock: SimClock | None,
                 latency_primitive: str = "upcall_round_trip", sender: str = ""):
        self._daemon = daemon
        self._clock = clock
        self._latency_primitive = latency_primitive
        self._sender = sender

    def request(self, kind: str, **payload) -> dict:
        """Send a request and return the reply payload (raising its error)."""

        if self._clock is not None:
            self._clock.charge(self._latency_primitive)
        if not self._daemon.running:
            raise DaemonUnavailableError(
                f"daemon {self._daemon.name!r} is not running")
        message = Message(kind=kind, payload=payload, sender=self._sender)
        reply = self._daemon.handle(message)
        return reply.unwrap()

    @property
    def daemon_name(self) -> str:
        return self._daemon.name
