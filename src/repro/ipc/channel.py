"""Channels: the cost-charging path between two simulated processes.

A channel connects a caller's clock domain to a daemon's clock domain and is
where simulated time synchronizes (see :mod:`repro.simclock`):

* :meth:`Channel.request` is a synchronous round trip -- the callee's clock
  max-merges up to the message's send time, the wire latency and the
  handler's work accrue on the callee's timeline, and the caller's clock
  max-merges up to the reply.  Inside an overlap window on the caller
  (:meth:`repro.simclock.SimClock.overlap`) requests to several daemons all
  depart at the window's start and the caller gathers the max reply time,
  which is how a two-phase-commit fan-out overlaps across shards.
* :meth:`Channel.post` is a pipelined send -- the caller pays only the
  ``message_send`` cost and does *not* wait; the callee still syncs to the
  send time and does the work on its own timeline.  Link batches and WAL
  shipping use this, so shard work and replication overlap the sender.

When caller and callee share one clock (an upcall within a file server, or
a serial-clock deployment) both methods degrade to the classic serial
behavior: one latency charge plus the handler's work on the shared timeline.
"""

from __future__ import annotations

from repro.errors import DaemonUnavailableError, ReproError
from repro.ipc.message import Message, Reply
from repro.simclock import SimClock

#: When True (the default) exchanges take the coalesced fast path: the
#: daemon's :meth:`~repro.ipc.daemon.Daemon.dispatch` is called directly
#: and no Message/Reply envelope is allocated.  Setting this to False
#: forces the reference envelope path.  Both paths charge the exact same
#: costs in the exact same order -- ``tests/test_clock_domains.py``
#: asserts byte-identical timestamps and statistics across seeded random
#: interleavings of the two.
COALESCED = True


class Channel:
    """A request/reply channel to one daemon.

    ``latency_primitive`` names the :class:`~repro.simclock.CostModel` entry
    charged per round trip (``upcall_round_trip`` for DLFS-to-DLFM upcalls,
    ``db_dlfm_message`` for DBMS-agent-to-child-agent traffic).

    ``epoch_provider`` (optional) threads the sender's placement epoch
    through every message envelope: the callable is sampled at send time
    and stamped into :attr:`Message.placement_epoch`, so the receiving
    daemon's epoch gate can refuse requests routed by a stale placement
    map (see :mod:`repro.datalinks.placement`).
    """

    __slots__ = ("_daemon", "_clock", "_latency_primitive", "_sender",
                 "_epoch_provider", "_dispatch", "_callee_clock", "_cross",
                 "_amt_caller_lat", "_amt_callee_lat", "_amt_caller_send")

    def __init__(self, daemon, clock: SimClock | None,
                 latency_primitive: str = "upcall_round_trip", sender: str = "",
                 epoch_provider=None):
        self._daemon = daemon
        self._clock = clock
        self._latency_primitive = latency_primitive
        self._sender = sender
        self._epoch_provider = epoch_provider
        # Resolved once: the envelope-free dispatch entry point (None for
        # duck-typed daemons that only implement ``handle``), the callee's
        # clock, and whether this channel crosses clock domains.  Every
        # component assigns its clock in ``__init__`` and never rebinds it,
        # so sampling at channel construction is safe.
        self._dispatch = getattr(daemon, "dispatch", None)
        self._callee_clock = getattr(daemon, "clock", None)
        self._cross = (clock is not None and self._callee_clock is not None
                       and clock is not self._callee_clock)
        # Fixed per-message charge amounts, resolved once per channel (the
        # clocks never rebind, see above): the exchange hot path writes
        # the latency/message_send charges out inline against these.
        def _unit(target, primitive):
            if target is None:
                return 0.0
            try:
                return target._units[primitive]
            except KeyError:
                return getattr(target.costs, primitive)
        self._amt_caller_lat = _unit(clock, latency_primitive)
        self._amt_callee_lat = _unit(self._callee_clock, latency_primitive)
        self._amt_caller_send = _unit(clock, "message_send")

    def request(self, kind: str, **payload) -> dict:
        """Synchronous round trip: send, wait for the reply, merge clocks."""

        return self._exchange(kind, payload, wait=True)

    def post(self, kind: str, **payload) -> dict:
        """Pipelined send: the caller does not wait for the callee.

        The handler still runs (and its errors still raise -- the simulation
        executes synchronously), but only the callee's timeline bears the
        wire latency and the work; the caller pays the ``message_send``
        enqueue cost and keeps going.  Use for traffic whose completion is
        acknowledged at a later barrier (link batches before prepare, WAL
        shipping before promotion).  A handler *error* is not free, though:
        surfacing it at statement time means the caller waited for it, so
        the caller's clock merges up to the callee's completion exactly
        like a synchronous round trip.
        """

        return self._exchange(kind, payload, wait=False)

    def _exchange(self, kind: str, payload: dict, wait: bool) -> dict:
        caller = self._clock
        callee = self._callee_clock
        cross = self._cross
        if not self._daemon.running:
            # The attempt itself takes time on the caller's side (a dead
            # node's clock must not advance): a synchronous request waits a
            # full round trip for the failure, a pipelined send only pays
            # the enqueue cost.
            if caller is not None:
                caller.charge(self._latency_primitive if wait or not cross
                              else "message_send")
            raise DaemonUnavailableError(
                f"daemon {self._daemon.name!r} is not running")
        if cross:
            # sync_to(send_time()) with both sides inlined: this pair runs
            # once per message and the attribute reads replace two method
            # frames (semantics identical, see SimClock.sync_to/send_time).
            frames = caller._overlap_frames
            sent = frames[-1][0] if frames else caller._now
            if sent > callee._now:
                callee._now = sent
            # The latency/message_send charges are written out inline too
            # (amounts precomputed at channel construction): one exchange
            # is two to three fixed charges, each a frame saved.
            amount = self._amt_callee_lat
            callee._now += amount
            key = self._latency_primitive
            cells = callee.stats._cells
            try:
                cell = cells[key]
                cell[0] += 1
                cell[1] += amount
            except KeyError:
                cells[key] = [1, amount]
            mirror = callee._mirror_stats
            if mirror is not None:
                mcells = mirror._cells
                try:
                    cell = mcells[key]
                    cell[0] += 1
                    cell[1] += amount
                except KeyError:
                    mcells[key] = [1, amount]
            if not wait:
                amount = self._amt_caller_send
                caller._now += amount
                cells = caller.stats._cells
                try:
                    cell = cells["message_send"]
                    cell[0] += 1
                    cell[1] += amount
                except KeyError:
                    cells["message_send"] = [1, amount]
                mirror = caller._mirror_stats
                if mirror is not None:
                    mcells = mirror._cells
                    try:
                        cell = mcells["message_send"]
                        cell[0] += 1
                        cell[1] += amount
                    except KeyError:
                        mcells["message_send"] = [1, amount]
        elif caller is not None:
            amount = self._amt_caller_lat
            caller._now += amount
            key = self._latency_primitive
            cells = caller.stats._cells
            try:
                cell = cells[key]
                cell[0] += 1
                cell[1] += amount
            except KeyError:
                cells[key] = [1, amount]
            mirror = caller._mirror_stats
            if mirror is not None:
                mcells = mirror._cells
                try:
                    cell = mcells[key]
                    cell[0] += 1
                    cell[1] += amount
                except KeyError:
                    mcells[key] = [1, amount]
        epoch_provider = self._epoch_provider
        epoch = epoch_provider() if epoch_provider is not None else None
        dispatch = self._dispatch
        if dispatch is not None and COALESCED:
            try:
                result = dispatch(kind, payload, epoch)
            except ReproError:
                # A pipelined send whose handler failed surfaces the error
                # at statement time, which in real life means the caller
                # waited for the failure to come back: charge the
                # round-trip sync instead of handing the error over for
                # free.
                if cross:
                    caller.receive(callee._now)
                raise
            if cross and wait:
                # caller.receive(callee.now()), inlined like the send side.
                done = callee._now
                frames = caller._overlap_frames
                if frames:
                    frame = frames[-1]
                    if done > frame[1]:
                        frame[1] = done
                elif done > caller._now:
                    caller._now = done
            return result
        reply = self._daemon.handle(Message(kind, payload, self._sender, epoch))
        if cross and (wait or not reply.ok):
            # See above: a failed pipelined send costs the caller a full
            # round trip, exactly like a synchronous request.
            caller.receive(callee._now)
        return reply.unwrap()

    def post_group(self, kind: str, payloads) -> list[dict]:
        """Pipelined batch: post every payload dict in *payloads*, in order.

        Semantically identical to calling :meth:`post` once per payload --
        same per-message charges in the same order, same liveness and error
        behavior -- but the channel bookkeeping (clock-topology resolution,
        handler lookup, envelope allocation) is hoisted out of the loop, so
        a batch of N messages to one destination costs O(1) bookkeeping.
        Link batches and WAL shipping send through this.
        """

        caller = self._clock
        daemon = self._daemon
        callee = self._callee_clock
        cross = self._cross
        latency = self._latency_primitive
        epoch_provider = self._epoch_provider
        dispatch = self._dispatch if COALESCED else None
        results = []
        for payload in payloads:
            # Liveness is re-checked per message (a handler may stop its
            # own daemon mid-batch), but that is an attribute test, not a
            # per-message channel setup.
            if not daemon.running:
                if caller is not None:
                    caller.charge(latency if not cross else "message_send")
                raise DaemonUnavailableError(
                    f"daemon {daemon.name!r} is not running")
            if cross:
                frames = caller._overlap_frames
                sent = frames[-1][0] if frames else caller._now
                if sent > callee._now:
                    callee._now = sent
                amount = self._amt_callee_lat
                callee._now += amount
                cells = callee.stats._cells
                try:
                    cell = cells[latency]
                    cell[0] += 1
                    cell[1] += amount
                except KeyError:
                    cells[latency] = [1, amount]
                mirror = callee._mirror_stats
                if mirror is not None:
                    mcells = mirror._cells
                    try:
                        cell = mcells[latency]
                        cell[0] += 1
                        cell[1] += amount
                    except KeyError:
                        mcells[latency] = [1, amount]
                amount = self._amt_caller_send
                caller._now += amount
                cells = caller.stats._cells
                try:
                    cell = cells["message_send"]
                    cell[0] += 1
                    cell[1] += amount
                except KeyError:
                    cells["message_send"] = [1, amount]
                mirror = caller._mirror_stats
                if mirror is not None:
                    mcells = mirror._cells
                    try:
                        cell = mcells["message_send"]
                        cell[0] += 1
                        cell[1] += amount
                    except KeyError:
                        mcells["message_send"] = [1, amount]
            elif caller is not None:
                amount = self._amt_caller_lat
                caller._now += amount
                cells = caller.stats._cells
                try:
                    cell = cells[latency]
                    cell[0] += 1
                    cell[1] += amount
                except KeyError:
                    cells[latency] = [1, amount]
                mirror = caller._mirror_stats
                if mirror is not None:
                    mcells = mirror._cells
                    try:
                        cell = mcells[latency]
                        cell[0] += 1
                        cell[1] += amount
                    except KeyError:
                        mcells[latency] = [1, amount]
            epoch = epoch_provider() if epoch_provider is not None else None
            if dispatch is not None:
                try:
                    results.append(dispatch(kind, payload, epoch))
                except ReproError:
                    if cross:
                        caller.receive(callee._now)
                    raise
            else:
                reply = daemon.handle(
                    Message(kind, payload, self._sender, epoch))
                if cross and not reply.ok:
                    caller.receive(callee._now)
                results.append(reply.unwrap())
        return results

    @property
    def daemon_name(self) -> str:
        return self._daemon.name
