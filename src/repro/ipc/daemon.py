"""Daemon framework: request demultiplexing with start/stop semantics."""

from __future__ import annotations

from repro.errors import ProtocolError, ReproError
from repro.ipc.message import Message, Reply
from repro.simclock import SimClock


class Daemon:
    """A simulated daemon process.

    Subclasses register handlers with :meth:`register` (or by defining
    ``handle_<kind>`` methods).  A stopped daemon refuses requests, which is
    how DLFM crashes are simulated.
    """

    def __init__(self, name: str, clock: SimClock | None = None):
        self.name = name
        self.clock = clock
        self.running = True
        self._handlers: dict[str, callable] = {}
        self.requests_served = 0
        # Primed per-dispatch charge amount (see dispatch).
        self._primed_clock = None
        self._amt_dispatch = 0.0
        #: Optional placement-epoch validator: a callable taking the
        #: envelope's ``placement_epoch`` and raising
        #: :class:`~repro.errors.PlacementEpochError` when it is stale.
        #: DLFM-facing daemons wire this to their manager so a request
        #: routed by an outdated placement map is redirected, never applied.
        self.epoch_gate = None

    def register(self, kind: str, handler) -> None:
        self._handlers[kind] = handler

    def start(self) -> None:
        self.running = True

    def stop(self) -> None:
        self.running = False

    def handle(self, message: Message) -> Reply:
        """Dispatch *message* to its handler, wrapping errors in the reply."""

        try:
            payload = self.dispatch(message.kind, message.payload,
                                    message.placement_epoch)
        except ReproError as error:
            return Reply.failure(error)
        return Reply(True, payload)

    def dispatch(self, kind: str, payload: dict,
                 placement_epoch: int | None = None) -> dict:
        """Envelope-free twin of :meth:`handle`.

        Same charge, gate, bookkeeping and handler semantics, but takes the
        request fields directly and *raises* :class:`ReproError` failures
        instead of wrapping them in a :class:`Reply`.  Channels use this on
        their fast path so an exchange allocates no Message/Reply pair.
        Returns a fresh payload dict (never the handler's own).
        """

        clock = self.clock
        if clock is not None:
            # ``clock.charge("daemon_dispatch")`` written out inline: this
            # runs once per upcall/replication message, and the fixed
            # amount is cached on first use per clock.
            if self._primed_clock is not clock:
                try:
                    self._amt_dispatch = clock._units["daemon_dispatch"]
                except KeyError:
                    self._amt_dispatch = clock.costs.daemon_dispatch
                self._primed_clock = clock
            amount = self._amt_dispatch
            clock._now += amount
            cells = clock.stats._cells
            try:
                cell = cells["daemon_dispatch"]
                cell[0] += 1
                cell[1] += amount
            except KeyError:
                cells["daemon_dispatch"] = [1, amount]
            mirror = clock._mirror_stats
            if mirror is not None:
                mcells = mirror._cells
                try:
                    cell = mcells["daemon_dispatch"]
                    cell[0] += 1
                    cell[1] += amount
                except KeyError:
                    mcells["daemon_dispatch"] = [1, amount]
        if self.epoch_gate is not None and placement_epoch is not None:
            self.epoch_gate(placement_epoch)
        try:
            handler = self._handlers[kind]
        except KeyError:
            handler = getattr(self, f"handle_{kind}", None)
            if handler is None:
                raise ProtocolError(
                    f"daemon {self.name!r} does not understand {kind!r}") from None
            # Cache the method-style handler so repeated dispatches of the
            # same kind skip the f-string + getattr probe.
            self._handlers[kind] = handler
        self.requests_served += 1
        result = handler(**payload)
        return dict(result) if result else {}
