"""Small shared utilities: id generation, LSNs and DataLinks URL handling."""

from repro.util.ids import IdGenerator, next_global_id
from repro.util.lsn import LSN
from repro.util.urls import DatalinkURL, format_url, parse_url

__all__ = [
    "IdGenerator",
    "next_global_id",
    "LSN",
    "DatalinkURL",
    "format_url",
    "parse_url",
]
