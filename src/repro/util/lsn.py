"""Log sequence numbers.

The paper keys every archived file version to a *database state identifier*
("for example tail LSN", Section 4.4) so that a point-in-time restore of the
database can bring the external files back to the matching versions.  We use
a total-ordered integer LSN for both the write-ahead log of the storage
engine and those state identifiers.
"""

from __future__ import annotations


class LSN:
    """A totally ordered log sequence number.

    All six comparison operators are written out explicitly: LSN
    comparisons sit on the WAL-shipping hot path, and the wrappers
    ``functools.total_ordering`` synthesizes cost an extra call (plus a
    ``NotImplemented`` dance) per comparison.
    """

    __slots__ = ("value",)

    def __init__(self, value: int = 0):
        self.value = int(value)

    def next(self) -> "LSN":
        """The LSN immediately following this one."""

        return LSN(self.value + 1)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LSN):
            return self.value == other.value
        if isinstance(other, int):
            return self.value == other
        return NotImplemented

    def __lt__(self, other: object) -> bool:
        if isinstance(other, LSN):
            return self.value < other.value
        if isinstance(other, int):
            return self.value < other
        return NotImplemented

    def __le__(self, other: object) -> bool:
        if isinstance(other, LSN):
            return self.value <= other.value
        if isinstance(other, int):
            return self.value <= other
        return NotImplemented

    def __gt__(self, other: object) -> bool:
        if isinstance(other, LSN):
            return self.value > other.value
        if isinstance(other, int):
            return self.value > other
        return NotImplemented

    def __ge__(self, other: object) -> bool:
        if isinstance(other, LSN):
            return self.value >= other.value
        if isinstance(other, int):
            return self.value >= other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.value)

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"LSN({self.value})"


NULL_LSN = LSN(0)
