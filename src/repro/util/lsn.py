"""Log sequence numbers.

The paper keys every archived file version to a *database state identifier*
("for example tail LSN", Section 4.4) so that a point-in-time restore of the
database can bring the external files back to the matching versions.  We use
a total-ordered integer LSN for both the write-ahead log of the storage
engine and those state identifiers.
"""

from __future__ import annotations


class LSN(int):
    """A totally ordered log sequence number.

    An ``int`` subclass: comparisons, hashing and arithmetic sit on the
    WAL-shipping hot path and the C integer implementations are free,
    whereas Python-level comparison methods cost a frame per compare.
    ``value`` is kept as a read-only view for callers that still spell
    ``lsn.value``.
    """

    __slots__ = ()

    # ``int`` as a C-level fget: reading ``lsn.value`` returns the plain
    # integer without entering a Python frame.
    value = property(int)

    def next(self) -> "LSN":
        """The LSN immediately following this one."""

        return LSN(self + 1)

    def __repr__(self) -> str:
        return f"LSN({int(self)})"


NULL_LSN = LSN(0)
