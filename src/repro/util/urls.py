"""DATALINK URL parsing and formatting.

A DATALINK value "contains a pointer to the external file in the format of a
URL: protocol://server-name/pathname/filename" (Section 2.1).  Access tokens
handed out by the host database are embedded in the file name so that
applications keep using the ordinary file-system API; DLFS strips and
validates the token during ``fs_lookup``.

Parsing and formatting are memoized: the engine re-parses the same URL text
on every operation (token minting, routing, open, update, unlink all start
from the URL), and :class:`DatalinkURL` is frozen, so cached instances are
safely shared between call sites.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

TOKEN_SEPARATOR = ";token="
DEFAULT_SCHEME = "dlfs"


@dataclass(frozen=True, slots=True)
class DatalinkURL:
    """A parsed DATALINK reference.

    ``path`` is always absolute (leading ``/``) and never carries a token;
    the token, if any, is held separately in ``token``.
    """

    scheme: str
    server: str
    path: str
    token: str | None = None

    def with_token(self, token: str | None) -> "DatalinkURL":
        """Return a copy of this URL carrying *token* (or none)."""

        return DatalinkURL(self.scheme, self.server, self.path, token)

    @property
    def filename(self) -> str:
        """The final path component."""

        return self.path.rsplit("/", 1)[-1]

    @property
    def directory(self) -> str:
        """The directory part of the path (always at least ``/``)."""

        head = self.path.rsplit("/", 1)[0]
        return head if head else "/"

    def render(self) -> str:
        """Format back into URL text, embedding the token if present."""

        path = self.path
        if self.token:
            path = f"{path}{TOKEN_SEPARATOR}{self.token}"
        return f"{self.scheme}://{self.server}{path}"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


@functools.lru_cache(maxsize=8192)
def parse_url(text: str) -> DatalinkURL:
    """Parse ``scheme://server/path[;token=...]`` into a :class:`DatalinkURL`.

    The token marker is only recognized in the *final* path segment, at its
    *last* occurrence: a directory component that legitimately contains the
    ``;token=`` substring (e.g. ``/a;token=x/b``) is part of the path, not a
    token, and must round-trip through :func:`format_url` untouched.
    """

    if "://" not in text:
        raise ValueError(f"not a DATALINK URL: {text!r}")
    scheme, rest = text.split("://", 1)
    if "/" not in rest:
        raise ValueError(f"DATALINK URL is missing a path: {text!r}")
    server, path = rest.split("/", 1)
    path = "/" + path
    token = None
    slash = path.rfind("/")
    segment = path[slash + 1:]
    index = segment.rfind(TOKEN_SEPARATOR)
    if index != -1:
        token = segment[index + len(TOKEN_SEPARATOR):]
        path = path[:slash + 1] + segment[:index]
    if not server:
        raise ValueError(f"DATALINK URL is missing a server: {text!r}")
    return DatalinkURL(scheme=scheme, server=server, path=path, token=token)


@functools.lru_cache(maxsize=8192)
def format_url(server: str, path: str, *, scheme: str = DEFAULT_SCHEME,
               token: str | None = None) -> str:
    """Build DATALINK URL text from components."""

    if not path.startswith("/"):
        path = "/" + path
    return DatalinkURL(scheme=scheme, server=server, path=path, token=token).render()


def split_token_from_name(name: str) -> tuple[str, str | None]:
    """Split a (possibly token-carrying) file name into (name, token).

    Splits at the *last* occurrence, mirroring :func:`parse_url`: the token
    is always the suffix the database appended most recently.
    """

    index = name.rfind(TOKEN_SEPARATOR)
    if index != -1:
        return name[:index], name[index + len(TOKEN_SEPARATOR):]
    return name, None


def embed_token_in_name(name: str, token: str | None) -> str:
    """Append *token* to a bare file name (no-op when token is ``None``)."""

    if token is None:
        return name
    return f"{name}{TOKEN_SEPARATOR}{token}"
