"""Monotonic identifier generation.

Every subsystem (transactions, vnodes, archive versions, ...) needs small
unique integer identifiers.  Keeping the generators explicit (instead of
relying on ``id()`` or random UUIDs) makes runs deterministic, which matters
for reproducible benchmarks and for crash-recovery tests that replay logs.
"""

from __future__ import annotations

import itertools


class IdGenerator:
    """Hands out consecutive integers starting from ``start``."""

    def __init__(self, start: int = 1, prefix: str = ""):
        self._counter = itertools.count(start)
        self._prefix = prefix

    def next_int(self) -> int:
        """Return the next integer id."""

        return next(self._counter)

    def next_str(self) -> str:
        """Return the next id formatted as ``<prefix><number>``."""

        return f"{self._prefix}{self.next_int()}"


_GLOBAL = IdGenerator()


def next_global_id() -> int:
    """Process-wide unique integer (used only where determinism is not needed)."""

    return _GLOBAL.next_int()
