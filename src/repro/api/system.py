"""System assembly: host database, DataLinks engine, file servers, archive.

:class:`DataLinksSystem` is the top-level object users construct.  It owns
the simulated clock domains, the host database with its DataLinks engine,
the shared archive server, and any number of file servers, each of which
stacks physical FS -> DLFS -> logical FS and runs its own DLFM daemons --
the architecture of Figure 1 in the paper.

Simulated time is per node: the host database (plus the DataLinks engine
and co-located clients) runs on the ``host`` clock domain, every file
server runs on its own domain, and the archive mover on the ``archive``
domain; domains max-merge at IPC and commit barriers (see
:mod:`repro.simclock`), so N file servers overlap in time the way the
paper's real testbed machines did.  ``serial_clock=True`` collapses all of
them back onto one timeline for A/B comparisons against the old serial
model.
"""

from __future__ import annotations

import contextlib

from repro.datalinks.backup_coordinator import BackupCoordinator, SystemBackup
from repro.datalinks.dlfm.archive import ArchiveServer
from repro.datalinks.dlfm.daemons import MainDaemon, UpcallDaemon
from repro.datalinks.dlfm.files import DEFAULT_DBMS_UID, FileServerFiles
from repro.datalinks.dlfm.manager import DataLinksFileManager
from repro.datalinks.dlfs.layer import DataLinksFileSystem
from repro.datalinks.dlfs.upcall_client import UpcallClient
from repro.datalinks.engine import DataLinksEngine
from repro.errors import DataLinksError
from repro.fs.logical import LogicalFileSystem
from repro.fs.physical import PhysicalFileSystem
from repro.fs.vfs import Credentials
from repro.simclock import (
    ClockDomainGroup,
    CostModel,
    SimClock,
    synchronized_call,
)
from repro.storage.database import Database
from repro.storage.schema import TableSchema


class FileServer:
    """One file server node: native FS, DLFS layer, DLFM daemons, LFS."""

    def __init__(self, name: str, clock: SimClock, archive: ArchiveServer,
                 dbms_uid: int = DEFAULT_DBMS_UID,
                 strict_read_upcalls: bool = False,
                 token_secret: str | None = None):
        self.name = name
        self.clock = clock
        self.dbms_uid = dbms_uid
        self.strict_read_upcalls = strict_read_upcalls
        self.running = True
        self.physical = PhysicalFileSystem(name, clock=clock)

        # The DLFM's privileged path to the native file system (below DLFS).
        self.raw_lfs = LogicalFileSystem(clock=clock)
        self.raw_lfs.mount("/", self.physical)
        self.files = FileServerFiles(
            lfs=self.raw_lfs,
            dlfm_cred=Credentials(uid=0, gid=0, username="dlfm"),
            dbms_uid=dbms_uid,
            dbms_gid=dbms_uid,
        )

        self.dlfm = DataLinksFileManager(name, self.files, archive, clock,
                                         token_secret=token_secret)
        self.upcall_daemon = UpcallDaemon(self.dlfm, clock)
        self.main_daemon = MainDaemon(self.dlfm, clock)

        # The application path: LFS on top of DLFS on top of the native FS.
        self.upcall_client = UpcallClient(self.upcall_daemon, clock)
        self.dlfs = DataLinksFileSystem(self.physical, self.upcall_client,
                                        dbms_uid=dbms_uid, clock=clock,
                                        strict_read_upcalls=strict_read_upcalls)
        self.lfs = LogicalFileSystem(clock=clock)
        self.lfs.mount("/", self.dlfs)

    # -- operations -----------------------------------------------------------------
    def process_archive_jobs(self) -> int:
        return self.dlfm.process_archive_jobs()

    def crash(self) -> None:
        """Simulate a crash of the file server node (DLFM state is volatile)."""

        self.running = False
        self.dlfm.crash()
        self.upcall_daemon.stop()
        self.main_daemon.stop_all()

    def recover(self) -> dict:
        """Restart the node: DLFM recovery plus daemon restart.

        Note that recovering does *not* return a fenced node to service: a
        replicated shard's ex-primary stays fenced until the shard fails
        back to it.
        """

        summary = self.dlfm.recover()
        self.upcall_daemon.start()
        self.main_daemon.start_all()
        self.running = True
        return summary


class DataLinksSystem:
    """A complete DataLinks installation.

    ``flush_policy`` / ``group_commit_window`` configure WAL group commit for
    the host database *and* every file server's DLFM repository:
    ``"immediate"`` forces the log on every commit (default), ``"group"``
    lets one log force cover up to ``group_commit_window`` commits.  The knob
    can also be flipped at runtime through :meth:`set_flush_policy` or
    :meth:`repro.api.session.Session.set_flush_policy`.
    """

    def __init__(self, cost_model: CostModel | None = None,
                 clock: SimClock | None = None, *,
                 flush_policy: str = "immediate",
                 group_commit_window: int = 8,
                 serial_clock: bool = False):
        if clock is not None:
            # An explicitly supplied clock is adopted as the single shared
            # timeline (legacy behavior / serial-clock studies).
            self.clocks = ClockDomainGroup(root=clock)
        else:
            self.clocks = ClockDomainGroup(cost_model, serial=serial_clock)
        #: The host database node's clock domain (also where co-located
        #: clients -- sessions -- experience time).
        self.clock = self.clocks.domain("host")
        self._flush_policy = flush_policy
        self._group_commit_window = group_commit_window
        self.host_db = Database("host", self.clock, flush_policy=flush_policy,
                                group_commit_window=group_commit_window)
        self.engine = DataLinksEngine(self.host_db, self.clock)
        self.archive = ArchiveServer(self.clocks.domain("archive"))
        self.file_servers: dict[str, FileServer] = {}
        self._backup_coordinator = BackupCoordinator(self.host_db, {})
        #: Host-side connection gate; ``None`` (the default) admits every
        #: client instantly.  See :meth:`enable_admission`.
        self.admission = None

    # ------------------------------------------------------------------ topology --
    def add_file_server(self, name: str, dbms_uid: int = DEFAULT_DBMS_UID,
                        strict_read_upcalls: bool = False,
                        token_secret: str | None = None) -> FileServer:
        """Create a file server node and register it with the DataLinks engine.

        ``strict_read_upcalls`` enables the paper's future-work extension:
        every read open is reported to the DLFM so files linked with
        ``strict_read_sync`` close the rfd read/write window (at a per-open
        cost; see experiment E10).  ``token_secret`` overrides the DLFM's
        token-signing key; a witness replica is created with its primary's
        secret so tokens issued by the host database stay valid across a
        failover.
        """

        if name in self.file_servers:
            raise DataLinksError(f"file server {name!r} already exists")
        server = FileServer(name, self.clocks.domain(name), self.archive,
                            dbms_uid=dbms_uid,
                            strict_read_upcalls=strict_read_upcalls,
                            token_secret=token_secret)
        # A node provisioned now joins the cluster at the current time.
        server.clock.sync_to(self.clock.now())
        server.dlfm.repository.db.set_flush_policy(self._flush_policy,
                                                   self._group_commit_window)
        self.file_servers[name] = server
        self.engine.register_file_server(name, server.dlfm, server.main_daemon)
        self._backup_coordinator.register_manager(name, server.dlfm)
        return server

    def file_server(self, name: str) -> FileServer:
        try:
            return self.file_servers[name]
        except KeyError:
            raise DataLinksError(f"no file server named {name!r}") from None

    # ------------------------------------------------------------------- schema --
    def create_table(self, schema: TableSchema) -> None:
        self.host_db.create_table(schema)

    def register_metadata_columns(self, table: str, column: str,
                                  size_column: str | None = None,
                                  mtime_column: str | None = None) -> None:
        self.engine.register_metadata_columns(table, column, size_column, mtime_column)

    # ------------------------------------------------------------------ sessions --
    def session(self, username: str, uid: int, gid: int = 100,
                clock=None) -> "Session":
        """A session for *username*; ``clock`` binds it to a client domain.

        Without ``clock`` the session is co-located with the host database
        (the classic model).  Pass one of :meth:`client_domains`'s clocks
        to give the session its own timeline that barriers through the
        host like any IPC.
        """

        from repro.api.session import Session

        return Session(self, Credentials(uid=uid, gid=gid, username=username),
                       clock=clock)

    def client_domains(self, count: int, *, limit: int | None = None,
                       prefix: str = "client") -> list:
        """Clock domains for *count* concurrent clients (pooled at *limit*).

        Delegates to :meth:`repro.simclock.ClockDomainGroup.session_domains`
        with the host domain as the base: with
        :data:`repro.simclock.SESSION_DOMAINS` off (or in serial mode)
        every client shares the host clock, the serialized reference
        model.
        """

        return self.clocks.session_domains(count, self.clock, limit=limit,
                                           prefix=prefix)

    def enable_admission(self, limit: int):
        """Gate client operations behind *limit* host connection slots.

        Returns the :class:`~repro.api.admission.AdmissionController`.
        Sessions hold a slot across an operation via
        :meth:`repro.api.session.Session.admitted`; when every slot is
        busy the client's clock waits (measured queue delay) until the
        earliest slot frees, FIFO in simulated arrival order.
        """

        from repro.api.admission import AdmissionController

        self.admission = AdmissionController(limit)
        return self.admission

    def disable_admission(self) -> None:
        """Remove the connection gate (clients admit instantly again)."""

        self.admission = None

    # -------------------------------------------------------------- durability knobs --
    @property
    def flush_policy(self) -> str:
        return self.host_db.wal.flush_policy.value

    def set_flush_policy(self, policy: str,
                         group_commit_window: int | None = None) -> None:
        """Change the WAL commit flush policy system-wide at runtime.

        Applies to the host database and every file server's DLFM
        repository; servers added later inherit the new setting.
        """

        from repro.storage.wal import FlushPolicy

        policy = FlushPolicy.from_string(policy).value  # validate before mutating
        self._flush_policy = policy
        if group_commit_window is not None:
            self._group_commit_window = group_commit_window
        self.host_db.set_flush_policy(policy, group_commit_window)
        for server in self.file_servers.values():
            server.dlfm.repository.db.set_flush_policy(policy, group_commit_window)

    def flush_logs(self) -> None:
        """Force every WAL in the system (drains pending group commits)."""

        self.host_db.wal.flush()
        for server in self.file_servers.values():
            server.dlfm.repository.db.wal.flush()

    # ----------------------------------------------------------------- background --
    @contextlib.contextmanager
    def _at_server(self, server: FileServer):
        """Run an administrative request on *server* and wait for it.

        The request departs from the host/console domain and the caller's
        clock max-merges up to the server's completion -- a synchronous
        admin round trip between clock domains.
        """

        with synchronized_call(self.clock, server.clock):
            yield server

    def run_archiver(self) -> int:
        """Process pending asynchronous archive jobs on every file server."""

        jobs = 0
        for server in self.file_servers.values():
            with self._at_server(server):
                jobs += server.process_archive_jobs()
        return jobs

    def run_housekeeping(self, keep_versions: int | None = None) -> dict:
        """Run DLFM housekeeping on every file server.

        Purges expired token-registry entries and, when *keep_versions* is
        given, prunes each linked file's version chain down to its newest
        *keep_versions* entries.  Returns per-server counts.
        """

        results = {}
        for name, server in sorted(self.file_servers.items()):
            with self._at_server(server):
                results[name] = server.dlfm.run_housekeeping(
                    keep_versions=keep_versions)
        return results

    def abort_file_update(self, server: str, path: str) -> bool:
        """Administrative rollback of an in-progress file update (Section 4.2)."""

        target = self.file_server(server)
        with self._at_server(target):
            return target.dlfm.abort_file_update(path)

    # ------------------------------------------------------------ backup / restore --
    def backup(self, label: str = "") -> SystemBackup:
        """Take a coordinated backup of the host database and every file server.

        A coordinated backup is a cluster-wide synchronization point, so
        every clock domain rendezvouses before and after it.
        """

        self.clocks.barrier()
        try:
            return self._backup_coordinator.backup(label)
        finally:
            self.clocks.barrier()

    def restore(self, backup: SystemBackup) -> dict:
        """Restore a coordinated backup; returns the per-server restored paths."""

        self.clocks.barrier()
        try:
            return self._backup_coordinator.restore(backup)
        finally:
            self.clocks.barrier()

    # ------------------------------------------------------------ fault injection --
    def crash_file_server(self, name: str) -> None:
        self.file_server(name).crash()

    def recover_file_server(self, name: str) -> dict:
        return self.file_server(name).recover()

    def resolve_in_doubt(self) -> dict:
        """Drive prepared DLFM branches to the host's durable outcome.

        Use after recovering the host database from a crash that interrupted
        a two-phase commit (coordinator failure); file-server crashes resolve
        their own in-doubt branches during :meth:`recover_file_server`.
        """

        self.clocks.barrier()
        try:
            return self.engine.resolve_in_doubt()
        finally:
            self.clocks.barrier()
