"""Public facade: assemble a DataLinks system and use it from application code."""

from repro.api.system import DataLinksSystem, FileServer
from repro.api.session import Session, BoundFileSystem

__all__ = ["DataLinksSystem", "FileServer", "Session", "BoundFileSystem"]
