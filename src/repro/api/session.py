"""Application sessions: the two access paths the paper describes.

A :class:`Session` binds a user (credentials) to a
:class:`~repro.api.system.DataLinksSystem` and exposes

* the *SQL path*: insert/update/delete/select against the host database with
  automatic link/unlink of DATALINK values, plus ``get_datalink`` to obtain a
  tokenized URL;
* the *file-system path*: the ordinary open/read/write/close API against a
  file server's logical file system, including
  :meth:`Session.update_file`, the update-in-place transaction of Section 4.

Scale-out knobs: :meth:`Session.insert_many` ships one batched link message
per file server for a multi-row INSERT, and
:meth:`Session.set_flush_policy` switches the system-wide WAL commit flush
policy between ``"immediate"`` (one log force per commit) and ``"group"``
(one force covers a window of commits).
"""

from __future__ import annotations

import contextlib

from repro.datalinks.engine import HostTransaction
from repro.datalinks.uip import (
    FileUpdateTransaction,
    MultiFileUpdate,
    open_for_read,
    tokenized_path,
)
from repro.errors import DataLinksError
from repro.fs.inode import FileAttributes
from repro.fs.logical import LogicalFileSystem
from repro.fs.vfs import Credentials, OpenFlags
from repro.simclock import synchronized_call

class SyncedFileSystem:
    """A file server's LFS as seen from another clock domain.

    Sessions run beside the host database (the ``host`` clock domain) or --
    when constructed through :meth:`DataLinksSystem.client_domains` -- on
    their own per-client domain; the file they open lives on a file server
    with its own domain.  This proxy
    brackets every file-system call with the merge-at-sync protocol: the
    server's clock syncs up to the client's send time, the call's work
    accrues on the server's timeline, and the client's clock merges up to
    the completion -- so a client-side stopwatch sees the true end-to-end
    latency, including any queueing behind other work on that server.
    """

    def __init__(self, lfs: LogicalFileSystem, client_clock, server_clock):
        self._lfs = lfs
        self._client_clock = client_clock
        self._server_clock = server_clock

    def __getattr__(self, name: str):
        attribute = getattr(self._lfs, name)
        if not callable(attribute):
            return attribute
        client, server = self._client_clock, self._server_clock
        if client is None or server is None or client is server:
            self.__dict__[name] = attribute
            return attribute

        def synced_call(*args, **kwargs):
            # The body of ``synchronized_call`` with the four clock calls
            # (send_time / sync_to / now / receive) written out as direct
            # attribute work: this wrapper brackets every proxied syscall.
            frames = client._overlap_frames
            instant = frames[-1][0] if frames else client._now
            if instant > server._now:
                server._now = instant
            try:
                return attribute(*args, **kwargs)
            finally:
                instant = server._now
                frames = client._overlap_frames
                if frames:
                    frame = frames[-1]
                    if instant > frame[1]:
                        frame[1] = instant
                elif instant > client._now:
                    client._now = instant

        # Cache the bound wrapper so later accesses skip __getattr__.
        self.__dict__[name] = synced_call
        return synced_call


def synced_lfs(system, server_name: str, client_clock=None):
    """The LFS of *server_name*, clock-synchronized to the caller's domain.

    ``client_clock`` defaults to the host domain (the classic co-located
    session); a session riding its own client domain passes that domain so
    file-system calls sync *its* timeline against the server's.  Proxies
    are cached on the system -- per server name for host-clock callers (a
    name binds to one :class:`FileServer` for the system's lifetime;
    ``add_file_server`` refuses duplicates), per ``(server, client)`` pair
    otherwise -- so the proxy and the per-method wrappers it accumulates
    are reused across every session call.
    """

    try:
        cache = system._synced_lfs_cache
    except AttributeError:
        cache = system._synced_lfs_cache = {}
    client = system.clock if client_clock is None else client_clock
    if client is system.clock:
        key = server_name
    else:
        key = (server_name, id(client))
    try:
        proxy = cache[key]
    except KeyError:
        proxy = None
    if proxy is None:
        file_server = system.file_server(server_name)
        if file_server.clock is client:
            proxy = file_server.lfs
        else:
            proxy = SyncedFileSystem(file_server.lfs, client,
                                     file_server.clock)
        cache[key] = proxy
    return proxy


class BoundFileSystem:
    """The file-system API of one file server bound to one user's credentials."""

    def __init__(self, lfs: LogicalFileSystem, cred: Credentials):
        self._lfs = lfs
        self.cred = cred

    # Thin, credential-carrying wrappers over the LFS system calls.
    def open(self, path: str, flags: OpenFlags, mode: int = 0o644) -> int:
        return self._lfs.open(path, flags, self.cred, mode)

    def close(self, fd: int) -> None:
        self._lfs.close(fd)

    def read(self, fd: int, length: int = -1) -> bytes:
        return self._lfs.read(fd, length)

    def write(self, fd: int, data: bytes) -> int:
        return self._lfs.write(fd, data)

    def lseek(self, fd: int, offset: int) -> int:
        return self._lfs.lseek(fd, offset)

    def stat(self, path: str) -> FileAttributes:
        return self._lfs.stat(path, self.cred)

    def exists(self, path: str) -> bool:
        return self._lfs.exists(path, self.cred)

    def read_file(self, path: str) -> bytes:
        return self._lfs.read_file(path, self.cred)

    def write_file(self, path: str, data: bytes, create: bool = True) -> int:
        return self._lfs.write_file(path, data, self.cred, create=create)

    def unlink(self, path: str) -> None:
        self._lfs.unlink(path, self.cred)

    def rename(self, old: str, new: str) -> None:
        self._lfs.rename(old, new, self.cred)

    def mkdir(self, path: str) -> None:
        self._lfs.mkdir(path, self.cred)

    def makedirs(self, path: str) -> None:
        self._lfs.makedirs(path, self.cred)

    def listdir(self, path: str) -> list[str]:
        return self._lfs.listdir(path, self.cred)

    def chmod(self, path: str, mode: int) -> None:
        self._lfs.chmod(path, mode, self.cred)

    @property
    def lfs(self) -> LogicalFileSystem:
        return self._lfs


class Session:
    """One application's view of the system.

    ``clock`` binds the session to a client clock domain (see
    :meth:`repro.api.system.DataLinksSystem.client_domains`); it defaults
    to the host domain, the classic co-located client.  A session on its
    own domain barriers through the host for SQL-path work
    (:meth:`_host_barrier`) and syncs file-system calls directly against
    the serving node's domain, so its timeline measures true end-to-end
    latency including queueing behind other clients.
    """

    def __init__(self, system, cred: Credentials, clock=None):
        self.system = system
        self.cred = cred
        self.clock = system.clock if clock is None else clock
        #: True when this session rides its own client domain (the SQL
        #: path must then two-way merge with the host domain per call).
        self._remote = self.clock is not system.clock
        self._txn: HostTransaction | None = None

    def _host_barrier(self):
        """Two-way merge with the host domain around SQL-path work.

        A no-op context for host-clock sessions (``synchronized_call``
        yields immediately when caller and callee are the same clock).
        """

        return synchronized_call(self.clock, self.system.clock)

    @contextlib.contextmanager
    def admitted(self):
        """Hold a host admission slot for the duration of the block.

        Yields the :class:`~repro.api.admission.AdmissionTicket` (``None``
        when the system runs without admission control).  Queue delay is
        charged to this session's clock by the controller, so a stopwatch
        around the whole block measures end-to-end latency including the
        wait for a connection slot.
        """

        controller = getattr(self.system, "admission", None)
        if controller is None:
            yield None
            return
        ticket = controller.acquire(self.clock)
        try:
            yield ticket
        finally:
            controller.release(ticket, self.clock)

    # -------------------------------------------------------------- transactions --
    def begin(self) -> HostTransaction:
        if self._txn is not None:
            raise DataLinksError("a transaction is already active in this session")
        with self._host_barrier():
            self._txn = self.system.engine.begin()
        return self._txn

    def commit(self) -> None:
        if self._txn is None:
            raise DataLinksError("no active transaction")
        with self._host_barrier():
            self.system.engine.commit(self._txn)
        self._txn = None

    def abort(self) -> None:
        if self._txn is None:
            raise DataLinksError("no active transaction")
        with self._host_barrier():
            self.system.engine.abort(self._txn)
        self._txn = None

    @property
    def in_transaction(self) -> bool:
        return self._txn is not None

    # ---------------------------------------------------------- durability knob --
    @property
    def flush_policy(self) -> str:
        """The system-wide WAL commit flush policy (``immediate``/``group``)."""

        return self.system.flush_policy

    def set_flush_policy(self, policy: str,
                         group_commit_window: int | None = None) -> None:
        """Switch WAL group commit on (``"group"``) or off (``"immediate"``).

        With group commit a single log force covers up to
        ``group_commit_window`` commits.  A crash can lose the last
        unflushed window of *host-only* commits; a transaction that
        touched a DLFM always forces the log before the DLFMs commit (the
        two-phase-commit rule), and any branch left in doubt is resolved
        from the host's durable outcome during recovery.
        """

        self.system.set_flush_policy(policy, group_commit_window)

    # ---------------------------------------------------------------- SQL path --
    def sql(self, statement: str):
        """Execute a SQL statement against the host database.

        DML routes through the DataLinks engine, so INSERT/UPDATE/DELETE of
        DATALINK columns link and unlink files exactly like the typed API.
        Returns rows for SELECT and an affected-row count otherwise.
        """

        from repro.storage.sql import SQLExecutor

        executor = SQLExecutor(self.system.host_db, engine=self.system.engine)
        with self._host_barrier():
            return executor.execute(statement, self._txn)

    def insert(self, table: str, row: dict) -> int:
        with self._host_barrier():
            return self.system.engine.insert(table, row, self._txn)

    def insert_many(self, table: str, rows: list[dict]) -> list[int]:
        """Multi-row INSERT with batched (pipelined) link processing."""

        with self._host_barrier():
            return self.system.engine.insert_many(table, rows, self._txn)

    def update(self, table: str, where, changes: dict) -> int:
        with self._host_barrier():
            return self.system.engine.update(table, where, changes, self._txn)

    def delete(self, table: str, where) -> int:
        with self._host_barrier():
            return self.system.engine.delete(table, where, self._txn)

    def select(self, table: str, where=None, **kwargs) -> list[dict]:
        with self._host_barrier():
            return self.system.engine.select(table, where, self._txn, **kwargs)

    def get_datalink(self, table: str, where, column: str, *,
                     access: str = "read", ttl: float | None = None) -> str | None:
        """Retrieve a DATALINK URL with an embedded access token."""

        with self._host_barrier():
            return self.system.engine.get_datalink(
                table, where, column, access=access,
                host_txn=self._txn, ttl=ttl)

    def get_datalink_many(self, table: str, wheres, column: str, *,
                          access: str = "read", ttl: float | None = None) -> list:
        """Retrieve many DATALINK URLs in one vectorized token handout.

        Returns one (tokenized) URL -- or ``None`` -- per ``where`` in
        *wheres*, exactly as the equivalent :meth:`get_datalink` loop
        would, at a fraction of the per-call overhead (see
        :meth:`repro.datalinks.engine.DataLinksEngine.get_datalink_many`).
        """

        with self._host_barrier():
            return self.system.engine.get_datalink_many(
                table, wheres, column, access=access,
                host_txn=self._txn, ttl=ttl)

    # --------------------------------------------------------------- file path --
    def fs(self, server: str) -> BoundFileSystem:
        """The ordinary file-system API of *server*, as this session's user."""

        return BoundFileSystem(synced_lfs(self.system, server, self.clock),
                               self.cred)

    def put_file(self, server: str, path: str, content: bytes) -> str:
        """Create *path* on *server* with *content* (before linking it).

        Returns the bare DATALINK URL to store in the database.  Parent
        directories are created with superuser credentials so examples and
        workloads do not need to pre-create a directory tree.
        """

        lfs = synced_lfs(self.system, server, self.clock)
        directory = path.rsplit("/", 1)[0] or "/"
        root_cred = Credentials(uid=0, gid=0, username="root")
        if directory != "/":
            lfs.makedirs(directory, root_cred)
            lfs.chown(directory, self.cred.uid, self.cred.gid, root_cred)
        lfs.write_file(path, content, self.cred)
        return self.system.engine.make_url(server, path)

    def read_url(self, url: str, *, server: str | None = None) -> bytes:
        """Open a (tokenized) DATALINK URL for read and return its content.

        ``server`` overrides the node the URL names; without it the
        session resolves the node through the system's replication-aware
        router when one is attached (the URL stays *logical*): reads are
        load-balanced over the owner shard's serving node and eligible
        witnesses, so a URL keeps working across failover and prefix
        rebalancing.  The token embedded in the URL stays valid because a
        witness shares its primary's signing secret.
        """

        lfs = synced_lfs(self.system,
                         server or self._route_url(url, write=False),
                         self.clock)
        fd = open_for_read(lfs, url, self.cred)
        try:
            return lfs.read(fd)
        finally:
            lfs.close(fd)

    def update_file(self, url: str, truncate: bool = False) -> FileUpdateTransaction:
        """Start an update-in-place transaction on a write-tokenized URL.

        The file handle resolves through the replication-aware router when
        one is attached, so update-in-place keeps working after a failover
        (the write reaches the promoted witness, not the crashed primary)
        or a prefix rebalance.  If the serving lease moves *mid-update*,
        the close-side commit is refused by the fence, the update rolls
        back to the last committed version and
        :class:`~repro.errors.LeaseMovedError` asks the caller to retry
        against the new serving node.
        """

        server = self._route_url(url, write=True)
        lfs = synced_lfs(self.system, server, self.clock)
        return FileUpdateTransaction(
            lfs, url, self.cred, truncate=truncate,
            abort_callback=lambda srv, path: self.system.abort_file_update(server, path))

    def update_files(self, urls: list[str], truncate: bool = False) -> MultiFileUpdate:
        """Update several write-tokenized URLs as one all-or-nothing unit.

        This is the "nested transaction" usage of Section 3.1: each file's
        open/close remains its own sub-transaction, and the returned
        :class:`MultiFileUpdate` commits or rolls back all of them together.
        """

        return MultiFileUpdate([self.update_file(url, truncate=truncate)
                                for url in urls])

    def open_url(self, url: str, flags: OpenFlags) -> int:
        """Open a tokenized URL with explicit flags; returns the fd."""

        lfs = synced_lfs(self.system, self._server_of(url), self.clock)
        return lfs.open(tokenized_path(url), flags, self.cred)

    def _server_of(self, url: str) -> str:
        from repro.util.urls import parse_url

        return parse_url(url).server

    def _route_url(self, url: str, *, write: bool) -> str:
        """Resolve a logical URL to the physical node serving it right now.

        Goes through the engine's replication-aware router when one is
        attached: the URL's ``(server, path)`` maps to the prefix's
        current owner shard (epoched placement), then to that shard's
        serving node for writes or a read-eligible node (serving or
        witness, round-robin) for reads.  Plain systems -- and URLs naming
        servers the router does not manage -- resolve to the URL's server,
        the pre-routing behavior.
        """

        from repro.util.urls import parse_url

        parsed = parse_url(url)
        router = self.system.engine.router
        if router is None:
            return parsed.server
        shard = router.owner_shard(parsed.server, parsed.path)
        if shard not in router.shards:
            return shard
        if write:
            return router.route_write(shard).name
        return router.route_read(shard).name
