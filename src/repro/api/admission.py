"""Host-side admission control for simulated client sessions.

The paper's testbed served every client through one host database with a
bounded agent pool; the reproduction models that stage explicitly so the
session sweep saturates for the honest reason -- queueing -- instead of
Python-side cache and table effects.  An :class:`AdmissionController`
owns ``limit`` connection slots.  A client acquires a slot before an
operation and releases it afterwards; when every slot is busy the client
*waits*, and the wait is charged to the client's own clock domain (its
timeline jumps forward to the instant a slot frees up), so measured
end-to-end latency includes queue delay.

Fairness is FIFO in simulated arrival time: the drivers
(:class:`repro.workloads.clients.ClientPool`) present operations in
non-decreasing client-clock order, and :meth:`acquire` always hands the
earliest-freeing slot to the caller, so no later arrival can overtake an
earlier one and queued clients drain round-robin.  The controller is
pure simulation bookkeeping -- a min-heap of slot free times -- and adds
O(log limit) work per operation regardless of how many clients queue.
"""

from __future__ import annotations

from heapq import heappop, heappush


class AdmissionTicket:
    """One admitted operation: arrival, admission instant, queue delay.

    ``released_at`` is stamped by :meth:`AdmissionController.release`;
    the slot was held over the simulated interval ``[admitted_at,
    released_at)`` (what the connection-limit property test counts).
    """

    __slots__ = ("arrival", "admitted_at", "queue_delay", "released_at")

    def __init__(self, arrival: float, admitted_at: float):
        self.arrival = arrival
        self.admitted_at = admitted_at
        self.queue_delay = admitted_at - arrival
        self.released_at = None


class AdmissionController:
    """A ``limit``-slot connection gate with measured queue delay.

    ``acquire(clock)`` blocks (in simulated time) until a slot is free:
    the client's clock syncs forward to ``max(arrival, earliest slot free
    time)`` and the difference is the queue delay, recorded on the
    returned :class:`AdmissionTicket` and in the aggregate counters.
    ``release(ticket, clock)`` returns the slot, free from the client's
    *current* time -- so a slot held across think time and service models
    a persistent connection, which is what makes throughput flatten at
    the connection limit (the saturation knee) while latency keeps
    growing with the number of queued clients.
    """

    def __init__(self, limit: int):
        if limit < 1:
            raise ValueError("admission limit must be at least 1")
        self.limit = limit
        #: Min-heap of slot free times; ``limit`` entries, always full --
        #: acquire replaces the popped entry at release time.
        self._free: list[float] = [0.0] * limit
        self._held = 0
        self.admitted = 0
        self.queued = 0
        self.total_queue_delay = 0.0
        self.max_queue_delay = 0.0
        self.max_held = 0

    def acquire(self, clock) -> AdmissionTicket:
        """Admit *clock*'s client, charging any queue delay to its timeline."""

        if self._held >= self.limit:
            raise RuntimeError(
                f"admission controller over-committed: {self._held} slots "
                f"held with limit {self.limit}")
        arrival = clock.now()
        free_at = heappop(self._free)
        start = free_at if free_at > arrival else arrival
        delay = start - arrival
        if delay > 0.0:
            clock.sync_to(start)
            self.queued += 1
            self.total_queue_delay += delay
            if delay > self.max_queue_delay:
                self.max_queue_delay = delay
        self.admitted += 1
        self._held += 1
        if self._held > self.max_held:
            self.max_held = self._held
        return AdmissionTicket(arrival, start)

    def release(self, ticket: AdmissionTicket, clock) -> None:
        """Return *ticket*'s slot, free from the client's current time."""

        ticket.released_at = clock.now()
        heappush(self._free, ticket.released_at)
        self._held -= 1

    def stats(self) -> dict:
        """Aggregate admission counters for reporting."""

        return {
            "limit": self.limit,
            "admitted": self.admitted,
            "queued": self.queued,
            "max_held": self.max_held,
            "total_queue_delay_ms": self.total_queue_delay * 1000.0,
            "max_queue_delay_ms": self.max_queue_delay * 1000.0,
        }
