"""Exception hierarchy shared by every subsystem of the reproduction.

The original DataLinks prototype spans three failure domains -- the host
DBMS, the DataLinks File Manager (DLFM) and the file system (DLFS + native
file system).  Each domain gets its own branch of the hierarchy so callers
can catch precisely the class of failure they can handle.
"""

from __future__ import annotations

import enum


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


# ---------------------------------------------------------------------------
# Storage / mini-RDBMS errors
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for errors raised by the relational storage engine."""


class NoSuchTableError(StorageError):
    """A statement referenced a table that is not in the catalog."""


class TableExistsError(StorageError):
    """``CREATE TABLE`` was issued for a table that already exists."""


class NoSuchColumnError(StorageError):
    """A statement referenced a column that the table does not define."""


class SchemaError(StorageError):
    """A table schema is malformed (duplicate column, bad type, ...)."""


class TypeMismatchError(StorageError):
    """A value does not match the declared column type."""


class NullViolationError(StorageError):
    """A NOT NULL column received a null value."""


class DuplicateKeyError(StorageError):
    """A unique constraint (primary key or unique index) was violated."""


class NoSuchRowError(StorageError):
    """A row id does not name a live row."""


class TransactionError(StorageError):
    """Base class for transaction-state errors."""


class TransactionAborted(TransactionError):
    """The transaction was rolled back (explicitly or by the system)."""


class TransactionNotActive(TransactionError):
    """An operation was attempted on a finished or unknown transaction."""


class LockError(StorageError):
    """Base class for lock-manager failures."""


class LockConflictError(LockError):
    """A lock could not be granted immediately and waiting was not allowed.

    ``holders`` lists the transaction ids currently holding the resource in
    a conflicting mode so that simulated schedulers can decide what to do.
    """

    def __init__(self, resource: object, mode: object, holders: tuple = ()):
        super().__init__(f"lock conflict on {resource!r} for mode {mode}")
        self.resource = resource
        self.mode = mode
        self.holders = tuple(holders)


class DeadlockError(LockError):
    """Granting the request would create a cycle in the wait-for graph."""


class RecoveryError(StorageError):
    """Crash recovery could not be completed."""


class BackupError(StorageError):
    """Backup or restore of the database failed."""


class PreparedStateError(TransactionError):
    """An operation conflicts with the two-phase-commit state of a branch."""


# ---------------------------------------------------------------------------
# File system errors (errno-styled)
# ---------------------------------------------------------------------------


class Errno(enum.Enum):
    """POSIX-flavoured error codes used by the simulated file system."""

    ENOENT = "ENOENT"        # no such file or directory
    EEXIST = "EEXIST"        # file exists
    EACCES = "EACCES"        # permission denied
    EROFS = "EROFS"          # read-only file (system)
    EISDIR = "EISDIR"        # is a directory
    ENOTDIR = "ENOTDIR"      # not a directory
    ENOTEMPTY = "ENOTEMPTY"  # directory not empty
    EBADF = "EBADF"          # bad file descriptor
    EBUSY = "EBUSY"          # resource busy (e.g. linked file)
    EINVAL = "EINVAL"        # invalid argument
    ENOSPC = "ENOSPC"        # no space left on device
    EPERM = "EPERM"          # operation not permitted
    EAGAIN = "EAGAIN"        # resource temporarily unavailable (locks)
    EXDEV = "EXDEV"          # cross-device link


class FileSystemError(ReproError):
    """Base class for simulated file-system errors, carrying an errno."""

    def __init__(self, errno: Errno, message: str = ""):
        # ``_value_`` is the plain attribute behind the ``value`` property;
        # reading it skips the enum descriptor (hot: raised per failed open).
        code = errno._value_
        detail = f"[{code}] {message}" if message else f"[{code}]"
        super().__init__(detail)
        self.errno = errno


def fs_error(errno: Errno, message: str = "") -> FileSystemError:
    """Build a :class:`FileSystemError` for *errno* with an optional message."""

    return FileSystemError(errno, message)


# ---------------------------------------------------------------------------
# IPC / daemon errors
# ---------------------------------------------------------------------------


class IPCError(ReproError):
    """Base class for simulated inter-process-communication failures."""


class DaemonUnavailableError(IPCError):
    """The target daemon is not running (simulated crash or shutdown)."""


class ProtocolError(IPCError):
    """A daemon received a request it does not understand."""


# ---------------------------------------------------------------------------
# DataLinks errors
# ---------------------------------------------------------------------------


class DataLinksError(ReproError):
    """Base class for DataLinks-specific failures."""


class InvalidTokenError(DataLinksError):
    """An access token failed validation (bad signature or wrong type)."""


class TokenExpiredError(InvalidTokenError):
    """An access token was syntactically valid but past its expiry time."""


class FileNotLinkedError(DataLinksError):
    """An operation required the file to be linked but it is not."""


class FileAlreadyLinkedError(DataLinksError):
    """A link operation targeted a file that is already linked."""


class LinkConflictError(DataLinksError):
    """Link/unlink conflicts with a concurrent open (Sync table entry)."""


class UpdateInProgressError(DataLinksError):
    """The file has an uncommitted or un-archived update pending."""


class AccessDeniedError(DataLinksError):
    """The DBMS refused the requested access to a linked file."""


class ControlModeError(DataLinksError):
    """The requested operation is not allowed under the file's control mode."""


class ReferentialIntegrityError(DataLinksError):
    """An operation would leave a dangling DATALINK reference."""


class ReplicationError(DataLinksError):
    """Shard replication failed (shipping, apply, promotion or resync)."""


class PlacementError(DataLinksError):
    """A placement operation was invalid or cannot run right now.

    Raised by ``rebalance_prefix`` for unknown prefixes, destinations that
    cannot take the hand-off (unknown shard, no witness replica) and
    retryable conditions (in-flight opens or updates under the prefix, a
    concurrent move of the same prefix)."""


class PlacementEpochError(PlacementError):
    """A request carried (or implied) a stale placement epoch.

    The cure is a redirect-and-retry: refresh the placement map and re-send
    to the prefix's current owner.  ``owner`` names that owner when the
    refusing node knows it, ``prefix`` the affected URL prefix, ``epoch``
    the current map epoch and ``observed`` the stale epoch the request
    carried (``None`` when the request was rejected by a per-prefix fence
    rather than an envelope epoch check).
    """

    def __init__(self, message: str, *, prefix: str | None = None,
                 owner: str | None = None, epoch: int = 0,
                 observed: int | None = None):
        super().__init__(message)
        self.prefix = prefix
        self.owner = owner
        self.epoch = epoch
        self.observed = observed


class LeaseMovedError(ReplicationError):
    """The serving lease (or prefix placement) moved mid-file-update.

    The in-flight update was rolled back to the last committed version;
    the caller should re-fetch a write token and retry against the node
    now serving the file -- a retryable error, not data loss.
    """


class FencedNodeError(DataLinksError):
    """A node whose epoch lease was revoked tried to serve traffic.

    Raised by a DLFM that was fenced during a failover: a recovered
    ex-primary must refuse token validation and open processing so that no
    stale token is ever accepted by a node that no longer owns the shard.
    """


class CheckoutConflictError(DataLinksError):
    """A CICO check-out conflicts with an existing check-out."""


class MergeConflictError(DataLinksError):
    """A CAU check-in could not be merged with intervening changes."""
