"""A simulated block device.

The device stores fixed-size blocks in memory and keeps I/O statistics.  It
does not charge simulated time itself -- the physical file system charges one
seek per request plus a per-byte transfer cost, which avoids double counting
and matches the sequential-transfer assumption behind the paper's "10 ms per
megabyte" era hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import Errno, fs_error

DEFAULT_BLOCK_SIZE = 4096


@dataclass
class BlockDeviceStats:
    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    allocations: int = 0
    frees: int = 0


@dataclass
class BlockDevice:
    """Fixed-size-block storage with allocation tracking."""

    name: str = "disk0"
    block_size: int = DEFAULT_BLOCK_SIZE
    capacity_blocks: int = 1 << 20          # 4 GiB with the default block size
    _blocks: dict = field(default_factory=dict, repr=False)
    _next_block: int = 1
    _free_list: list = field(default_factory=list, repr=False)
    stats: BlockDeviceStats = field(default_factory=BlockDeviceStats)

    # -- allocation -------------------------------------------------------------
    def allocate_block(self) -> int:
        """Allocate a zero-filled block and return its number."""

        if self._free_list:
            block_no = self._free_list.pop()
        else:
            if self._next_block > self.capacity_blocks:
                raise fs_error(Errno.ENOSPC, f"device {self.name} is full")
            block_no = self._next_block
            self._next_block += 1
        self._blocks[block_no] = bytes(self.block_size)
        self.stats.allocations += 1
        return block_no

    def free_block(self, block_no: int) -> None:
        if block_no in self._blocks:
            del self._blocks[block_no]
            self._free_list.append(block_no)
            self.stats.frees += 1

    # -- I/O ----------------------------------------------------------------------
    def read_block(self, block_no: int) -> bytes:
        try:
            data = self._blocks[block_no]
        except KeyError:
            raise fs_error(Errno.EINVAL, f"device {self.name}: bad block {block_no}") from None
        self.stats.reads += 1
        self.stats.bytes_read += self.block_size
        return data

    def write_block(self, block_no: int, data: bytes) -> None:
        if block_no not in self._blocks:
            raise fs_error(Errno.EINVAL, f"device {self.name}: bad block {block_no}")
        if len(data) > self.block_size:
            raise fs_error(Errno.EINVAL, "write larger than block size")
        if len(data) < self.block_size:
            data = data + bytes(self.block_size - len(data))
        self._blocks[block_no] = bytes(data)
        self.stats.writes += 1
        self.stats.bytes_written += self.block_size

    @property
    def allocated_blocks(self) -> int:
        return len(self._blocks)
