"""Whole-file advisory locks used by the ``fs_lockctl`` entry point.

The paper serializes file access "using the fs_lockctl() entry point of the
file system to lock the file in the desired access mode" (Section 4.2).  The
lock table keyed by inode number implements shared/exclusive whole-file
locks; lock owners are opaque (DLFS uses the token-entry user id plus the
open handle so locks are released exactly once per open).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import Errno, fs_error
from repro.fs.vfs import LockKind, LockRequest


@dataclass
class _FileLock:
    owner: object
    exclusive: bool


@dataclass
class FileLockTable:
    """Per-file shared/exclusive locks with immediate (non-blocking) grants."""

    _locks: dict[int, list[_FileLock]] = field(default_factory=dict)

    def apply(self, ino: int, request: LockRequest) -> bool:
        """Apply *request* for the file *ino*; returns True when granted."""

        if request.kind is LockKind.UNLOCK:
            self.release(ino, request.owner)
            return True
        exclusive = request.kind is LockKind.EXCLUSIVE
        holders = self._locks.setdefault(ino, [])
        for lock in holders:
            if lock.owner == request.owner:
                lock.exclusive = lock.exclusive or exclusive
                return True
        conflict = any(lock.exclusive or exclusive for lock in holders)
        if conflict:
            raise fs_error(Errno.EAGAIN,
                           f"file lock on inode {ino} unavailable "
                           f"({len(holders)} holder(s))")
        holders.append(_FileLock(owner=request.owner, exclusive=exclusive))
        return True

    def release(self, ino: int, owner: object) -> None:
        holders = self._locks.get(ino)
        if not holders:
            return
        holders[:] = [lock for lock in holders if lock.owner != owner]
        if not holders:
            del self._locks[ino]

    def release_owner(self, owner: object) -> None:
        """Drop every lock held by *owner* (process exit, transaction end)."""

        for ino in list(self._locks):
            self.release(ino, owner)

    def holders(self, ino: int) -> list[object]:
        return [lock.owner for lock in self._locks.get(ino, ())]

    def is_locked(self, ino: int) -> bool:
        return bool(self._locks.get(ino))
