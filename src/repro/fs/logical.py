"""The logical file system (LFS): path resolution, file descriptors, syscalls.

Applications use this layer exactly like the POSIX API: ``open`` returns a
file descriptor, ``read``/``write`` move an offset, ``close`` releases it.
Internally ``open`` is decoupled into ``fs_lookup`` followed by ``fs_open``
against the mounted VFS stack, which is the structural property DataLinks
token handling has to work around (Section 4.1 of the paper).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

from repro.errors import Errno, FileSystemError, fs_error
from repro.fs.inode import DEFAULT_DIR_MODE, DEFAULT_FILE_MODE, FileAttributes
from repro.fs.vfs import (
    APPEND_MASK,
    CREATE_MASK,
    READ_MASK,
    WRITE_MASK,
    Credentials,
    LockKind,
    LockRequest,
    OpenFlags,
    OpenHandle,
    VFSOperations,
    Vnode,
)

_WRITE_TRUNC = OpenFlags.WRITE | OpenFlags.TRUNCATE
_WRITE_TRUNC_CREATE = _WRITE_TRUNC | OpenFlags.CREATE


@dataclass(slots=True)
class OpenFile:
    """One entry of the system open-file table."""

    fd: int
    path: str
    vfs: VFSOperations
    vnode: Vnode
    handle: OpenHandle
    flags: OpenFlags
    cred: Credentials
    offset: int = 0


@dataclass(slots=True)
class _Mount:
    prefix: str
    vfs: VFSOperations


#: Sentinel distinguishing "profile not computed yet" from "VFS opted out".
_PROFILE_UNSET = object()


@functools.lru_cache(maxsize=8192)
def _normalize(path: str) -> str:
    """Normalize an absolute path (memoized -- the same few hundred paths
    are re-resolved on every operation of a workload)."""

    if not path.startswith("/"):
        raise fs_error(Errno.EINVAL, f"path must be absolute: {path!r}")
    parts = [part for part in path.split("/") if part not in ("", ".")]
    return "/" + "/".join(parts)


def _split(path: str) -> tuple[str, str]:
    """Split into (parent directory, final component)."""

    normalized = _normalize(path)
    if normalized == "/":
        raise fs_error(Errno.EINVAL, "cannot split the root path")
    parent, _, name = normalized.rpartition("/")
    return (parent or "/", name)


class LogicalFileSystem:
    """Mount table + open-file table + the system-call API."""

    def __init__(self, clock=None):
        self.clock = clock
        # Primed per-syscall charge amount: the hot syscalls (open, close,
        # read, write) write ``clock.charge("syscall_base")`` out inline
        # against this cached unit, like the physical layer's fixed charges.
        self._primed_clock = None
        self._amt_syscall = 0.0
        self._mounts: list[_Mount] = []
        self._open_files: dict[int, OpenFile] = {}
        self._next_fd = 3          # 0..2 are conventionally reserved
        # normalized path -> (vfs, relative); invalidated on mount().  Paths
        # may embed access tokens (unbounded cardinality), so the cache is
        # cleared rather than grown past a fixed bound.
        self._resolve_cache: dict[str, tuple[VFSOperations, str]] = {}
        self._split_cache: dict[str, list[str]] = {}
        # Parent-resolution cache: (parent directory, cred.uid) ->
        # everything the resolve produced, plus what a hit must replay
        # (the walk's whole charge pattern, in one batch) and the
        # directory version that guards its validity.  Parent resolution
        # walks only directories, so entries validate against the
        # anchor's ``dir_version`` and survive file creates/removes/
        # renames; the final component of every path is always looked up
        # live, which is also why the key is the parent directory rather
        # than the full path -- token-carrying names never poison it.
        # The key uses the uid (an int, so probing never re-hashes the
        # credential object); the full credential rides in the entry and
        # is identity-compared on hit.  The per-VFS pattern and anchor
        # come from ``walk_profile()``.
        self._parent_cache: dict[tuple, tuple] = {}
        # Full-resolution cache: (path, cred.uid) -> the final vnode as
        # well.  Unlike parent entries this also pins the *binding* of the
        # final component, so it additionally validates against the
        # anchor's ``bind_version`` (bumped on every create/remove/rename)
        # and never holds token-carrying paths (their validation upcalls
        # must stay live).
        self._lookup_cache: dict[tuple, tuple] = {}
        self._walk_profiles: dict[VFSOperations, tuple | None] = {}

    # ------------------------------------------------------------------ mounts --
    def mount(self, prefix: str, vfs: VFSOperations) -> None:
        """Mount *vfs* at *prefix* (longest-prefix match wins at resolution)."""

        prefix = _normalize(prefix)
        self._mounts.append(_Mount(prefix=prefix, vfs=vfs))
        self._mounts.sort(key=lambda mount: len(mount.prefix), reverse=True)
        self._resolve_cache.clear()
        self._parent_cache.clear()
        self._lookup_cache.clear()
        self._walk_profiles.clear()

    def mounted_vfs(self, path: str) -> tuple[VFSOperations, str]:
        """Return ``(vfs, path relative to the mount root)`` for *path*."""

        normalized = _normalize(path)
        try:
            return self._resolve_cache[normalized]
        except KeyError:
            pass
        for mount in self._mounts:
            if normalized == mount.prefix or normalized.startswith(
                    mount.prefix.rstrip("/") + "/") or mount.prefix == "/":
                if mount.prefix == "/":
                    relative = normalized
                else:
                    relative = normalized[len(mount.prefix.rstrip("/")):] or "/"
                if len(self._resolve_cache) > 4096:
                    self._resolve_cache.clear()
                self._resolve_cache[normalized] = (mount.vfs, relative)
                return mount.vfs, relative
        raise fs_error(Errno.ENOENT, f"no file system mounted for {path!r}")

    # -------------------------------------------------------------- resolution --
    def _charge(self, primitive: str, *, times: int = 1) -> None:
        if self.clock is not None:
            self.clock.charge(primitive, times=times)

    def _walk(self, vfs: VFSOperations, relative: str, cred: Credentials,
              stop_before_last: bool) -> tuple[Vnode, str | None]:
        """Walk *relative* inside *vfs*; optionally stop at the parent."""

        cache = self._split_cache
        try:
            parts = cache[relative]
        except KeyError:
            parts = [part for part in relative.split("/") if part]
            # Token-carrying names give these strings unbounded cardinality,
            # so the cache is cleared when full rather than grown.
            if len(cache) > 4096:
                cache.clear()
            cache[relative] = parts
        vnode = vfs.root_vnode()
        if not parts:
            return vnode, None
        walk_parts = parts[:-1] if stop_before_last else parts
        last = parts[-1] if stop_before_last else None
        for part in walk_parts:
            vnode = vfs.fs_lookup(vnode, part, cred)
        return vnode, last

    def _compile_walk_profile(self, vfs: VFSOperations) -> tuple | None:
        """Resolve and memoize *vfs*'s per-lookup charge pattern."""

        raw = vfs.walk_profile()
        if raw is None:
            profile = None
        else:
            clock, events, anchor = raw
            compiled = clock.compile_charges(events) \
                if clock is not None and events else None
            profile = (clock, compiled, anchor) \
                if compiled is not None or clock is None else None
            if clock is not None and not events:
                # A clocked stack that charges nothing per lookup still
                # caches; there is just nothing to replay.
                profile = (clock, None, anchor)
        self._walk_profiles[vfs] = profile
        return profile

    def _resolve_parent(self, path: str, cred: Credentials):
        # Tokens ride only in the *final* component, and that component is
        # always looked up live -- so the cache keys on the parent
        # directory, not the full path.  (A full-path key would miss on
        # every freshly minted token even though the walked chain is the
        # same few directories over and over.)
        normalized = _normalize(path)
        parent_dir, _, name = normalized.rpartition("/")
        if name:
            try:
                (anchor, version, vfs, parent, clock, compiled, depth,
                 owner) = self._parent_cache[(parent_dir or "/", cred.uid)]
            except KeyError:
                pass
            else:
                if anchor.dir_version == version \
                        and (owner is cred or owner == cred):
                    if compiled is not None:
                        clock.charge_batch(compiled, depth)
                    return vfs, parent, name
        try:
            vfs, relative = self._resolve_cache[normalized]
        except KeyError:
            vfs, relative = self.mounted_vfs(path)
        parent, name = self._walk(vfs, relative, cred, stop_before_last=True)
        if name is None:
            raise fs_error(Errno.EINVAL, f"path {path!r} has no final component")
        profile = self._walk_profiles.get(vfs, _PROFILE_UNSET)
        if profile is _PROFILE_UNSET:
            profile = self._compile_walk_profile(vfs)
        if profile is not None:
            parts = self._split_cache[relative]
            depth = len(parts) - 1
            # A token anywhere in the walked chain would skip its
            # validation upcall on replay, so such parents are never
            # cached (the final component is not part of the key).
            if ";" not in parent_dir:
                clock, compiled, anchor = profile
                if len(self._parent_cache) > 4096:
                    self._parent_cache.clear()
                self._parent_cache[(parent_dir or "/", cred.uid)] = (
                    anchor, anchor.dir_version, vfs, parent,
                    clock, compiled, depth, cred)
        return vfs, parent, name

    def _store_lookup(self, path: str, cred: Credentials, vfs, vnode) -> None:
        """Store-side of the full-resolution cache (miss path only)."""

        profile = self._walk_profiles.get(vfs, _PROFILE_UNSET)
        if profile is _PROFILE_UNSET:
            profile = self._compile_walk_profile(vfs)
        if profile is None:
            return
        clock, compiled, anchor = profile
        bversion = getattr(anchor, "bind_version", None)
        if bversion is None:
            return
        try:
            relative = self._resolve_cache[path][1]
        except KeyError:
            relative = self.mounted_vfs(path)[1]
        if ";" in relative:
            # Token validation upcalls must stay live; never cache a
            # token-carrying path end to end.
            return
        parts = self._split_cache.get(relative)
        if parts is None:
            parts = [part for part in relative.split("/") if part]
        cache = self._lookup_cache
        if len(cache) > 4096:
            cache.clear()
        cache[(path, cred.uid)] = (anchor, anchor.dir_version, bversion, vfs,
                                   vnode, clock, compiled, len(parts), cred)

    def _lookup(self, path: str, cred: Credentials) -> tuple[VFSOperations, Vnode]:
        """Resolve *path* to its final vnode through the full cache.

        A hit replays the walk's entire charge pattern (every component
        including the final lookup) in one batch; it is valid only while
        the anchor's ``dir_version`` (directory chain) and ``bind_version``
        (final binding) both stand still.
        """

        try:
            (anchor, dversion, bversion, vfs, vnode, clock, compiled,
             cycles, owner) = self._lookup_cache[(path, cred.uid)]
        except KeyError:
            pass
        else:
            if (anchor.dir_version == dversion
                    and anchor.bind_version == bversion
                    and (owner is cred or owner == cred)):
                if compiled is not None:
                    clock.charge_batch(compiled, cycles)
                return vfs, vnode
        vfs, parent, name = self._resolve_parent(path, cred)
        vnode = vfs.fs_lookup(parent, name, cred)
        self._store_lookup(path, cred, vfs, vnode)
        return vfs, vnode

    def _resolve(self, path: str, cred: Credentials) -> tuple[VFSOperations, Vnode]:
        # Full resolution is parent resolution plus one live ``fs_lookup``
        # of the final component: the charge sequence is identical to
        # walking every component (pattern x (depth-1), then pattern x 1).
        # Between binding changes the whole resolution replays from the
        # full-resolution cache; any create/remove/rename on the anchor
        # falls back to the live path, so token validation upcalls and
        # ENOENT behavior are exactly those of an uncached walk.
        try:
            return self._lookup(path, cred)
        except FileSystemError as error:
            if error.errno is not Errno.EINVAL:
                raise
            # The mount root itself has no final component; walk it live.
            vfs, relative = self.mounted_vfs(path)
            vnode, _ = self._walk(vfs, relative, cred, stop_before_last=False)
            return vfs, vnode

    # ----------------------------------------------------------------- syscalls --
    def open(self, path: str, flags: OpenFlags, cred: Credentials,
             mode: int = DEFAULT_FILE_MODE) -> int:
        """Open *path* and return a file descriptor.

        The final path component may carry an embedded DataLinks access token
        (``name;token=...``); it is passed verbatim to ``fs_lookup`` so a DLFS
        layer can validate it.
        """

        clock = self.clock
        if clock is not None:
            if self._primed_clock is not clock:
                try:
                    self._amt_syscall = clock._units["syscall_base"]
                except KeyError:
                    self._amt_syscall = clock.costs.syscall_base
                self._primed_clock = clock
            amount = self._amt_syscall
            clock._now += amount
            cells = clock.stats._cells
            try:
                cell = cells["syscall_base"]
                cell[0] += 1
                cell[1] += amount
            except KeyError:
                cells["syscall_base"] = [1, amount]
            mirror = clock._mirror_stats
            if mirror is not None:
                mcells = mirror._cells
                try:
                    cell = mcells["syscall_base"]
                    cell[0] += 1
                    cell[1] += amount
                except KeyError:
                    mcells["syscall_base"] = [1, amount]
        # Probe the full-resolution cache inline: open() needs the parent
        # vnode when it has to fall back to fs_create, so it cannot use
        # the _lookup() wrapper (a second parent resolution would replay
        # the walk's charges twice).
        hit = False
        try:
            (anchor, dversion, bversion, vfs, vnode, cclock, compiled,
             cycles, owner) = self._lookup_cache[(path, cred.uid)]
        except KeyError:
            pass
        else:
            if (anchor.dir_version == dversion
                    and anchor.bind_version == bversion
                    and (owner is cred or owner == cred)):
                hit = True
                if compiled is not None:
                    cclock.charge_batch(compiled, cycles)
        if not hit:
            vfs, parent, name = self._resolve_parent(path, cred)
            try:
                vnode = vfs.fs_lookup(parent, name, cred)
            except FileSystemError as error:
                if error.errno is not Errno.ENOENT or not (flags._value_ & CREATE_MASK):
                    raise
                vnode = vfs.fs_create(parent, name, mode, cred)
            else:
                self._store_lookup(path, cred, vfs, vnode)
        handle = vfs.fs_open(vnode, flags, cred)
        fd = self._next_fd
        self._next_fd += 1
        self._open_files[fd] = OpenFile(fd=fd, path=_normalize_path_for_table(path),
                                        vfs=vfs, vnode=vnode, handle=handle,
                                        flags=flags, cred=cred)
        return fd

    def close(self, fd: int) -> None:
        clock = self.clock
        if clock is not None:
            if self._primed_clock is not clock:
                try:
                    self._amt_syscall = clock._units["syscall_base"]
                except KeyError:
                    self._amt_syscall = clock.costs.syscall_base
                self._primed_clock = clock
            amount = self._amt_syscall
            clock._now += amount
            cells = clock.stats._cells
            try:
                cell = cells["syscall_base"]
                cell[0] += 1
                cell[1] += amount
            except KeyError:
                cells["syscall_base"] = [1, amount]
            mirror = clock._mirror_stats
            if mirror is not None:
                mcells = mirror._cells
                try:
                    cell = mcells["syscall_base"]
                    cell[0] += 1
                    cell[1] += amount
                except KeyError:
                    mcells["syscall_base"] = [1, amount]
        open_file = self._require_fd(fd)
        open_file.vfs.fs_close(open_file.handle, open_file.cred)
        del self._open_files[fd]

    def read(self, fd: int, length: int = -1) -> bytes:
        clock = self.clock
        if clock is not None:
            if self._primed_clock is not clock:
                try:
                    self._amt_syscall = clock._units["syscall_base"]
                except KeyError:
                    self._amt_syscall = clock.costs.syscall_base
                self._primed_clock = clock
            amount = self._amt_syscall
            clock._now += amount
            cells = clock.stats._cells
            try:
                cell = cells["syscall_base"]
                cell[0] += 1
                cell[1] += amount
            except KeyError:
                cells["syscall_base"] = [1, amount]
            mirror = clock._mirror_stats
            if mirror is not None:
                mcells = mirror._cells
                try:
                    cell = mcells["syscall_base"]
                    cell[0] += 1
                    cell[1] += amount
                except KeyError:
                    mcells["syscall_base"] = [1, amount]
        open_file = self._require_fd(fd)
        if not (open_file.flags._value_ & READ_MASK):
            raise fs_error(Errno.EBADF, f"fd {fd} is not open for reading")
        if length < 0:
            attrs = open_file.vfs.fs_getattr(open_file.vnode, open_file.cred)
            length = attrs.size - open_file.offset
            if length < 0:
                length = 0
        data = open_file.vfs.fs_readwrite(open_file.vnode, open_file.offset,
                                          length=length, write=False,
                                          cred=open_file.cred)
        open_file.offset += len(data)
        return data

    def write(self, fd: int, data: bytes) -> int:
        clock = self.clock
        if clock is not None:
            if self._primed_clock is not clock:
                try:
                    self._amt_syscall = clock._units["syscall_base"]
                except KeyError:
                    self._amt_syscall = clock.costs.syscall_base
                self._primed_clock = clock
            amount = self._amt_syscall
            clock._now += amount
            cells = clock.stats._cells
            try:
                cell = cells["syscall_base"]
                cell[0] += 1
                cell[1] += amount
            except KeyError:
                cells["syscall_base"] = [1, amount]
            mirror = clock._mirror_stats
            if mirror is not None:
                mcells = mirror._cells
                try:
                    cell = mcells["syscall_base"]
                    cell[0] += 1
                    cell[1] += amount
                except KeyError:
                    mcells["syscall_base"] = [1, amount]
        open_file = self._require_fd(fd)
        if not (open_file.flags._value_ & WRITE_MASK):
            raise fs_error(Errno.EBADF, f"fd {fd} is not open for writing")
        if open_file.flags._value_ & APPEND_MASK:
            attrs = open_file.vfs.fs_getattr(open_file.vnode, open_file.cred)
            open_file.offset = attrs.size
        written = open_file.vfs.fs_readwrite(open_file.vnode, open_file.offset,
                                             data=data, write=True,
                                             cred=open_file.cred)
        open_file.offset += written
        return written

    def lseek(self, fd: int, offset: int) -> int:
        self._charge("syscall_base")
        open_file = self._require_fd(fd)
        if offset < 0:
            raise fs_error(Errno.EINVAL, "negative seek offset")
        open_file.offset = offset
        return offset

    def stat(self, path: str, cred: Credentials) -> FileAttributes:
        clock = self.clock
        if clock is not None:
            if self._primed_clock is not clock:
                try:
                    self._amt_syscall = clock._units["syscall_base"]
                except KeyError:
                    self._amt_syscall = clock.costs.syscall_base
                self._primed_clock = clock
            amount = self._amt_syscall
            clock._now += amount
            cells = clock.stats._cells
            try:
                cell = cells["syscall_base"]
                cell[0] += 1
                cell[1] += amount
            except KeyError:
                cells["syscall_base"] = [1, amount]
            mirror = clock._mirror_stats
            if mirror is not None:
                mcells = mirror._cells
                try:
                    cell = mcells["syscall_base"]
                    cell[0] += 1
                    cell[1] += amount
                except KeyError:
                    mcells["syscall_base"] = [1, amount]
        vfs, vnode = self._resolve(path, cred)
        return vfs.fs_getattr(vnode, cred)

    def fstat(self, fd: int) -> FileAttributes:
        open_file = self._require_fd(fd)
        return open_file.vfs.fs_getattr(open_file.vnode, open_file.cred)

    def exists(self, path: str, cred: Credentials) -> bool:
        try:
            self.stat(path, cred)
            return True
        except FileSystemError:
            return False

    def unlink(self, path: str, cred: Credentials) -> None:
        self._charge("syscall_base")
        vfs, parent, name = self._resolve_parent(path, cred)
        vfs.fs_remove(parent, name, cred)

    def rename(self, old_path: str, new_path: str, cred: Credentials) -> None:
        self._charge("syscall_base")
        old_vfs, old_parent, old_name = self._resolve_parent(old_path, cred)
        new_vfs, new_parent, new_name = self._resolve_parent(new_path, cred)
        if old_vfs is not new_vfs:
            raise fs_error(Errno.EXDEV, "rename across file systems")
        old_vfs.fs_rename(old_parent, old_name, new_parent, new_name, cred)

    def mkdir(self, path: str, cred: Credentials, mode: int = DEFAULT_DIR_MODE) -> None:
        self._charge("syscall_base")
        vfs, parent, name = self._resolve_parent(path, cred)
        vfs.fs_mkdir(parent, name, mode, cred)

    def makedirs(self, path: str, cred: Credentials, mode: int = DEFAULT_DIR_MODE) -> None:
        """Create *path* and any missing ancestors (no error when they exist)."""

        normalized = _normalize(path)
        parts = [part for part in normalized.split("/") if part]
        current = ""
        for part in parts:
            current = f"{current}/{part}"
            try:
                self.mkdir(current, cred, mode)
            except FileSystemError as error:
                if error.errno is not Errno.EEXIST:
                    raise

    def rmdir(self, path: str, cred: Credentials) -> None:
        self._charge("syscall_base")
        vfs, parent, name = self._resolve_parent(path, cred)
        vfs.fs_rmdir(parent, name, cred)

    def listdir(self, path: str, cred: Credentials) -> list[str]:
        self._charge("syscall_base")
        vfs, vnode = self._resolve(path, cred)
        return vfs.fs_readdir(vnode, cred)

    def chmod(self, path: str, mode: int, cred: Credentials) -> None:
        clock = self.clock
        if clock is not None:
            if self._primed_clock is not clock:
                try:
                    self._amt_syscall = clock._units["syscall_base"]
                except KeyError:
                    self._amt_syscall = clock.costs.syscall_base
                self._primed_clock = clock
            amount = self._amt_syscall
            clock._now += amount
            cells = clock.stats._cells
            try:
                cell = cells["syscall_base"]
                cell[0] += 1
                cell[1] += amount
            except KeyError:
                cells["syscall_base"] = [1, amount]
            mirror = clock._mirror_stats
            if mirror is not None:
                mcells = mirror._cells
                try:
                    cell = mcells["syscall_base"]
                    cell[0] += 1
                    cell[1] += amount
                except KeyError:
                    mcells["syscall_base"] = [1, amount]
        vfs, vnode = self._resolve(path, cred)
        vfs.fs_setattr(vnode, cred, mode=mode)

    def chown(self, path: str, uid: int, gid: int, cred: Credentials) -> None:
        clock = self.clock
        if clock is not None:
            if self._primed_clock is not clock:
                try:
                    self._amt_syscall = clock._units["syscall_base"]
                except KeyError:
                    self._amt_syscall = clock.costs.syscall_base
                self._primed_clock = clock
            amount = self._amt_syscall
            clock._now += amount
            cells = clock.stats._cells
            try:
                cell = cells["syscall_base"]
                cell[0] += 1
                cell[1] += amount
            except KeyError:
                cells["syscall_base"] = [1, amount]
            mirror = clock._mirror_stats
            if mirror is not None:
                mcells = mirror._cells
                try:
                    cell = mcells["syscall_base"]
                    cell[0] += 1
                    cell[1] += amount
                except KeyError:
                    mcells["syscall_base"] = [1, amount]
        vfs, vnode = self._resolve(path, cred)
        vfs.fs_setattr(vnode, cred, uid=uid, gid=gid)

    def truncate(self, path: str, size: int, cred: Credentials) -> None:
        self._charge("syscall_base")
        vfs, vnode = self._resolve(path, cred)
        vfs.fs_setattr(vnode, cred, size=size)

    def lock_file(self, fd: int, exclusive: bool = True) -> bool:
        """Take a whole-file advisory lock on behalf of this descriptor."""

        self._charge("syscall_base")
        open_file = self._require_fd(fd)
        kind = LockKind.EXCLUSIVE if exclusive else LockKind.SHARED
        request = LockRequest(kind=kind, owner=("fd", fd))
        return open_file.vfs.fs_lockctl(open_file.vnode, request, open_file.cred)

    def unlock_file(self, fd: int) -> None:
        self._charge("syscall_base")
        open_file = self._require_fd(fd)
        request = LockRequest(kind=LockKind.UNLOCK, owner=("fd", fd))
        open_file.vfs.fs_lockctl(open_file.vnode, request, open_file.cred)

    # --------------------------------------------------------------- convenience --
    def read_file(self, path: str, cred: Credentials) -> bytes:
        """Open, fully read, and close *path*."""

        fd = self.open(path, OpenFlags.READ, cred)
        try:
            return self.read(fd)
        finally:
            self.close(fd)

    def write_file(self, path: str, data: bytes, cred: Credentials,
                   create: bool = True) -> int:
        """Open (creating/truncating), write *data*, and close *path*."""

        flags = _WRITE_TRUNC_CREATE if create else _WRITE_TRUNC
        fd = self.open(path, flags, cred)
        try:
            return self.write(fd, data)
        finally:
            self.close(fd)

    def open_file_entry(self, fd: int) -> OpenFile:
        """Expose an open-file-table entry (used by tests and the DataLinks API)."""

        return self._require_fd(fd)

    def open_descriptors(self) -> list[int]:
        return sorted(self._open_files)

    def _require_fd(self, fd: int) -> OpenFile:
        try:
            return self._open_files[fd]
        except KeyError:
            raise fs_error(Errno.EBADF, f"bad file descriptor {fd}") from None


@functools.lru_cache(maxsize=8192)
def _normalize_path_for_table(path: str) -> str:
    """Strip an embedded token from the final component for bookkeeping."""

    from repro.util.urls import split_token_from_name

    normalized = _normalize(path)
    parent, _, name = normalized.rpartition("/")
    bare, _ = split_token_from_name(name)
    return f"{parent}/{bare}" if parent else f"/{bare}"
