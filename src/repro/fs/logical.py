"""The logical file system (LFS): path resolution, file descriptors, syscalls.

Applications use this layer exactly like the POSIX API: ``open`` returns a
file descriptor, ``read``/``write`` move an offset, ``close`` releases it.
Internally ``open`` is decoupled into ``fs_lookup`` followed by ``fs_open``
against the mounted VFS stack, which is the structural property DataLinks
token handling has to work around (Section 4.1 of the paper).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

from repro.errors import Errno, FileSystemError, fs_error
from repro.fs.inode import DEFAULT_DIR_MODE, DEFAULT_FILE_MODE, FileAttributes
from repro.fs.vfs import (
    Credentials,
    LockKind,
    LockRequest,
    OpenFlags,
    OpenHandle,
    VFSOperations,
    Vnode,
)


@dataclass(slots=True)
class OpenFile:
    """One entry of the system open-file table."""

    fd: int
    path: str
    vfs: VFSOperations
    vnode: Vnode
    handle: OpenHandle
    flags: OpenFlags
    cred: Credentials
    offset: int = 0


@dataclass(slots=True)
class _Mount:
    prefix: str
    vfs: VFSOperations


@functools.lru_cache(maxsize=8192)
def _normalize(path: str) -> str:
    """Normalize an absolute path (memoized -- the same few hundred paths
    are re-resolved on every operation of a workload)."""

    if not path.startswith("/"):
        raise fs_error(Errno.EINVAL, f"path must be absolute: {path!r}")
    parts = [part for part in path.split("/") if part not in ("", ".")]
    return "/" + "/".join(parts)


def _split(path: str) -> tuple[str, str]:
    """Split into (parent directory, final component)."""

    normalized = _normalize(path)
    if normalized == "/":
        raise fs_error(Errno.EINVAL, "cannot split the root path")
    parent, _, name = normalized.rpartition("/")
    return (parent or "/", name)


class LogicalFileSystem:
    """Mount table + open-file table + the system-call API."""

    def __init__(self, clock=None):
        self.clock = clock
        self._mounts: list[_Mount] = []
        self._open_files: dict[int, OpenFile] = {}
        self._next_fd = 3          # 0..2 are conventionally reserved
        # normalized path -> (vfs, relative); invalidated on mount().  Paths
        # may embed access tokens (unbounded cardinality), so the cache is
        # cleared rather than grown past a fixed bound.
        self._resolve_cache: dict[str, tuple[VFSOperations, str]] = {}
        self._split_cache: dict[str, list[str]] = {}

    # ------------------------------------------------------------------ mounts --
    def mount(self, prefix: str, vfs: VFSOperations) -> None:
        """Mount *vfs* at *prefix* (longest-prefix match wins at resolution)."""

        prefix = _normalize(prefix)
        self._mounts.append(_Mount(prefix=prefix, vfs=vfs))
        self._mounts.sort(key=lambda mount: len(mount.prefix), reverse=True)
        self._resolve_cache.clear()

    def mounted_vfs(self, path: str) -> tuple[VFSOperations, str]:
        """Return ``(vfs, path relative to the mount root)`` for *path*."""

        normalized = _normalize(path)
        cached = self._resolve_cache.get(normalized)
        if cached is not None:
            return cached
        for mount in self._mounts:
            if normalized == mount.prefix or normalized.startswith(
                    mount.prefix.rstrip("/") + "/") or mount.prefix == "/":
                if mount.prefix == "/":
                    relative = normalized
                else:
                    relative = normalized[len(mount.prefix.rstrip("/")):] or "/"
                if len(self._resolve_cache) > 4096:
                    self._resolve_cache.clear()
                self._resolve_cache[normalized] = (mount.vfs, relative)
                return mount.vfs, relative
        raise fs_error(Errno.ENOENT, f"no file system mounted for {path!r}")

    # -------------------------------------------------------------- resolution --
    def _charge(self, primitive: str, *, times: int = 1) -> None:
        if self.clock is not None:
            self.clock.charge(primitive, times=times)

    def _walk(self, vfs: VFSOperations, relative: str, cred: Credentials,
              stop_before_last: bool) -> tuple[Vnode, str | None]:
        """Walk *relative* inside *vfs*; optionally stop at the parent."""

        cache = self._split_cache
        parts = cache.get(relative)
        if parts is None:
            parts = [part for part in relative.split("/") if part]
            # Token-carrying names give these strings unbounded cardinality,
            # so the cache is cleared when full rather than grown.
            if len(cache) > 4096:
                cache.clear()
            cache[relative] = parts
        vnode = vfs.root_vnode()
        if not parts:
            return vnode, None
        walk_parts = parts[:-1] if stop_before_last else parts
        for part in walk_parts:
            vnode = vfs.fs_lookup(vnode, part, cred)
        return vnode, (parts[-1] if stop_before_last else None)

    def _resolve_parent(self, path: str, cred: Credentials):
        vfs, relative = self.mounted_vfs(path)
        parent, name = self._walk(vfs, relative, cred, stop_before_last=True)
        if name is None:
            raise fs_error(Errno.EINVAL, f"path {path!r} has no final component")
        return vfs, parent, name

    def _resolve(self, path: str, cred: Credentials) -> tuple[VFSOperations, Vnode]:
        vfs, relative = self.mounted_vfs(path)
        vnode, _ = self._walk(vfs, relative, cred, stop_before_last=False)
        return vfs, vnode

    # ----------------------------------------------------------------- syscalls --
    def open(self, path: str, flags: OpenFlags, cred: Credentials,
             mode: int = DEFAULT_FILE_MODE) -> int:
        """Open *path* and return a file descriptor.

        The final path component may carry an embedded DataLinks access token
        (``name;token=...``); it is passed verbatim to ``fs_lookup`` so a DLFS
        layer can validate it.
        """

        self._charge("syscall_base")
        vfs, parent, name = self._resolve_parent(path, cred)
        try:
            vnode = vfs.fs_lookup(parent, name, cred)
        except FileSystemError as error:
            if error.errno is not Errno.ENOENT or not (flags & OpenFlags.CREATE):
                raise
            vnode = vfs.fs_create(parent, name, mode, cred)
        handle = vfs.fs_open(vnode, flags, cred)
        fd = self._next_fd
        self._next_fd += 1
        self._open_files[fd] = OpenFile(fd=fd, path=_normalize_path_for_table(path),
                                        vfs=vfs, vnode=vnode, handle=handle,
                                        flags=flags, cred=cred)
        return fd

    def close(self, fd: int) -> None:
        self._charge("syscall_base")
        open_file = self._require_fd(fd)
        open_file.vfs.fs_close(open_file.handle, open_file.cred)
        del self._open_files[fd]

    def read(self, fd: int, length: int = -1) -> bytes:
        self._charge("syscall_base")
        open_file = self._require_fd(fd)
        if not open_file.flags.wants_read:
            raise fs_error(Errno.EBADF, f"fd {fd} is not open for reading")
        if length < 0:
            attrs = open_file.vfs.fs_getattr(open_file.vnode, open_file.cred)
            length = max(0, attrs.size - open_file.offset)
        data = open_file.vfs.fs_readwrite(open_file.vnode, open_file.offset,
                                          length=length, write=False,
                                          cred=open_file.cred)
        open_file.offset += len(data)
        return data

    def write(self, fd: int, data: bytes) -> int:
        self._charge("syscall_base")
        open_file = self._require_fd(fd)
        if not open_file.flags.wants_write:
            raise fs_error(Errno.EBADF, f"fd {fd} is not open for writing")
        if open_file.flags & OpenFlags.APPEND:
            attrs = open_file.vfs.fs_getattr(open_file.vnode, open_file.cred)
            open_file.offset = attrs.size
        written = open_file.vfs.fs_readwrite(open_file.vnode, open_file.offset,
                                             data=data, write=True,
                                             cred=open_file.cred)
        open_file.offset += written
        return written

    def lseek(self, fd: int, offset: int) -> int:
        self._charge("syscall_base")
        open_file = self._require_fd(fd)
        if offset < 0:
            raise fs_error(Errno.EINVAL, "negative seek offset")
        open_file.offset = offset
        return offset

    def stat(self, path: str, cred: Credentials) -> FileAttributes:
        self._charge("syscall_base")
        vfs, vnode = self._resolve(path, cred)
        return vfs.fs_getattr(vnode, cred)

    def fstat(self, fd: int) -> FileAttributes:
        open_file = self._require_fd(fd)
        return open_file.vfs.fs_getattr(open_file.vnode, open_file.cred)

    def exists(self, path: str, cred: Credentials) -> bool:
        try:
            self.stat(path, cred)
            return True
        except FileSystemError:
            return False

    def unlink(self, path: str, cred: Credentials) -> None:
        self._charge("syscall_base")
        vfs, parent, name = self._resolve_parent(path, cred)
        vfs.fs_remove(parent, name, cred)

    def rename(self, old_path: str, new_path: str, cred: Credentials) -> None:
        self._charge("syscall_base")
        old_vfs, old_parent, old_name = self._resolve_parent(old_path, cred)
        new_vfs, new_parent, new_name = self._resolve_parent(new_path, cred)
        if old_vfs is not new_vfs:
            raise fs_error(Errno.EXDEV, "rename across file systems")
        old_vfs.fs_rename(old_parent, old_name, new_parent, new_name, cred)

    def mkdir(self, path: str, cred: Credentials, mode: int = DEFAULT_DIR_MODE) -> None:
        self._charge("syscall_base")
        vfs, parent, name = self._resolve_parent(path, cred)
        vfs.fs_mkdir(parent, name, mode, cred)

    def makedirs(self, path: str, cred: Credentials, mode: int = DEFAULT_DIR_MODE) -> None:
        """Create *path* and any missing ancestors (no error when they exist)."""

        normalized = _normalize(path)
        parts = [part for part in normalized.split("/") if part]
        current = ""
        for part in parts:
            current = f"{current}/{part}"
            try:
                self.mkdir(current, cred, mode)
            except FileSystemError as error:
                if error.errno is not Errno.EEXIST:
                    raise

    def rmdir(self, path: str, cred: Credentials) -> None:
        self._charge("syscall_base")
        vfs, parent, name = self._resolve_parent(path, cred)
        vfs.fs_rmdir(parent, name, cred)

    def listdir(self, path: str, cred: Credentials) -> list[str]:
        self._charge("syscall_base")
        vfs, vnode = self._resolve(path, cred)
        return vfs.fs_readdir(vnode, cred)

    def chmod(self, path: str, mode: int, cred: Credentials) -> None:
        self._charge("syscall_base")
        vfs, vnode = self._resolve(path, cred)
        vfs.fs_setattr(vnode, cred, mode=mode)

    def chown(self, path: str, uid: int, gid: int, cred: Credentials) -> None:
        self._charge("syscall_base")
        vfs, vnode = self._resolve(path, cred)
        vfs.fs_setattr(vnode, cred, uid=uid, gid=gid)

    def truncate(self, path: str, size: int, cred: Credentials) -> None:
        self._charge("syscall_base")
        vfs, vnode = self._resolve(path, cred)
        vfs.fs_setattr(vnode, cred, size=size)

    def lock_file(self, fd: int, exclusive: bool = True) -> bool:
        """Take a whole-file advisory lock on behalf of this descriptor."""

        self._charge("syscall_base")
        open_file = self._require_fd(fd)
        kind = LockKind.EXCLUSIVE if exclusive else LockKind.SHARED
        request = LockRequest(kind=kind, owner=("fd", fd))
        return open_file.vfs.fs_lockctl(open_file.vnode, request, open_file.cred)

    def unlock_file(self, fd: int) -> None:
        self._charge("syscall_base")
        open_file = self._require_fd(fd)
        request = LockRequest(kind=LockKind.UNLOCK, owner=("fd", fd))
        open_file.vfs.fs_lockctl(open_file.vnode, request, open_file.cred)

    # --------------------------------------------------------------- convenience --
    def read_file(self, path: str, cred: Credentials) -> bytes:
        """Open, fully read, and close *path*."""

        fd = self.open(path, OpenFlags.READ, cred)
        try:
            return self.read(fd)
        finally:
            self.close(fd)

    def write_file(self, path: str, data: bytes, cred: Credentials,
                   create: bool = True) -> int:
        """Open (creating/truncating), write *data*, and close *path*."""

        flags = OpenFlags.WRITE | OpenFlags.TRUNCATE
        if create:
            flags |= OpenFlags.CREATE
        fd = self.open(path, flags, cred)
        try:
            return self.write(fd, data)
        finally:
            self.close(fd)

    def open_file_entry(self, fd: int) -> OpenFile:
        """Expose an open-file-table entry (used by tests and the DataLinks API)."""

        return self._require_fd(fd)

    def open_descriptors(self) -> list[int]:
        return sorted(self._open_files)

    def _require_fd(self, fd: int) -> OpenFile:
        try:
            return self._open_files[fd]
        except KeyError:
            raise fs_error(Errno.EBADF, f"bad file descriptor {fd}") from None


def _normalize_path_for_table(path: str) -> str:
    """Strip an embedded token from the final component for bookkeeping."""

    from repro.util.urls import split_token_from_name

    normalized = _normalize(path)
    parent, _, name = normalized.rpartition("/")
    bare, _ = split_token_from_name(name)
    return f"{parent}/{bare}" if parent else f"/{bare}"
