"""The physical (native) file system -- the JFS/UFS stand-in.

Implements every VFS entry point over inodes and a block device, with
standard UNIX permission checks.  This is the layer DLFS sits on top of; it
knows nothing about DataLinks.

Every entry point charges its fixed primitives straight into the clock's
stats cells (the body of :meth:`repro.simclock.SimClock.charge` written
out): the VFS layer is the single hottest surface of the simulator and the
call overhead of routing each fixed-cost event through the scalar charge
path dominated whole-experiment profiles.  The inlined bookkeeping performs
the identical float additions in the identical order, so simulated clocks
and stats stay bit-identical to the scalar path.
"""

from __future__ import annotations

from repro.errors import Errno, fs_error
from repro.fs.blockdev import BlockDevice
from repro.fs.inode import (
    DEFAULT_DIR_MODE,
    DEFAULT_FILE_MODE,
    FileType,
    Inode,
    permission_granted,
)
from repro.fs.locks import FileLockTable
from repro.fs.vfs import (
    READ_MASK,
    TRUNCATE_MASK,
    WRITE_MASK,
    Credentials,
    LockRequest,
    OpenFlags,
    OpenHandle,
    VFSOperations,
    Vnode,
)

ROOT_INO = 1


class PhysicalFileSystem(VFSOperations):
    """An inode-based file system on a simulated block device."""

    def __init__(self, name: str = "pfs0", device: BlockDevice | None = None,
                 clock=None, root_uid: int = 0, root_gid: int = 0):
        self.fs_id = name
        self.device = device if device is not None else BlockDevice(name=f"{name}-disk")
        self.clock = clock
        self.locks = FileLockTable()
        self._inodes: dict[int, Inode] = {}
        self._next_ino = ROOT_INO
        #: Invalidation counter for the logical layer's resolution caches.
        #: It bumps only when a *directory* binding or a directory's
        #: permissions change: cached walks resolve directory chains, so
        #: file creates/removes/renames -- the overwhelmingly common
        #: mutations on a busy server -- never invalidate parent
        #: resolutions.
        self.dir_version = 0
        #: Companion counter for *final-component* bindings: bumped on
        #: every create/remove/rename (file or directory).  The logical
        #: layer's full-resolution cache checks both counters, so a cached
        #: final vnode never survives its name being rebound.
        self.bind_version = 0
        # Per-clock pre-resolved charge amounts (see ``_prime``).
        self._primed_clock = None
        self._amt_vfs = 0.0
        self._amt_lookup = 0.0
        self._amt_meta = 0.0
        self._amt_seek = 0.0
        self._unit_transfer = 0.0
        root = self._new_inode(FileType.DIRECTORY, DEFAULT_DIR_MODE, root_uid, root_gid)
        assert root.ino == ROOT_INO

    # ------------------------------------------------------------------ helpers --
    def _prime(self, clock) -> None:
        """Resolve this clock's per-event amounts for the fixed primitives.

        The amounts equal exactly what one scalar ``charge(primitive)``
        would add (``unit * 1 * 1.0``), so replaying them inline is
        bit-identical to the scalar path.
        """

        entries = clock.compile_charges(
            (("vfs_op", 1.0, None), ("directory_lookup", 1.0, None),
             ("fs_metadata_update", 1.0, None), ("disk_seek", 1.0, None)))[1]
        self._amt_vfs = entries[0][0]
        self._amt_lookup = entries[1][0]
        self._amt_meta = entries[2][0]
        self._amt_seek = entries[3][0]
        try:
            self._unit_transfer = clock._units["disk_transfer_per_byte"]
        except KeyError:
            self._unit_transfer = getattr(clock.costs, "disk_transfer_per_byte")
        self._primed_clock = clock

    def _now(self) -> float:
        clock = self.clock
        return clock._now if clock is not None else 0.0

    def _charge(self, primitive: str, *, times: int = 1, nbytes: int = 0) -> None:
        if self.clock is not None:
            self.clock.charge(primitive, times=times, nbytes=nbytes)

    def _new_inode(self, ftype: FileType, mode: int, uid: int, gid: int) -> Inode:
        # One clock read: birth timestamps are all stamped at the same
        # instant (no charge can land between the three reads).
        clock = self.clock
        born = clock._now if clock is not None else 0.0
        inode = Inode(ino=self._next_ino, ftype=ftype, mode=mode, uid=uid, gid=gid,
                      atime=born, mtime=born, ctime=born)
        self._inodes[inode.ino] = inode
        self._next_ino += 1
        return inode

    def inode(self, ino: int) -> Inode:
        try:
            return self._inodes[ino]
        except KeyError:
            raise fs_error(Errno.ENOENT, f"stale inode {ino}") from None

    def _inode_of(self, vnode: Vnode) -> Inode:
        return self.inode(vnode.ino)

    def _vnode_of(self, inode: Inode) -> Vnode:
        return Vnode(fs_id=self.fs_id, ino=inode.ino)

    def _check(self, inode: Inode, cred: Credentials, *, read: bool = False,
               write: bool = False, exec_: bool = False) -> None:
        if not permission_granted(inode.mode, inode.uid, inode.gid, cred.uid,
                                  cred.all_groups, read, write, exec_):
            raise fs_error(Errno.EACCES,
                           f"uid {cred.uid} denied on inode {inode.ino} "
                           f"(mode {oct(inode.mode)}, owner {inode.uid})")

    def _require_dir(self, inode: Inode) -> None:
        if inode.ftype is not FileType.DIRECTORY:
            raise fs_error(Errno.ENOTDIR, f"inode {inode.ino} is not a directory")

    def walk_profile(self):
        events = () if self.clock is None else \
            (("vfs_op", 1.0, None), ("directory_lookup", 1.0, None))
        # The anchor is this file system itself: the cache reads the two
        # version counters straight off it (attribute loads, no calls).
        return (self.clock, events, self)

    # ------------------------------------------------------------ directory ops --
    def root_vnode(self) -> Vnode:
        return Vnode(fs_id=self.fs_id, ino=ROOT_INO)

    def fs_lookup(self, dir_vnode: Vnode, name: str, cred: Credentials) -> Vnode:
        # The hottest VFS entry point (every path component of every
        # resolution lands here): helpers *and* the two fixed charges are
        # inlined into direct loads and float additions.
        clock = self.clock
        if clock is not None:
            if self._primed_clock is not clock:
                self._prime(clock)
            amount = self._amt_vfs
            second = self._amt_lookup
            now = clock._now
            now += amount
            now += second
            clock._now = now
            cells = clock.stats._cells
            try:
                cell = cells["vfs_op"]
                cell[0] += 1
                cell[1] += amount
            except KeyError:
                cells["vfs_op"] = [1, amount]
            try:
                cell = cells["directory_lookup"]
                cell[0] += 1
                cell[1] += second
            except KeyError:
                cells["directory_lookup"] = [1, second]
            mirror = clock._mirror_stats
            if mirror is not None:
                mcells = mirror._cells
                try:
                    cell = mcells["vfs_op"]
                    cell[0] += 1
                    cell[1] += amount
                except KeyError:
                    mcells["vfs_op"] = [1, amount]
                try:
                    cell = mcells["directory_lookup"]
                    cell[0] += 1
                    cell[1] += second
                except KeyError:
                    mcells["directory_lookup"] = [1, second]
        try:
            directory = self._inodes[dir_vnode.ino]
        except KeyError:
            raise fs_error(Errno.ENOENT, f"stale inode {dir_vnode.ino}") from None
        if directory.ftype is not FileType.DIRECTORY:
            raise fs_error(Errno.ENOTDIR, f"inode {directory.ino} is not a directory")
        # permission_granted(exec) unrolled: the walk only ever asks for
        # the execute bit, so the three-way owner/group/other dispatch
        # collapses to one mask test.
        uid = cred.uid
        if uid != 0:
            if uid == directory.uid:
                exec_bit = 0o100
            elif directory.gid in cred.all_groups:
                exec_bit = 0o010
            else:
                exec_bit = 0o001
            if not directory.mode & exec_bit:
                raise fs_error(Errno.EACCES,
                               f"uid {uid} denied on inode {directory.ino} "
                               f"(mode {oct(directory.mode)}, owner {directory.uid})")
        if name in (".", ""):
            return dir_vnode
        try:
            ino = directory.entries[name]
        except KeyError:
            raise fs_error(Errno.ENOENT,
                           f"no entry {name!r} in inode {directory.ino}") from None
        return Vnode(fs_id=self.fs_id, ino=ino)

    def _charge_one(self, clock, key: str, amount: float) -> None:
        """Inline-helper twin of ``clock.charge(key)`` for cold call sites.

        Kept as a method (one frame) where the caller is not hot enough to
        justify writing the bookkeeping out; the arithmetic is identical.
        """

        clock._now += amount
        cells = clock.stats._cells
        try:
            cell = cells[key]
            cell[0] += 1
            cell[1] += amount
        except KeyError:
            cells[key] = [1, amount]
        mirror = clock._mirror_stats
        if mirror is not None:
            mcells = mirror._cells
            try:
                cell = mcells[key]
                cell[0] += 1
                cell[1] += amount
            except KeyError:
                mcells[key] = [1, amount]

    def fs_create(self, dir_vnode: Vnode, name: str, mode: int,
                  cred: Credentials) -> Vnode:
        clock = self.clock
        if clock is not None:
            if self._primed_clock is not clock:
                self._prime(clock)
            self._charge_one(clock, "vfs_op", self._amt_vfs)
        try:
            directory = self._inodes[dir_vnode.ino]
        except KeyError:
            raise fs_error(Errno.ENOENT, f"stale inode {dir_vnode.ino}") from None
        if directory.ftype is not FileType.DIRECTORY:
            raise fs_error(Errno.ENOTDIR, f"inode {directory.ino} is not a directory")
        if name in directory.entries:
            # POSIX reports an existing entry before parent write permission.
            raise fs_error(Errno.EEXIST, f"entry {name!r} already exists")
        self._check(directory, cred, write=True, exec_=True)
        self.bind_version += 1
        inode = self._new_inode(FileType.REGULAR, mode or DEFAULT_FILE_MODE,
                                cred.uid, cred.gid)
        directory.entries[name] = inode.ino
        directory.mtime = clock._now if clock is not None else 0.0
        if clock is not None:
            self._charge_one(clock, "fs_metadata_update", self._amt_meta)
        return Vnode(fs_id=self.fs_id, ino=inode.ino)

    def fs_mkdir(self, dir_vnode: Vnode, name: str, mode: int,
                 cred: Credentials) -> Vnode:
        clock = self.clock
        if clock is not None:
            if self._primed_clock is not clock:
                self._prime(clock)
            self._charge_one(clock, "vfs_op", self._amt_vfs)
        try:
            directory = self._inodes[dir_vnode.ino]
        except KeyError:
            raise fs_error(Errno.ENOENT, f"stale inode {dir_vnode.ino}") from None
        if directory.ftype is not FileType.DIRECTORY:
            raise fs_error(Errno.ENOTDIR, f"inode {directory.ino} is not a directory")
        if name in directory.entries:
            # POSIX reports an existing entry before parent write permission.
            raise fs_error(Errno.EEXIST, f"entry {name!r} already exists")
        self._check(directory, cred, write=True, exec_=True)
        self.dir_version += 1
        self.bind_version += 1
        inode = self._new_inode(FileType.DIRECTORY, mode or DEFAULT_DIR_MODE,
                                cred.uid, cred.gid)
        directory.entries[name] = inode.ino
        directory.mtime = clock._now if clock is not None else 0.0
        if clock is not None:
            self._charge_one(clock, "fs_metadata_update", self._amt_meta)
        return Vnode(fs_id=self.fs_id, ino=inode.ino)

    def fs_remove(self, dir_vnode: Vnode, name: str, cred: Credentials) -> None:
        clock = self.clock
        if clock is not None:
            if self._primed_clock is not clock:
                self._prime(clock)
            self._charge_one(clock, "vfs_op", self._amt_vfs)
        try:
            directory = self._inodes[dir_vnode.ino]
        except KeyError:
            raise fs_error(Errno.ENOENT, f"stale inode {dir_vnode.ino}") from None
        if directory.ftype is not FileType.DIRECTORY:
            raise fs_error(Errno.ENOTDIR, f"inode {directory.ino} is not a directory")
        self._check(directory, cred, write=True, exec_=True)
        if name not in directory.entries:
            raise fs_error(Errno.ENOENT, f"no entry {name!r}")
        inode = self.inode(directory.entries[name])
        if inode.ftype is FileType.DIRECTORY:
            raise fs_error(Errno.EISDIR, f"{name!r} is a directory")
        self.bind_version += 1
        del directory.entries[name]
        directory.mtime = clock._now if clock is not None else 0.0
        inode.nlink -= 1
        if inode.nlink <= 0:
            for block in inode.blocks:
                self.device.free_block(block)
            del self._inodes[inode.ino]
        if clock is not None:
            self._charge_one(clock, "fs_metadata_update", self._amt_meta)

    def fs_rmdir(self, dir_vnode: Vnode, name: str, cred: Credentials) -> None:
        self._charge("vfs_op")
        directory = self._inode_of(dir_vnode)
        self._require_dir(directory)
        self._check(directory, cred, write=True, exec_=True)
        if name not in directory.entries:
            raise fs_error(Errno.ENOENT, f"no entry {name!r}")
        target = self.inode(directory.entries[name])
        self._require_dir(target)
        if target.entries:
            raise fs_error(Errno.ENOTEMPTY, f"directory {name!r} is not empty")
        self.dir_version += 1
        self.bind_version += 1
        del directory.entries[name]
        del self._inodes[target.ino]
        directory.mtime = self._now()
        self._charge("fs_metadata_update")

    def fs_rename(self, src_dir: Vnode, src_name: str, dst_dir: Vnode,
                  dst_name: str, cred: Credentials) -> None:
        self._charge("vfs_op")
        source = self._inode_of(src_dir)
        destination = self._inode_of(dst_dir)
        self._require_dir(source)
        self._require_dir(destination)
        self._check(source, cred, write=True, exec_=True)
        self._check(destination, cred, write=True, exec_=True)
        if src_name not in source.entries:
            raise fs_error(Errno.ENOENT, f"no entry {src_name!r}")
        if dst_name in destination.entries:
            raise fs_error(Errno.EEXIST, f"entry {dst_name!r} already exists")
        if self.inode(source.entries[src_name]).ftype is FileType.DIRECTORY:
            self.dir_version += 1
        self.bind_version += 1
        destination.entries[dst_name] = source.entries.pop(src_name)
        source.mtime = self._now()
        destination.mtime = self._now()
        self._charge("fs_metadata_update")

    def fs_readdir(self, dir_vnode: Vnode, cred: Credentials) -> list[str]:
        clock = self.clock
        if clock is not None:
            if self._primed_clock is not clock:
                self._prime(clock)
            self._charge_one(clock, "vfs_op", self._amt_vfs)
        try:
            directory = self._inodes[dir_vnode.ino]
        except KeyError:
            raise fs_error(Errno.ENOENT, f"stale inode {dir_vnode.ino}") from None
        if directory.ftype is not FileType.DIRECTORY:
            raise fs_error(Errno.ENOTDIR, f"inode {directory.ino} is not a directory")
        self._check(directory, cred, read=True)
        return sorted(directory.entries)

    # ------------------------------------------------------------------ file ops --
    def fs_open(self, vnode: Vnode, flags: OpenFlags, cred: Credentials) -> OpenHandle:
        # open/close/readwrite/getattr sit on the per-operation data path:
        # their fixed charges are unrolled like ``fs_lookup``'s, one frame
        # fewer per syscall than the ``_charge_one`` helper.
        clock = self.clock
        if clock is not None:
            if self._primed_clock is not clock:
                self._prime(clock)
            amount = self._amt_vfs
            clock._now += amount
            cells = clock.stats._cells
            try:
                cell = cells["vfs_op"]
                cell[0] += 1
                cell[1] += amount
            except KeyError:
                cells["vfs_op"] = [1, amount]
            mirror = clock._mirror_stats
            if mirror is not None:
                mcells = mirror._cells
                try:
                    cell = mcells["vfs_op"]
                    cell[0] += 1
                    cell[1] += amount
                except KeyError:
                    mcells["vfs_op"] = [1, amount]
        try:
            inode = self._inodes[vnode.ino]
        except KeyError:
            raise fs_error(Errno.ENOENT, f"stale inode {vnode.ino}") from None
        flag_bits = flags._value_
        wants_write = (flag_bits & WRITE_MASK) != 0
        if inode.ftype is FileType.DIRECTORY and wants_write:
            raise fs_error(Errno.EISDIR, f"inode {inode.ino} is a directory")
        self._check(inode, cred, read=(flag_bits & READ_MASK) != 0,
                    write=wants_write)
        if flag_bits & TRUNCATE_MASK:
            self._truncate(inode, 0)
        inode.atime = clock._now if clock is not None else 0.0
        return OpenHandle(vnode=vnode, flags=flags)

    def fs_close(self, handle: OpenHandle, cred: Credentials) -> None:
        clock = self.clock
        if clock is not None:
            if self._primed_clock is not clock:
                self._prime(clock)
            amount = self._amt_vfs
            clock._now += amount
            cells = clock.stats._cells
            try:
                cell = cells["vfs_op"]
                cell[0] += 1
                cell[1] += amount
            except KeyError:
                cells["vfs_op"] = [1, amount]
            mirror = clock._mirror_stats
            if mirror is not None:
                mcells = mirror._cells
                try:
                    cell = mcells["vfs_op"]
                    cell[0] += 1
                    cell[1] += amount
                except KeyError:
                    mcells["vfs_op"] = [1, amount]
        # The native file system has no per-open state beyond the handle.

    def fs_readwrite(self, vnode: Vnode, offset: int, *, data: bytes | None = None,
                     length: int = 0, write: bool, cred: Credentials) -> bytes | int:
        clock = self.clock
        if clock is not None:
            if self._primed_clock is not clock:
                self._prime(clock)
            amount = self._amt_vfs
            clock._now += amount
            cells = clock.stats._cells
            try:
                cell = cells["vfs_op"]
                cell[0] += 1
                cell[1] += amount
            except KeyError:
                cells["vfs_op"] = [1, amount]
            mirror = clock._mirror_stats
            if mirror is not None:
                mcells = mirror._cells
                try:
                    cell = mcells["vfs_op"]
                    cell[0] += 1
                    cell[1] += amount
                except KeyError:
                    mcells["vfs_op"] = [1, amount]
        try:
            inode = self._inodes[vnode.ino]
        except KeyError:
            raise fs_error(Errno.ENOENT, f"stale inode {vnode.ino}") from None
        if inode.ftype is FileType.DIRECTORY:
            raise fs_error(Errno.EISDIR, f"inode {inode.ino} is a directory")
        if write:
            if data is None:
                raise fs_error(Errno.EINVAL, "write without data")
            if clock is not None:
                # charge(nbytes=...) inlined: ``unit * nbytes``, except that
                # a zero-byte transfer falls back to one unit (``times=1``),
                # exactly as the scalar charge path does.
                nbytes = len(data)
                transfer = self._unit_transfer * nbytes if nbytes \
                    else self._unit_transfer * 1
                amount = self._amt_seek
                # Two separate ``+=`` steps: float addition is not
                # associative, and the clock value must stay bit-identical
                # to the scalar seek-then-transfer charge sequence.
                clock._now += amount
                clock._now += transfer
                cells = clock.stats._cells
                try:
                    cell = cells["disk_seek"]
                    cell[0] += 1
                    cell[1] += amount
                except KeyError:
                    cells["disk_seek"] = [1, amount]
                try:
                    cell = cells["disk_transfer_per_byte"]
                    cell[0] += 1
                    cell[1] += transfer
                except KeyError:
                    cells["disk_transfer_per_byte"] = [1, transfer]
                mirror = clock._mirror_stats
                if mirror is not None:
                    mcells = mirror._cells
                    try:
                        cell = mcells["disk_seek"]
                        cell[0] += 1
                        cell[1] += amount
                    except KeyError:
                        mcells["disk_seek"] = [1, amount]
                    try:
                        cell = mcells["disk_transfer_per_byte"]
                        cell[0] += 1
                        cell[1] += transfer
                    except KeyError:
                        mcells["disk_transfer_per_byte"] = [1, transfer]
            self._write_range(inode, offset, data)
            inode.mtime = clock._now if clock is not None else 0.0
            inode.ctime = inode.mtime
            return len(data)
        if clock is not None:
            amount = self._amt_seek
            clock._now += amount
            cells = clock.stats._cells
            try:
                cell = cells["disk_seek"]
                cell[0] += 1
                cell[1] += amount
            except KeyError:
                cells["disk_seek"] = [1, amount]
            mirror = clock._mirror_stats
            if mirror is not None:
                mcells = mirror._cells
                try:
                    cell = mcells["disk_seek"]
                    cell[0] += 1
                    cell[1] += amount
                except KeyError:
                    mcells["disk_seek"] = [1, amount]
        content = self._read_range(inode, offset, length)
        if clock is not None:
            nbytes = len(content)
            transfer = self._unit_transfer * nbytes if nbytes \
                else self._unit_transfer * 1
            clock._now += transfer
            cells = clock.stats._cells
            try:
                cell = cells["disk_transfer_per_byte"]
                cell[0] += 1
                cell[1] += transfer
            except KeyError:
                cells["disk_transfer_per_byte"] = [1, transfer]
            mirror = clock._mirror_stats
            if mirror is not None:
                mcells = mirror._cells
                try:
                    cell = mcells["disk_transfer_per_byte"]
                    cell[0] += 1
                    cell[1] += transfer
                except KeyError:
                    mcells["disk_transfer_per_byte"] = [1, transfer]
        inode.atime = clock._now if clock is not None else 0.0
        return content

    def fs_getattr(self, vnode: Vnode, cred: Credentials):
        clock = self.clock
        if clock is not None:
            if self._primed_clock is not clock:
                self._prime(clock)
            amount = self._amt_vfs
            clock._now += amount
            cells = clock.stats._cells
            try:
                cell = cells["vfs_op"]
                cell[0] += 1
                cell[1] += amount
            except KeyError:
                cells["vfs_op"] = [1, amount]
            mirror = clock._mirror_stats
            if mirror is not None:
                mcells = mirror._cells
                try:
                    cell = mcells["vfs_op"]
                    cell[0] += 1
                    cell[1] += amount
                except KeyError:
                    mcells["vfs_op"] = [1, amount]
        try:
            return self._inodes[vnode.ino].attributes()
        except KeyError:
            raise fs_error(Errno.ENOENT, f"stale inode {vnode.ino}") from None

    def fs_setattr(self, vnode: Vnode, cred: Credentials, **attrs):
        """Change inode metadata: mode, uid, gid, size (truncate), mtime, atime.

        Only the owner or the superuser may change mode/ownership, matching
        the checks DataLinks relies on when it "takes over" a file.

        The two charges stay *separate* (not folded into one batch): the
        clock is read between them to stamp ``ctime``, so merging them
        would shift the stamped timestamp.
        """

        clock = self.clock
        if clock is not None:
            if self._primed_clock is not clock:
                self._prime(clock)
            self._charge_one(clock, "vfs_op", self._amt_vfs)
        try:
            inode = self._inodes[vnode.ino]
        except KeyError:
            raise fs_error(Errno.ENOENT, f"stale inode {vnode.ino}") from None
        changing_identity = ("mode" in attrs or "uid" in attrs or "gid" in attrs)
        if changing_identity and inode.ftype is FileType.DIRECTORY:
            # A walk only permission-checks (and resolves through)
            # directories, so file-level chmod/chown leaves it valid.
            self.dir_version += 1
        if changing_identity and not (cred.is_superuser or cred.uid == inode.uid):
            raise fs_error(Errno.EPERM,
                           f"uid {cred.uid} may not change attributes of inode {inode.ino}")
        if "size" in attrs:
            self._check(inode, cred, write=True)
            self._truncate(inode, int(attrs["size"]))
        if "mode" in attrs:
            inode.mode = int(attrs["mode"])
        if "uid" in attrs:
            inode.uid = int(attrs["uid"])
        if "gid" in attrs:
            inode.gid = int(attrs["gid"])
        if "mtime" in attrs:
            inode.mtime = float(attrs["mtime"])
        if "atime" in attrs:
            inode.atime = float(attrs["atime"])
        inode.ctime = clock._now if clock is not None else 0.0
        if clock is not None:
            self._charge_one(clock, "fs_metadata_update", self._amt_meta)
        return inode.attributes()

    def fs_lockctl(self, vnode: Vnode, request: LockRequest, cred: Credentials) -> bool:
        clock = self.clock
        if clock is not None:
            if self._primed_clock is not clock:
                self._prime(clock)
            self._charge_one(clock, "vfs_op", self._amt_vfs)
        return self.locks.apply(vnode.ino, request)

    # ------------------------------------------------------------- block helpers --
    def _read_range(self, inode: Inode, offset: int, length: int) -> bytes:
        if offset >= inode.size:
            return b""
        end = inode.size if length <= 0 else min(inode.size, offset + length)
        block_size = self.device.block_size
        chunks = []
        position = offset
        while position < end:
            block_index = position // block_size
            block_offset = position % block_size
            take = min(block_size - block_offset, end - position)
            block_no = inode.blocks[block_index]
            block = self.device.read_block(block_no)
            chunks.append(block[block_offset: block_offset + take])
            position += take
        return b"".join(chunks)

    def _write_range(self, inode: Inode, offset: int, data: bytes) -> None:
        block_size = self.device.block_size
        end = offset + len(data)
        high = end if end > inode.size else inode.size
        needed_blocks = (high + block_size - 1) // block_size
        while len(inode.blocks) < needed_blocks:
            inode.blocks.append(self.device.allocate_block())
        position = offset
        written = 0
        while written < len(data):
            block_index = position // block_size
            block_offset = position % block_size
            take = min(block_size - block_offset, len(data) - written)
            block_no = inode.blocks[block_index]
            block = bytearray(self.device.read_block(block_no))
            block[block_offset: block_offset + take] = data[written: written + take]
            self.device.write_block(block_no, bytes(block))
            position += take
            written += take
        if end > inode.size:
            inode.size = end

    def _truncate(self, inode: Inode, size: int) -> None:
        block_size = self.device.block_size
        needed_blocks = (size + block_size - 1) // block_size
        for block_no in inode.blocks[needed_blocks:]:
            self.device.free_block(block_no)
        del inode.blocks[needed_blocks:]
        while len(inode.blocks) < needed_blocks:
            inode.blocks.append(self.device.allocate_block())
        inode.size = size
        inode.mtime = self._now()

    # ------------------------------------------------------------------- utility --
    def read_whole_file(self, ino: int) -> bytes:
        """Read a file's full contents directly (archive/version helpers)."""

        inode = self.inode(ino)
        return self._read_range(inode, 0, inode.size)

    def write_whole_file(self, ino: int, data: bytes) -> None:
        """Replace a file's contents directly (restore helpers)."""

        inode = self.inode(ino)
        self._truncate(inode, 0)
        if data:
            self._write_range(inode, 0, data)
        inode.size = len(data)
        inode.mtime = self._now()
