"""The physical (native) file system -- the JFS/UFS stand-in.

Implements every VFS entry point over inodes and a block device, with
standard UNIX permission checks.  This is the layer DLFS sits on top of; it
knows nothing about DataLinks.
"""

from __future__ import annotations

from repro.errors import Errno, fs_error
from repro.fs.blockdev import BlockDevice
from repro.fs.inode import (
    DEFAULT_DIR_MODE,
    DEFAULT_FILE_MODE,
    FileType,
    Inode,
    permission_granted,
)
from repro.fs.locks import FileLockTable
from repro.fs.vfs import (
    Credentials,
    LockRequest,
    OpenFlags,
    OpenHandle,
    VFSOperations,
    Vnode,
)

ROOT_INO = 1


class PhysicalFileSystem(VFSOperations):
    """An inode-based file system on a simulated block device."""

    def __init__(self, name: str = "pfs0", device: BlockDevice | None = None,
                 clock=None, root_uid: int = 0, root_gid: int = 0):
        self.fs_id = name
        self.device = device if device is not None else BlockDevice(name=f"{name}-disk")
        self.clock = clock
        self.locks = FileLockTable()
        self._inodes: dict[int, Inode] = {}
        self._next_ino = ROOT_INO
        root = self._new_inode(FileType.DIRECTORY, DEFAULT_DIR_MODE, root_uid, root_gid)
        assert root.ino == ROOT_INO

    # ------------------------------------------------------------------ helpers --
    def _now(self) -> float:
        return self.clock.now() if self.clock is not None else 0.0

    def _charge(self, primitive: str, *, times: int = 1, nbytes: int = 0) -> None:
        if self.clock is not None:
            self.clock.charge(primitive, times=times, nbytes=nbytes)

    def _new_inode(self, ftype: FileType, mode: int, uid: int, gid: int) -> Inode:
        inode = Inode(ino=self._next_ino, ftype=ftype, mode=mode, uid=uid, gid=gid,
                      atime=self._now(), mtime=self._now(), ctime=self._now())
        self._inodes[inode.ino] = inode
        self._next_ino += 1
        return inode

    def inode(self, ino: int) -> Inode:
        try:
            return self._inodes[ino]
        except KeyError:
            raise fs_error(Errno.ENOENT, f"stale inode {ino}") from None

    def _inode_of(self, vnode: Vnode) -> Inode:
        return self.inode(vnode.ino)

    def _vnode_of(self, inode: Inode) -> Vnode:
        return Vnode(fs_id=self.fs_id, ino=inode.ino)

    def _check(self, inode: Inode, cred: Credentials, *, read: bool = False,
               write: bool = False, exec_: bool = False) -> None:
        if not permission_granted(inode.mode, inode.uid, inode.gid, cred.uid,
                                  cred.all_groups, read, write, exec_):
            raise fs_error(Errno.EACCES,
                           f"uid {cred.uid} denied on inode {inode.ino} "
                           f"(mode {oct(inode.mode)}, owner {inode.uid})")

    def _require_dir(self, inode: Inode) -> None:
        if not inode.is_directory:
            raise fs_error(Errno.ENOTDIR, f"inode {inode.ino} is not a directory")

    # ------------------------------------------------------------ directory ops --
    def root_vnode(self) -> Vnode:
        return Vnode(fs_id=self.fs_id, ino=ROOT_INO)

    def fs_lookup(self, dir_vnode: Vnode, name: str, cred: Credentials) -> Vnode:
        # The hottest VFS entry point (every path component of every
        # resolution lands here): helpers are inlined into direct checks.
        clock = self.clock
        if clock is not None:
            clock.charge("vfs_op")
            clock.charge("directory_lookup")
        directory = self._inodes.get(dir_vnode.ino)
        if directory is None:
            raise fs_error(Errno.ENOENT, f"stale inode {dir_vnode.ino}")
        if directory.ftype is not FileType.DIRECTORY:
            raise fs_error(Errno.ENOTDIR, f"inode {directory.ino} is not a directory")
        self._check(directory, cred, exec_=True)
        if name in (".", ""):
            return dir_vnode
        ino = directory.entries.get(name)
        if ino is None:
            raise fs_error(Errno.ENOENT, f"no entry {name!r} in inode {directory.ino}")
        return Vnode(fs_id=self.fs_id, ino=ino)

    def fs_create(self, dir_vnode: Vnode, name: str, mode: int,
                  cred: Credentials) -> Vnode:
        self._charge("vfs_op")
        directory = self._inode_of(dir_vnode)
        self._require_dir(directory)
        if name in directory.entries:
            # POSIX reports an existing entry before parent write permission.
            raise fs_error(Errno.EEXIST, f"entry {name!r} already exists")
        self._check(directory, cred, write=True, exec_=True)
        inode = self._new_inode(FileType.REGULAR, mode or DEFAULT_FILE_MODE,
                                cred.uid, cred.gid)
        directory.entries[name] = inode.ino
        directory.mtime = self._now()
        self._charge("fs_metadata_update")
        return self._vnode_of(inode)

    def fs_mkdir(self, dir_vnode: Vnode, name: str, mode: int,
                 cred: Credentials) -> Vnode:
        self._charge("vfs_op")
        directory = self._inode_of(dir_vnode)
        self._require_dir(directory)
        if name in directory.entries:
            # POSIX reports an existing entry before parent write permission.
            raise fs_error(Errno.EEXIST, f"entry {name!r} already exists")
        self._check(directory, cred, write=True, exec_=True)
        inode = self._new_inode(FileType.DIRECTORY, mode or DEFAULT_DIR_MODE,
                                cred.uid, cred.gid)
        directory.entries[name] = inode.ino
        directory.mtime = self._now()
        self._charge("fs_metadata_update")
        return self._vnode_of(inode)

    def fs_remove(self, dir_vnode: Vnode, name: str, cred: Credentials) -> None:
        self._charge("vfs_op")
        directory = self._inode_of(dir_vnode)
        self._require_dir(directory)
        self._check(directory, cred, write=True, exec_=True)
        if name not in directory.entries:
            raise fs_error(Errno.ENOENT, f"no entry {name!r}")
        inode = self.inode(directory.entries[name])
        if inode.is_directory:
            raise fs_error(Errno.EISDIR, f"{name!r} is a directory")
        del directory.entries[name]
        directory.mtime = self._now()
        inode.nlink -= 1
        if inode.nlink <= 0:
            for block in inode.blocks:
                self.device.free_block(block)
            del self._inodes[inode.ino]
        self._charge("fs_metadata_update")

    def fs_rmdir(self, dir_vnode: Vnode, name: str, cred: Credentials) -> None:
        self._charge("vfs_op")
        directory = self._inode_of(dir_vnode)
        self._require_dir(directory)
        self._check(directory, cred, write=True, exec_=True)
        if name not in directory.entries:
            raise fs_error(Errno.ENOENT, f"no entry {name!r}")
        target = self.inode(directory.entries[name])
        self._require_dir(target)
        if target.entries:
            raise fs_error(Errno.ENOTEMPTY, f"directory {name!r} is not empty")
        del directory.entries[name]
        del self._inodes[target.ino]
        directory.mtime = self._now()
        self._charge("fs_metadata_update")

    def fs_rename(self, src_dir: Vnode, src_name: str, dst_dir: Vnode,
                  dst_name: str, cred: Credentials) -> None:
        self._charge("vfs_op")
        source = self._inode_of(src_dir)
        destination = self._inode_of(dst_dir)
        self._require_dir(source)
        self._require_dir(destination)
        self._check(source, cred, write=True, exec_=True)
        self._check(destination, cred, write=True, exec_=True)
        if src_name not in source.entries:
            raise fs_error(Errno.ENOENT, f"no entry {src_name!r}")
        if dst_name in destination.entries:
            raise fs_error(Errno.EEXIST, f"entry {dst_name!r} already exists")
        destination.entries[dst_name] = source.entries.pop(src_name)
        source.mtime = self._now()
        destination.mtime = self._now()
        self._charge("fs_metadata_update")

    def fs_readdir(self, dir_vnode: Vnode, cred: Credentials) -> list[str]:
        self._charge("vfs_op")
        directory = self._inode_of(dir_vnode)
        self._require_dir(directory)
        self._check(directory, cred, read=True)
        return sorted(directory.entries)

    # ------------------------------------------------------------------ file ops --
    def fs_open(self, vnode: Vnode, flags: OpenFlags, cred: Credentials) -> OpenHandle:
        if self.clock is not None:
            self.clock.charge("vfs_op")
        inode = self._inode_of(vnode)
        if inode.ftype is FileType.DIRECTORY and flags.wants_write:
            raise fs_error(Errno.EISDIR, f"inode {inode.ino} is a directory")
        self._check(inode, cred, read=flags.wants_read, write=flags.wants_write)
        if flags & OpenFlags.TRUNCATE:
            self._truncate(inode, 0)
        inode.atime = self._now()
        return OpenHandle(vnode=vnode, flags=flags)

    def fs_close(self, handle: OpenHandle, cred: Credentials) -> None:
        self._charge("vfs_op")
        # The native file system has no per-open state beyond the handle.

    def fs_readwrite(self, vnode: Vnode, offset: int, *, data: bytes | None = None,
                     length: int = 0, write: bool, cred: Credentials) -> bytes | int:
        if self.clock is not None:
            self.clock.charge("vfs_op")
        inode = self._inode_of(vnode)
        if inode.ftype is FileType.DIRECTORY:
            raise fs_error(Errno.EISDIR, f"inode {inode.ino} is a directory")
        if write:
            if data is None:
                raise fs_error(Errno.EINVAL, "write without data")
            self._charge("disk_seek")
            self._charge("disk_transfer_per_byte", nbytes=len(data))
            self._write_range(inode, offset, data)
            inode.mtime = self._now()
            inode.ctime = inode.mtime
            return len(data)
        self._charge("disk_seek")
        content = self._read_range(inode, offset, length)
        self._charge("disk_transfer_per_byte", nbytes=len(content))
        inode.atime = self._now()
        return content

    def fs_getattr(self, vnode: Vnode, cred: Credentials):
        if self.clock is not None:
            self.clock.charge("vfs_op")
        return self._inode_of(vnode).attributes()

    def fs_setattr(self, vnode: Vnode, cred: Credentials, **attrs):
        """Change inode metadata: mode, uid, gid, size (truncate), mtime, atime.

        Only the owner or the superuser may change mode/ownership, matching
        the checks DataLinks relies on when it "takes over" a file.
        """

        self._charge("vfs_op")
        inode = self._inode_of(vnode)
        changing_identity = any(key in attrs for key in ("mode", "uid", "gid"))
        if changing_identity and not (cred.is_superuser or cred.uid == inode.uid):
            raise fs_error(Errno.EPERM,
                           f"uid {cred.uid} may not change attributes of inode {inode.ino}")
        if "size" in attrs:
            self._check(inode, cred, write=True)
            self._truncate(inode, int(attrs["size"]))
        if "mode" in attrs:
            inode.mode = int(attrs["mode"])
        if "uid" in attrs:
            inode.uid = int(attrs["uid"])
        if "gid" in attrs:
            inode.gid = int(attrs["gid"])
        if "mtime" in attrs:
            inode.mtime = float(attrs["mtime"])
        if "atime" in attrs:
            inode.atime = float(attrs["atime"])
        inode.ctime = self._now()
        self._charge("fs_metadata_update")
        return inode.attributes()

    def fs_lockctl(self, vnode: Vnode, request: LockRequest, cred: Credentials) -> bool:
        self._charge("vfs_op")
        return self.locks.apply(vnode.ino, request)

    # ------------------------------------------------------------- block helpers --
    def _read_range(self, inode: Inode, offset: int, length: int) -> bytes:
        if offset >= inode.size:
            return b""
        end = inode.size if length <= 0 else min(inode.size, offset + length)
        block_size = self.device.block_size
        chunks = []
        position = offset
        while position < end:
            block_index = position // block_size
            block_offset = position % block_size
            take = min(block_size - block_offset, end - position)
            block_no = inode.blocks[block_index]
            block = self.device.read_block(block_no)
            chunks.append(block[block_offset: block_offset + take])
            position += take
        return b"".join(chunks)

    def _write_range(self, inode: Inode, offset: int, data: bytes) -> None:
        block_size = self.device.block_size
        end = offset + len(data)
        needed_blocks = (max(end, inode.size) + block_size - 1) // block_size
        while len(inode.blocks) < needed_blocks:
            inode.blocks.append(self.device.allocate_block())
        position = offset
        written = 0
        while written < len(data):
            block_index = position // block_size
            block_offset = position % block_size
            take = min(block_size - block_offset, len(data) - written)
            block_no = inode.blocks[block_index]
            block = bytearray(self.device.read_block(block_no))
            block[block_offset: block_offset + take] = data[written: written + take]
            self.device.write_block(block_no, bytes(block))
            position += take
            written += take
        inode.size = max(inode.size, end)

    def _truncate(self, inode: Inode, size: int) -> None:
        block_size = self.device.block_size
        needed_blocks = (size + block_size - 1) // block_size
        for block_no in inode.blocks[needed_blocks:]:
            self.device.free_block(block_no)
        del inode.blocks[needed_blocks:]
        while len(inode.blocks) < needed_blocks:
            inode.blocks.append(self.device.allocate_block())
        inode.size = size
        inode.mtime = self._now()

    # ------------------------------------------------------------------- utility --
    def read_whole_file(self, ino: int) -> bytes:
        """Read a file's full contents directly (archive/version helpers)."""

        inode = self.inode(ino)
        return self._read_range(inode, 0, inode.size)

    def write_whole_file(self, ino: int, data: bytes) -> None:
        """Replace a file's contents directly (restore helpers)."""

        inode = self.inode(ino)
        self._truncate(inode, 0)
        if data:
            self._write_range(inode, 0, data)
        inode.size = len(data)
        inode.mtime = self._now()
