"""A simulated UNIX file system stack.

The stack mirrors the architecture the paper assumes on AIX:

* a :class:`~repro.fs.blockdev.BlockDevice` (the disk);
* a :class:`~repro.fs.physical.PhysicalFileSystem` (JFS/UFS stand-in) that
  implements the VFS entry points over inodes and blocks;
* an optional stack of :class:`~repro.fs.vfs.FilterVFS` layers -- DLFS is one;
* a :class:`~repro.fs.logical.LogicalFileSystem` (LFS) that resolves paths,
  manages file descriptors and exposes the system-call API applications use.

Crucially, ``open()`` is decoupled into ``fs_lookup`` followed by ``fs_open``
exactly as described in Section 4.1 of the paper, because that decoupling is
what makes DataLinks token handling non-trivial.
"""

from repro.fs.vfs import Credentials, OpenFlags, FileAttributes, Vnode, VFSOperations, FilterVFS
from repro.fs.blockdev import BlockDevice
from repro.fs.physical import PhysicalFileSystem
from repro.fs.logical import LogicalFileSystem

__all__ = [
    "Credentials",
    "OpenFlags",
    "FileAttributes",
    "Vnode",
    "VFSOperations",
    "FilterVFS",
    "BlockDevice",
    "PhysicalFileSystem",
    "LogicalFileSystem",
]
