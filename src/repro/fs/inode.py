"""Inodes and file attribute snapshots."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class FileType(enum.Enum):
    REGULAR = "REGULAR"
    DIRECTORY = "DIRECTORY"


# Permission bit helpers (standard UNIX rwxrwxrwx layout).
R_OWNER, W_OWNER, X_OWNER = 0o400, 0o200, 0o100
R_GROUP, W_GROUP, X_GROUP = 0o040, 0o020, 0o010
R_OTHER, W_OTHER, X_OTHER = 0o004, 0o002, 0o001

DEFAULT_FILE_MODE = 0o644
DEFAULT_DIR_MODE = 0o755


@dataclass(slots=True)
class Inode:
    """One on-"disk" inode."""

    ino: int
    ftype: FileType
    mode: int
    uid: int
    gid: int
    size: int = 0
    nlink: int = 1
    atime: float = 0.0
    mtime: float = 0.0
    ctime: float = 0.0
    blocks: list[int] = field(default_factory=list)
    entries: dict[str, int] = field(default_factory=dict)   # directories only

    @property
    def is_directory(self) -> bool:
        return self.ftype is FileType.DIRECTORY

    def attributes(self) -> "FileAttributes":
        return FileAttributes(
            ino=self.ino,
            ftype=self.ftype,
            mode=self.mode,
            uid=self.uid,
            gid=self.gid,
            size=self.size,
            nlink=self.nlink,
            atime=self.atime,
            mtime=self.mtime,
            ctime=self.ctime,
        )


@dataclass(frozen=True, slots=True)
class FileAttributes:
    """An immutable snapshot of an inode's metadata (what ``stat`` returns)."""

    ino: int
    ftype: FileType
    mode: int
    uid: int
    gid: int
    size: int
    nlink: int
    atime: float
    mtime: float
    ctime: float

    @property
    def is_directory(self) -> bool:
        return self.ftype is FileType.DIRECTORY

    @property
    def is_regular(self) -> bool:
        return self.ftype is FileType.REGULAR


def permission_granted(mode: int, uid: int, gid: int, cred_uid: int, cred_gids,
                       want_read: bool, want_write: bool, want_exec: bool = False) -> bool:
    """Standard UNIX owner/group/other permission check (uid 0 bypasses)."""

    if cred_uid == 0:
        return True
    if cred_uid == uid:
        read_bit, write_bit, exec_bit = R_OWNER, W_OWNER, X_OWNER
    elif gid in cred_gids:
        read_bit, write_bit, exec_bit = R_GROUP, W_GROUP, X_GROUP
    else:
        read_bit, write_bit, exec_bit = R_OTHER, W_OTHER, X_OTHER
    if want_read and not mode & read_bit:
        return False
    if want_write and not mode & write_bit:
        return False
    if want_exec and not mode & exec_bit:
        return False
    return True
