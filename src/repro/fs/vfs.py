"""The virtual file system interface and stackable filter layers.

The VFS entry points deliberately mirror the ones the paper names
(``fs_lookup``, ``fs_open``, ``fs_close``, ``fs_readwrite``, ``fs_remove``,
``fs_rename``, ``fs_lookup``, ``fs_lockctl``) and preserve the property that
makes DataLinks access control hard: ``fs_lookup`` sees the *name* (and hence
the embedded token) but not the open mode, while ``fs_open`` sees the open
mode but only a vnode, not the name (Section 4.1).

:class:`FilterVFS` is the stacking mechanism: a filter holds a reference to
the lower VFS and forwards everything by default.  DLFS subclasses it and
overrides only the entry points it needs to intercept.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.fs.inode import FileAttributes


class OpenFlags(enum.Flag):
    """Open mode flags (a small subset of POSIX ``O_*``)."""

    READ = enum.auto()
    WRITE = enum.auto()
    CREATE = enum.auto()
    TRUNCATE = enum.auto()
    APPEND = enum.auto()

    @property
    def wants_read(self) -> bool:
        # Plain int mask tests: flag-enum ``&``/``|`` allocate a new Flag
        # member per operation, and these predicates run on every open.
        return (self._value_ & _READ_MASK) != 0

    @property
    def wants_write(self) -> bool:
        return (self._value_ & _WRITE_MASK) != 0


_READ_MASK = OpenFlags.READ.value
_WRITE_MASK = (OpenFlags.WRITE.value | OpenFlags.APPEND.value
               | OpenFlags.TRUNCATE.value)

#: Plain int masks for per-open flag tests (``flags._value_ & MASK``):
#: flag-enum ``&`` allocates a new Flag member per operation, and these
#: tests sit on the open/read/write hot paths.
CREATE_MASK = OpenFlags.CREATE.value
APPEND_MASK = OpenFlags.APPEND.value
TRUNCATE_MASK = OpenFlags.TRUNCATE.value
READ_MASK = _READ_MASK
WRITE_MASK = _WRITE_MASK


@dataclass(frozen=True, slots=True)
class Credentials:
    """The identity a process presents to the file system."""

    uid: int
    gid: int = 0
    groups: tuple[int, ...] = ()
    username: str = ""
    # Derived once at construction: the permission check reads this on every
    # VFS call, and rebuilding the tuple per call was measurable.
    all_groups: tuple[int, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        object.__setattr__(self, "all_groups", (self.gid, *self.groups))

    @property
    def is_superuser(self) -> bool:
        return self.uid == 0


@dataclass(frozen=True, slots=True)
class Vnode:
    """A reference to a file object inside one VFS instance.

    Vnodes compare by (file system identity, inode number) so a vnode obtained
    through a filter layer equals the vnode of the underlying file.
    """

    fs_id: str
    ino: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Vnode({self.fs_id}:{self.ino})"


class LockKind(enum.Enum):
    SHARED = "SHARED"
    EXCLUSIVE = "EXCLUSIVE"
    UNLOCK = "UNLOCK"


@dataclass(slots=True)
class LockRequest:
    """A whole-file lock request passed to ``fs_lockctl``."""

    kind: LockKind
    owner: object
    nonblocking: bool = True


@dataclass(slots=True)
class OpenHandle:
    """Opaque per-open state returned by ``fs_open`` and passed to ``fs_close``.

    Filter layers may attach their own state under ``layer_state`` keyed by
    layer name; the logical file system treats the handle as opaque.
    """

    vnode: Vnode
    flags: OpenFlags
    layer_state: dict = field(default_factory=dict)


class VFSOperations:
    """Abstract VFS entry points.

    Concrete file systems (and filter layers) implement these.  All methods
    raise :class:`repro.errors.FileSystemError` on failure.
    """

    fs_id: str = "vfs"

    def walk_profile(self):
        """Support for the logical layer's resolution cache.

        A VFS whose successful ``fs_lookup`` calls charge a *fixed* event
        sequence to one clock and whose namespace bindings (entries, modes,
        ownership) change only through its mutating entry points returns a
        ``(clock, charge_events, anchor)`` triple:

        * ``charge_events`` -- the ``(primitive, scale, label)`` tuples one
          lookup charges, in order, across every layer of the stack;
        * ``anchor`` -- an object exposing a monotone ``dir_version``
          counter that changes whenever a directory binding or a
          directory's permissions change.  Cached walks resolve directory
          chains only (the final path component is always looked up
          live), so ``dir_version`` fully guards their validity and file
          creates, removes and renames never invalidate anything.

        Returning ``None`` (the default) marks walks through this VFS as
        non-replayable, and the logical layer resolves every component
        live.
        """

        return None

    # directory-level operations -------------------------------------------------
    def root_vnode(self) -> Vnode:
        raise NotImplementedError

    def fs_lookup(self, dir_vnode: Vnode, name: str, cred: Credentials) -> Vnode:
        raise NotImplementedError

    def fs_create(self, dir_vnode: Vnode, name: str, mode: int,
                  cred: Credentials) -> Vnode:
        raise NotImplementedError

    def fs_mkdir(self, dir_vnode: Vnode, name: str, mode: int,
                 cred: Credentials) -> Vnode:
        raise NotImplementedError

    def fs_remove(self, dir_vnode: Vnode, name: str, cred: Credentials) -> None:
        raise NotImplementedError

    def fs_rmdir(self, dir_vnode: Vnode, name: str, cred: Credentials) -> None:
        raise NotImplementedError

    def fs_rename(self, src_dir: Vnode, src_name: str, dst_dir: Vnode,
                  dst_name: str, cred: Credentials) -> None:
        raise NotImplementedError

    def fs_readdir(self, dir_vnode: Vnode, cred: Credentials) -> list[str]:
        raise NotImplementedError

    # file-level operations ---------------------------------------------------------
    def fs_open(self, vnode: Vnode, flags: OpenFlags, cred: Credentials) -> OpenHandle:
        raise NotImplementedError

    def fs_close(self, handle: OpenHandle, cred: Credentials) -> None:
        raise NotImplementedError

    def fs_readwrite(self, vnode: Vnode, offset: int, *, data: bytes | None = None,
                     length: int = 0, write: bool, cred: Credentials) -> bytes | int:
        raise NotImplementedError

    def fs_getattr(self, vnode: Vnode, cred: Credentials) -> FileAttributes:
        raise NotImplementedError

    def fs_setattr(self, vnode: Vnode, cred: Credentials, **attrs) -> FileAttributes:
        raise NotImplementedError

    def fs_lockctl(self, vnode: Vnode, request: LockRequest, cred: Credentials) -> bool:
        raise NotImplementedError


class FilterVFS(VFSOperations):
    """A stackable layer that forwards every entry point to the layer below.

    This is the VFS-stacking mechanism DLFS is built on: subclasses override
    only the entry points they interpose on and call ``self.lower`` for the
    real work, exactly like a vnode-stacking filter in a UNIX kernel.
    """

    def __init__(self, lower: VFSOperations, fs_id: str | None = None):
        self.lower = lower
        self.fs_id = fs_id if fs_id is not None else f"filter({lower.fs_id})"

    def root_vnode(self) -> Vnode:
        return self.lower.root_vnode()

    def fs_lookup(self, dir_vnode, name, cred):
        return self.lower.fs_lookup(dir_vnode, name, cred)

    def fs_create(self, dir_vnode, name, mode, cred):
        return self.lower.fs_create(dir_vnode, name, mode, cred)

    def fs_mkdir(self, dir_vnode, name, mode, cred):
        return self.lower.fs_mkdir(dir_vnode, name, mode, cred)

    def fs_remove(self, dir_vnode, name, cred):
        return self.lower.fs_remove(dir_vnode, name, cred)

    def fs_rmdir(self, dir_vnode, name, cred):
        return self.lower.fs_rmdir(dir_vnode, name, cred)

    def fs_rename(self, src_dir, src_name, dst_dir, dst_name, cred):
        return self.lower.fs_rename(src_dir, src_name, dst_dir, dst_name, cred)

    def fs_readdir(self, dir_vnode, cred):
        return self.lower.fs_readdir(dir_vnode, cred)

    def fs_open(self, vnode, flags, cred):
        return self.lower.fs_open(vnode, flags, cred)

    def fs_close(self, handle, cred):
        return self.lower.fs_close(handle, cred)

    def fs_readwrite(self, vnode, offset, *, data=None, length=0, write, cred):
        return self.lower.fs_readwrite(vnode, offset, data=data, length=length,
                                       write=write, cred=cred)

    def fs_getattr(self, vnode, cred):
        return self.lower.fs_getattr(vnode, cred)

    def fs_setattr(self, vnode, cred, **attrs):
        return self.lower.fs_setattr(vnode, cred, **attrs)

    def fs_lockctl(self, vnode, request, cred):
        return self.lower.fs_lockctl(vnode, request, cred)
