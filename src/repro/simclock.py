"""Simulated time: per-node clock domains with merge-at-sync, plus the
calibrated cost model.

The paper reports latencies measured on a 200 MHz PowerPC 604 testbed with a
kernel VFS layer (Section 3.2): retrieving a DATALINK column costs less than
3 ms at the host database, the DLFS layer plus token validation adds roughly
1 ms to open/read/close, and the end-to-end overhead of reading a 1 MB file
through DataLinks is below 1 %.  We cannot interpose on a real kernel from
Python, so every component charges its work to a simulated clock using a
:class:`CostModel` calibrated from those published figures, and benchmarks
report *simulated* milliseconds.

Time is **not** one global serial tape.  The paper's testbed had real
hardware concurrency -- the host database, each file server's DLFM and the
archive mover are separate machines/processes doing work at the same time --
so the simulation models one :class:`ClockDomain` per node, grouped in a
:class:`ClockDomainGroup`:

* every domain advances independently as its node charges work;
* domains synchronize by **max-merging** their times at real synchronization
  points: an IPC request/reply is a two-way merge (the callee cannot start
  before the message was sent, the caller cannot continue before the reply
  exists), a pipelined send (:meth:`repro.ipc.channel.Channel.post`) is a
  one-way merge (the sender does not wait), and two-phase-commit barriers
  merge every participant;
* a coordinator fanning out to N participants opens an *overlap window*
  (:meth:`SimClock.overlap`): all requests are timestamped at the window's
  start and the coordinator advances to the **max** of the replies instead
  of their sum, which is what lets N shards show genuine latency overlap --
  and what lets a burst of follower reads, round-robined by the
  replication router over the serving node and its witnesses, cost the
  bottleneck node's busy time instead of the serial sum (the E12
  follower-read throughput measurement);
* a *pipelined* send whose handler fails is not free: the error surfaces
  at statement time, so the sender's clock merges up to the receiver's
  completion exactly like a synchronous round trip (only successful posts
  stay fire-and-forget);
* :meth:`ClockDomainGroup.global_now` (the max over domains) is the cluster
  wall clock used for experiment reporting.

:class:`SimClock` remains the single-timeline facade -- a
:class:`ClockDomain` *is* a :class:`SimClock`, so components keep calling
``charge()``/``measure()`` and only differ in *which* clock they hold.  A
bare :class:`SimClock` (no group) behaves exactly like the old serial model,
which is also what ``serial_clock=True`` deployments use for A/B comparisons.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, fields
from itertools import repeat as _repeat

#: Debug switch for the batched-charge fast path.  When ``False``,
#: :meth:`SimClock.charge_run` and :meth:`SimClock.charge_batch` replay
#: every event through the scalar :meth:`SimClock.charge` path -- the
#: per-record reference implementation the batched ledger is asserted
#: against (see ``tests/test_batched_charges.py``).  Both modes produce
#: bit-identical clocks and statistics; the fast path just hoists the
#: per-event dict probes and call overhead out of the loop.
BATCHED_CHARGES = True

#: Debug switch for per-client session clock domains.  When ``False``,
#: :meth:`ClockDomainGroup.session_domains` hands every simulated client
#: the *base* (host) clock -- the serialized reference model where all
#: sessions share one timeline -- and the client-pool drivers degrade to
#: the old round-robin-on-the-host behaviour.  When ``True`` (default),
#: each client session (or pooled group of sessions) owns a
#: :class:`ClockDomain` that barriers through the host like any IPC, so
#: concurrent clients genuinely overlap and queueing delay is measurable.
#: Single-client runs are byte-identical either way (asserted by
#: ``tests/test_session_domains.py``).
SESSION_DOMAINS = True


@dataclass
class CostModel:
    """Calibrated per-primitive costs, in simulated seconds.

    The defaults are derived from the paper's Section 3.2 measurements and
    from typical late-1990s hardware characteristics (10 ms/MB sequential
    disk transfer, sub-millisecond local IPC).  All values can be overridden
    to run sensitivity studies.
    """

    # --- host database -----------------------------------------------------
    sql_statement_base: float = 0.50e-3     # parse/plan/dispatch a statement
    row_read: float = 0.05e-3               # fetch one row from a heap/index
    row_write: float = 0.10e-3              # insert/update/delete one row
    log_write: float = 0.20e-3              # force one WAL record group
    lock_acquire: float = 0.01e-3           # grant one lock
    index_probe: float = 0.02e-3            # one index lookup

    # --- DataLinks engine ---------------------------------------------------
    token_generate: float = 0.80e-3         # HMAC generation at the host DB
    token_validate: float = 0.30e-3         # HMAC check at DLFM
    datalink_engine_dispatch: float = 0.30e-3  # engine bookkeeping per op

    # --- IPC ----------------------------------------------------------------
    upcall_round_trip: float = 0.25e-3      # DLFS -> upcall daemon -> DLFS
    db_dlfm_message: float = 0.60e-3        # DataLinks engine <-> DLFM agent
    daemon_dispatch: float = 0.02e-3        # daemon request demultiplexing
    message_send: float = 0.05e-3          # sender-side cost of a pipelined
    #                                        (non-blocking) message enqueue

    # --- file system --------------------------------------------------------
    syscall_base: float = 0.05e-3           # LFS entry/exit per system call
    vfs_op: float = 0.02e-3                 # one VFS entry point invocation
    dlfs_filter: float = 0.05e-3            # DLFS interposition per entry point
    directory_lookup: float = 0.03e-3       # resolve one path component
    disk_seek: float = 8.0e-3               # one random positioning (late-90s disk)
    disk_transfer_per_byte: float = 120.0e-3 / (1024 * 1024)  # ~8.5 MB/s sequential
    fs_metadata_update: float = 0.05e-3     # inode attribute update

    # --- archive / backup ---------------------------------------------------
    archive_per_byte: float = 150.0e-3 / (1024 * 1024)  # archive device write
    archive_job_overhead: float = 2.0e-3    # scheduling one archive job
    backup_per_row: float = 0.02e-3         # copy one row during backup

    # --- LOB/BLOB baseline (Oracle iFS / Informix IXFS style) ----------------
    # Extra database processing per byte when file content is stored in and
    # served from a LOB column instead of the file system (buffer copies,
    # LOB locators, SQL layer) -- on top of the underlying disk transfer --
    # plus a fixed per-request conversion cost (the IXFS middleware turns
    # every file call into SQL and formats the result back into file-system
    # objects).
    blob_db_per_byte: float = 80.0e-3 / (1024 * 1024)
    blob_request_overhead: float = 2.0e-3

    # --- DLFM repository scaling ---------------------------------------------
    # The DLFM's private repository is a lean embedded store, not a full SQL
    # engine; its statements cost a fraction of a host-database statement.
    dlfm_repository_scale: float = 0.1

    def scaled(self, factor: float) -> "CostModel":
        """Return a copy of this model with every cost multiplied by *factor*."""

        values = {f.name: getattr(self, f.name) * factor for f in fields(self)}
        return CostModel(**values)


class ClockStats:
    """Aggregated charge counters kept by :class:`SimClock`.

    Charges are keyed by *label* -- normally the primitive name, but callers
    can supply an explicit label (e.g. the DLFM repository prefixes its
    database charges with ``dlfm.`` so they never conflate with the host
    database's charges for the same primitive).

    Counts and totals live in one plain dict of ``[count, total]`` cells so
    the per-charge bookkeeping is a single dict probe plus two in-place
    updates with no tuple allocation -- this runs on every single
    ``charge()`` and (for clock domains) twice, so it is the hottest code
    in the simulator.
    """

    __slots__ = ("_cells",)

    def __init__(self):
        #: label -> [count, total] (a mutable cell updated in place).
        self._cells: dict[str, list] = {}

    def record(self, label: str, amount: float) -> None:
        try:
            cell = self._cells[label]
            cell[0] += 1
            cell[1] += amount
        except KeyError:
            self._cells[label] = [1, amount]

    def total(self, label: str) -> float:
        cell = self._cells.get(label)
        return cell[1] if cell is not None else 0.0

    def count(self, label: str) -> int:
        cell = self._cells.get(label)
        return cell[0] if cell is not None else 0

    def labels(self) -> list[str]:
        return sorted(self._cells)

    def total_count(self) -> int:
        """Total charged operations, summed across every label."""

        return sum(cell[0] for cell in self._cells.values())

    @property
    def charges(self) -> dict:
        """``{label: (count, total)}`` -- compatibility view."""

        return {label: (cell[0], cell[1])
                for label, cell in self._cells.items()}

    def as_dict(self) -> dict:
        """``{label: {"count": n, "total_ms": t}}`` for reporting."""

        return {label: {"count": cell[0], "total_ms": cell[1] * 1000.0}
                for label, cell in sorted(self._cells.items())}

    def grand_total(self) -> float:
        """Total simulated seconds charged across every label."""

        return sum(cell[1] for cell in self._cells.values())


class SimClock:
    """A monotonically advancing simulated clock with cost accounting.

    Components never sleep; they call :meth:`charge` with the name of a
    primitive from :class:`CostModel` (optionally scaled by a byte count or
    an explicit repeat factor) and the clock advances by the calibrated cost.

    Synchronization protocol (used between :class:`ClockDomain` instances,
    but defined here so any two clocks can rendezvous):

    * :meth:`send_time` -- the timestamp an outgoing message carries;
    * :meth:`sync_to` -- one-way merge: a node receiving a message cannot be
      earlier than the message's send time;
    * :meth:`receive` -- the caller's side of a reply: advance to the
      reply's timestamp (max-merge, never backwards);
    * :meth:`overlap` -- scatter-gather window: every ``send_time`` inside
      the window is the window's start, and replies accumulate into a
      pending max applied when the window closes, so a fan-out to N peers
      costs the *slowest* reply instead of the sum of all replies.
    """

    def __init__(self, cost_model: CostModel | None = None, start: float = 0.0,
                 name: str = "clock", units: dict | None = None):
        self.costs = cost_model if cost_model is not None else CostModel()
        # Per-primitive unit costs as a plain dict: ``charge()`` looks the
        # primitive up here instead of getattr() on the dataclass.  Clocks
        # sharing one cost model (every domain of a group) may share the
        # derived dict via ``units`` -- it is read-only after construction.
        if units is not None:
            self._units = units
        else:
            self._units = {field.name: getattr(self.costs, field.name)
                           for field in fields(self.costs)}
        self.name = name
        self._now = float(start)
        self.stats = ClockStats()
        #: Second :class:`ClockStats` every charge is mirrored into (a
        #: :class:`ClockDomain` points this at its group's merged stats).
        self._mirror_stats: ClockStats | None = None
        # Scatter-gather frames: [fork_time, pending_reply_max] per level.
        self._overlap_frames: list[list[float]] = []

    # -- time ----------------------------------------------------------------
    def now(self) -> float:
        """Current simulated time in seconds since the clock was created.

        Hot paths that stamp thousands of timestamps per run (inode
        access times, token clocks) may read the backing ``_now``
        attribute directly; it is always the same float this returns.
        """

        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by *seconds* (must be non-negative)."""

        if seconds < 0:
            raise ValueError("cannot move the simulated clock backwards")
        self._now += seconds
        return self._now

    # -- synchronization ------------------------------------------------------
    def send_time(self) -> float:
        """The timestamp an outgoing message carries (the overlap fork time
        inside a scatter-gather window, the current time otherwise)."""

        if self._overlap_frames:
            return self._overlap_frames[-1][0]
        return self._now

    def sync_to(self, instant: float) -> float:
        """One-way max-merge: jump forward to *instant* if it is later."""

        if instant > self._now:
            self._now = instant
        return self._now

    def receive(self, instant: float) -> float:
        """Merge an incoming reply timestamp.

        Inside an overlap window the reply only raises the window's pending
        max (the gather happens when the window closes); outside, it
        max-merges immediately.
        """

        if self._overlap_frames:
            frame = self._overlap_frames[-1]
            if instant > frame[1]:
                frame[1] = instant
            return self._now
        if instant > self._now:
            self._now = instant
        return self._now

    def begin_overlap(self) -> None:
        """Open a scatter-gather window anchored at the current time."""

        self._overlap_frames.append([self._now, self._now])

    def end_overlap(self) -> None:
        """Close the innermost window: advance to the max gathered reply."""

        fork, pending = self._overlap_frames.pop()
        del fork
        self.receive(pending)

    @contextlib.contextmanager
    def overlap(self):
        """Context manager around :meth:`begin_overlap`/:meth:`end_overlap`."""

        self.begin_overlap()
        try:
            yield self
        finally:
            self.end_overlap()

    # -- cost charging -------------------------------------------------------
    def charge(self, primitive: str, *, times: int = 1, nbytes: int = 0,
               scale: float = 1.0, label: str | None = None) -> float:
        """Charge the cost of *primitive* and advance the clock.

        ``times`` repeats the primitive; ``nbytes`` is used for per-byte
        primitives (``disk_transfer_per_byte``, ``archive_per_byte``) where
        the charged amount is ``cost * nbytes`` instead of ``cost * times``.
        ``scale`` multiplies the final amount (used e.g. for the DLFM's lean
        repository).  ``label`` overrides the stats key (the charge is
        recorded under *label* instead of the primitive name, so scaled
        charges can be attributed separately).  Returns the amount of
        simulated time charged.
        """

        try:
            unit = self._units[primitive]
        except KeyError:
            unit = getattr(self.costs, primitive)
        amount = unit * nbytes if nbytes else unit * times
        amount *= scale
        self._now += amount
        # The stats bookkeeping is inlined (not routed through
        # ``ClockStats.record``): this path runs hundreds of thousands of
        # times per experiment and the call overhead dominates.  The
        # try/except form wins because the key almost always exists after
        # the first charge.  The float additions happen in exactly the same
        # order as before (``0.0 + x == x`` for the first charge), which is
        # what keeps simulated totals bit-identical.
        key = label or primitive
        cells = self.stats._cells
        try:
            cell = cells[key]
            cell[0] += 1
            cell[1] += amount
        except KeyError:   # first charge under this key
            cells[key] = [1, amount]
        mirror = self._mirror_stats
        if mirror is not None:
            cells = mirror._cells
            try:
                cell = cells[key]
                cell[0] += 1
                cell[1] += amount
            except KeyError:
                cells[key] = [1, amount]
        return amount

    def charge_run(self, primitive: str, times: int, *, scale: float = 1.0,
                   label: str | None = None) -> float:
        """Charge *times* back-to-back unit charges of *primitive*.

        Bit-identical to ``times`` scalar :meth:`charge` calls: float
        addition is order-dependent, so the per-event amount is still added
        in a loop (a single ``amount * times`` advance would drift), but the
        loop runs on local accumulators with the unit lookup, stats probes
        and call overhead hoisted out -- one aggregated ledger write-back
        instead of one full bookkeeping pass per record.  Returns the total
        simulated time charged.
        """

        if times <= 0:
            return 0.0
        if not BATCHED_CHARGES:
            total = 0.0
            for _ in _repeat(None, times):
                total += self.charge(primitive, scale=scale, label=label)
            return total
        try:
            unit = self._units[primitive]
        except KeyError:
            unit = getattr(self.costs, primitive)
        # Exactly the scalar path's arithmetic for one event (``times=1``).
        amount = unit * 1
        amount *= scale
        key = label or primitive
        cells = self.stats._cells
        try:
            cell = cells[key]
        except KeyError:   # ``0.0 + x == x``, so starting empty is exact
            cell = cells[key] = [0, 0.0]
        now = self._now
        total = cell[1]
        charged = 0.0
        mirror = self._mirror_stats
        if mirror is None:
            for _ in _repeat(None, times):
                now += amount
                total += amount
                charged += amount
        else:
            mcells = mirror._cells
            try:
                mcell = mcells[key]
            except KeyError:
                mcell = mcells[key] = [0, 0.0]
            mtotal = mcell[1]
            for _ in _repeat(None, times):
                now += amount
                total += amount
                mtotal += amount
                charged += amount
            mcell[0] += times
            mcell[1] = mtotal
        self._now = now
        cell[0] += times
        cell[1] = total
        return charged

    def compile_charges(self, events) -> tuple:
        """Pre-resolve a repeating charge pattern for :meth:`charge_batch`.

        *events* is a sequence of ``(primitive, scale, label)`` triples --
        one cycle of the pattern, in charge order.  The unit lookups and
        stats keys are resolved once here instead of once per replayed
        event.  The compiled pattern is clock-specific (units come from this
        clock's cost model).
        """

        events = tuple(events)
        entries = []
        for primitive, scale, label in events:
            try:
                unit = self._units[primitive]
            except KeyError:
                unit = getattr(self.costs, primitive)
            amount = unit * 1
            amount *= scale
            entries.append((amount, label or primitive))
        return (events, tuple(entries))

    def charge_batch(self, compiled: tuple, cycles: int = 1) -> None:
        """Replay a compiled charge pattern *cycles* times.

        Bit-identical to charging every event of every cycle through the
        scalar :meth:`charge` path in order: the clock receives the
        per-event amounts in exactly the original sequence and each stats
        cell accumulates its own amounts in arrival order.  All dict probes
        happen once per distinct label instead of once per event.
        """

        events, entries = compiled
        if cycles <= 0 or not entries:
            return
        if not BATCHED_CHARGES:
            for _ in _repeat(None, cycles):
                for primitive, scale, label in events:
                    self.charge(primitive, scale=scale, label=label)
            return
        cells = self.stats._cells
        mirror = self._mirror_stats
        mcells = mirror._cells if mirror is not None else None
        # label -> [own_total, mirror_total, events_per_cycle, cell, mcell].
        # Own and mirrored cells receive the same additions in the same
        # order but start from different bases, so each keeps its own
        # running accumulator.
        ledger: dict[str, list] = {}
        for amount, key in entries:
            try:
                ledger[key][2] += 1
            except KeyError:
                try:
                    cell = cells[key]
                except KeyError:
                    cell = cells[key] = [0, 0.0]
                mcell = None
                if mcells is not None:
                    try:
                        mcell = mcells[key]
                    except KeyError:
                        mcell = mcells[key] = [0, 0.0]
                ledger[key] = [
                    cell[1], mcell[1] if mcell is not None else 0.0,
                    1, cell, mcell]
        now = self._now
        if mcells is None:
            for _ in _repeat(None, cycles):
                for amount, key in entries:
                    now += amount
                    ledger[key][0] += amount
        else:
            for _ in _repeat(None, cycles):
                for amount, key in entries:
                    now += amount
                    slot = ledger[key]
                    slot[0] += amount
                    slot[1] += amount
        self._now = now
        for slot in ledger.values():
            total, mtotal, per_cycle, cell, mcell = slot
            count = per_cycle * cycles
            cell[0] += count
            cell[1] = total
            if mcell is not None:
                mcell[0] += count
                mcell[1] = mtotal

    def _record(self, label: str, amount: float) -> None:
        self.stats.record(label, amount)
        if self._mirror_stats is not None:
            self._mirror_stats.record(label, amount)

    def measure(self) -> "Stopwatch":
        """Return a :class:`Stopwatch` started at the current simulated time."""

        return Stopwatch(self)


@contextlib.contextmanager
def synchronized_call(caller, callee):
    """Two-way merge around a synchronous cross-domain call.

    The callee cannot start before the caller's message was sent
    (``callee.sync_to(caller.send_time())``), and the caller cannot continue
    before the callee finished (``caller.receive(callee.now())``, applied
    even when the body raises -- failures take time too).  A no-op when the
    two clocks are the same object or either is ``None``.
    """

    if caller is None or callee is None or caller is callee:
        yield
        return
    callee.sync_to(caller.send_time())
    try:
        yield
    finally:
        caller.receive(callee.now())


def rendezvous(*clocks) -> float:
    """Max-merge the given clocks (``None`` entries ignored): a barrier.

    Commutative and idempotent -- ``rendezvous(a, b)`` and
    ``rendezvous(b, a)`` leave both clocks at the same instant.  Returns
    that instant.
    """

    present = [clock for clock in clocks if clock is not None]
    if not present:
        return 0.0
    instant = max(clock.now() for clock in present)
    for clock in present:
        clock.sync_to(instant)
    return instant


def gather(target, clocks) -> float:
    """Aggregated barrier: merge *clocks* into *target* with one receive.

    The batched counterpart of ``rendezvous(target, c)`` once per client:
    N client domains merging through the host cost one ``max()`` scan and
    a single :meth:`SimClock.receive` on the target, after which every
    client syncs forward to the merged instant.  ``None`` entries and the
    target itself are skipped, so the call degenerates to a no-op when
    every client shares the target clock (the serialized reference path).
    Returns the merged instant.
    """

    present = [clock for clock in clocks
               if clock is not None and clock is not target]
    instant = target.now()
    for clock in present:
        t = clock._now
        if t > instant:
            instant = t
    target.receive(instant)
    for clock in present:
        clock.sync_to(instant)
    return instant


class ClockDomain(SimClock):
    """One simulated node's clock inside a :class:`ClockDomainGroup`.

    A domain is a full :class:`SimClock` (components hold it and call
    ``charge()``/``measure()`` unchanged) that additionally:

    * mirrors every charge into the group's merged statistics, so
      cluster-wide counts stay available no matter which node did the work;
    * treats :meth:`advance` as *cluster* idle time -- explicit waiting
      (editor think time, TTL expiry in tests) passes for every node, which
      matches the old serial model; :meth:`advance_local` advances only
      this domain.
    """

    def __init__(self, group: "ClockDomainGroup", name: str,
                 cost_model: CostModel | None = None, start: float = 0.0,
                 units: dict | None = None):
        super().__init__(cost_model, start=start, name=name, units=units)
        self.group = group
        # Charges mirror into the group's merged stats via the base-class
        # fast path instead of a ``_record`` override.
        if group.stats is not self.stats:
            self._mirror_stats = group.stats

    def advance(self, seconds: float) -> float:
        """Let *seconds* of idle wall time pass for the whole cluster."""

        if seconds < 0:
            raise ValueError("cannot move the simulated clock backwards")
        for domain in self.group.domains.values():
            domain.advance_local(seconds)
        return self._now

    def advance_local(self, seconds: float) -> float:
        """Advance only this domain (a node busy on unmodelled local work)."""

        return super().advance(seconds)


class ClockDomainGroup:
    """The set of clock domains of one simulated cluster.

    ``serial=True`` collapses every domain onto a single shared timeline --
    the old serial-clock model, kept for honest A/B comparisons (e.g. the
    serial-clock rows of experiment E11).  Passing ``root`` adopts an
    existing :class:`SimClock` as that single timeline.
    """

    def __init__(self, cost_model: CostModel | None = None, *,
                 serial: bool = False, root: SimClock | None = None):
        self.costs = cost_model if cost_model is not None else \
            (root.costs if root is not None else CostModel())
        self.serial = serial or root is not None
        self.stats = root.stats if root is not None else ClockStats()
        self.domains: dict[str, SimClock] = {}
        self._root = root
        #: Per-primitive units dict shared by every domain of this group
        #: (they all charge against the same ``self.costs``); built by the
        #: first domain and reused so creating 10^4 client domains does
        #: not re-derive it 10^4 times.
        self._shared_units: dict | None = None
        if root is not None:
            self.domains["serial"] = root

    def domain(self, name: str) -> SimClock:
        """The clock domain for node *name* (created on first use).

        In serial mode every name resolves to the same shared clock.
        """

        if self.serial:
            if self._root is None:
                self._root = ClockDomain(self, "serial", self.costs)
                self.domains["serial"] = self._root
            return self._root
        if name not in self.domains:
            domain = ClockDomain(self, name, self.costs,
                                 units=self._shared_units)
            if self._shared_units is None:
                self._shared_units = domain._units
            self.domains[name] = domain
        return self.domains[name]

    def global_now(self) -> float:
        """The cluster wall clock: the max over every domain's time."""

        if not self.domains:
            return self._root.now() if self._root is not None else 0.0
        return max(domain.now() for domain in self.domains.values())

    # ``now()``/``measure()`` make the group usable wherever a clock-like
    # object is expected, measuring cluster wall-clock progress.
    def now(self) -> float:
        return self.global_now()

    def measure(self) -> "Stopwatch":
        return Stopwatch(self)

    def barrier(self) -> float:
        """Rendezvous every domain (a cluster-wide synchronization point)."""

        return rendezvous(*self.domains.values())

    def session_domains(self, count: int, base: SimClock | None = None, *,
                        limit: int | None = None,
                        prefix: str = "client") -> list:
        """Clock domains for *count* simulated client sessions.

        Returns a list of *count* clocks, one per client.  With
        :data:`SESSION_DOMAINS` off (the serialized reference path) or in
        serial mode every entry is *base* (default: the ``host`` domain),
        which reproduces the old model where all sessions ride the host
        timeline.  Otherwise each client gets its own domain, pooled
        round-robin over at most *limit* distinct domains so wall clock
        stays flat at 10^4 clients.  Pooled domain names are stable
        across calls (``client0``, ``client1``, ...) and every pooled
        domain is synced forward to *base*'s current time, so a new sweep
        step starts no earlier than the host -- safe because the drivers
        :func:`gather` all clients back through the host at step end.
        """

        if base is None:
            base = self.domain("host")
        if count <= 0:
            return []
        if not SESSION_DOMAINS or self.serial:
            return [base] * count
        pool = count if limit is None else max(1, min(count, limit))
        start = base.now()
        clocks = []
        for index in range(pool):
            domain = self.domain(f"{prefix}{index}")
            domain.sync_to(start)
            clocks.append(domain)
        if pool == count:
            return clocks
        return [clocks[index % pool] for index in range(count)]

    def stats_by_domain(self) -> dict:
        """``{domain: {label: {"count", "total_ms"}}}`` per-node breakdown."""

        return {name: domain.stats.as_dict()
                for name, domain in sorted(self.domains.items())}

    def times_by_domain(self) -> dict:
        """``{domain: now_in_ms}`` -- each node's local time, for reporting."""

        return {name: domain.now() * 1000.0
                for name, domain in sorted(self.domains.items())}


class Stopwatch:
    """Measures elapsed simulated time; usable as a context manager.

    Works over a single :class:`SimClock`/:class:`ClockDomain` (elapsed time
    on that node) or a :class:`ClockDomainGroup` (elapsed cluster wall-clock
    time, i.e. ``global_now`` deltas).
    """

    def __init__(self, clock):
        self._clock = clock
        self.start = clock.now()
        self.stop: float | None = None

    def __enter__(self) -> "Stopwatch":
        self.start = self._clock.now()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop = self._clock.now()

    @property
    def elapsed(self) -> float:
        """Elapsed simulated seconds (to the stop point, or to now)."""

        end = self.stop if self.stop is not None else self._clock.now()
        return end - self.start

    @property
    def elapsed_ms(self) -> float:
        """Elapsed simulated milliseconds."""

        return self.elapsed * 1000.0
