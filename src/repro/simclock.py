"""Simulated clock and calibrated cost model.

The paper reports latencies measured on a 200 MHz PowerPC 604 testbed with a
kernel VFS layer (Section 3.2): retrieving a DATALINK column costs less than
3 ms at the host database, the DLFS layer plus token validation adds roughly
1 ms to open/read/close, and the end-to-end overhead of reading a 1 MB file
through DataLinks is below 1 %.

We cannot interpose on a real kernel from Python, so every component in this
reproduction charges its work to a :class:`SimClock` using a
:class:`CostModel` calibrated from those published figures.  Benchmarks then
report *simulated* milliseconds, which are directly comparable in shape to the
paper's numbers, alongside wall-clock numbers from pytest-benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class CostModel:
    """Calibrated per-primitive costs, in simulated seconds.

    The defaults are derived from the paper's Section 3.2 measurements and
    from typical late-1990s hardware characteristics (10 ms/MB sequential
    disk transfer, sub-millisecond local IPC).  All values can be overridden
    to run sensitivity studies.
    """

    # --- host database -----------------------------------------------------
    sql_statement_base: float = 0.50e-3     # parse/plan/dispatch a statement
    row_read: float = 0.05e-3               # fetch one row from a heap/index
    row_write: float = 0.10e-3              # insert/update/delete one row
    log_write: float = 0.20e-3              # force one WAL record group
    lock_acquire: float = 0.01e-3           # grant one lock
    index_probe: float = 0.02e-3            # one index lookup

    # --- DataLinks engine ---------------------------------------------------
    token_generate: float = 0.80e-3         # HMAC generation at the host DB
    token_validate: float = 0.30e-3         # HMAC check at DLFM
    datalink_engine_dispatch: float = 0.30e-3  # engine bookkeeping per op

    # --- IPC ----------------------------------------------------------------
    upcall_round_trip: float = 0.25e-3      # DLFS -> upcall daemon -> DLFS
    db_dlfm_message: float = 0.60e-3        # DataLinks engine <-> DLFM agent
    daemon_dispatch: float = 0.02e-3        # daemon request demultiplexing

    # --- file system --------------------------------------------------------
    syscall_base: float = 0.05e-3           # LFS entry/exit per system call
    vfs_op: float = 0.02e-3                 # one VFS entry point invocation
    dlfs_filter: float = 0.05e-3            # DLFS interposition per entry point
    directory_lookup: float = 0.03e-3       # resolve one path component
    disk_seek: float = 8.0e-3               # one random positioning (late-90s disk)
    disk_transfer_per_byte: float = 120.0e-3 / (1024 * 1024)  # ~8.5 MB/s sequential
    fs_metadata_update: float = 0.05e-3     # inode attribute update

    # --- archive / backup ---------------------------------------------------
    archive_per_byte: float = 150.0e-3 / (1024 * 1024)  # archive device write
    archive_job_overhead: float = 2.0e-3    # scheduling one archive job
    backup_per_row: float = 0.02e-3         # copy one row during backup

    # --- LOB/BLOB baseline (Oracle iFS / Informix IXFS style) ----------------
    # Extra database processing per byte when file content is stored in and
    # served from a LOB column instead of the file system (buffer copies,
    # LOB locators, SQL layer) -- on top of the underlying disk transfer --
    # plus a fixed per-request conversion cost (the IXFS middleware turns
    # every file call into SQL and formats the result back into file-system
    # objects).
    blob_db_per_byte: float = 80.0e-3 / (1024 * 1024)
    blob_request_overhead: float = 2.0e-3

    # --- DLFM repository scaling ---------------------------------------------
    # The DLFM's private repository is a lean embedded store, not a full SQL
    # engine; its statements cost a fraction of a host-database statement.
    dlfm_repository_scale: float = 0.1

    def scaled(self, factor: float) -> "CostModel":
        """Return a copy of this model with every cost multiplied by *factor*."""

        values = {f.name: getattr(self, f.name) * factor for f in fields(self)}
        return CostModel(**values)


@dataclass
class ClockStats:
    """Aggregated charge counters kept by :class:`SimClock`."""

    charges: dict = field(default_factory=dict)

    def record(self, label: str, amount: float) -> None:
        count, total = self.charges.get(label, (0, 0.0))
        self.charges[label] = (count + 1, total + amount)

    def total(self, label: str) -> float:
        return self.charges.get(label, (0, 0.0))[1]

    def count(self, label: str) -> int:
        return self.charges.get(label, (0, 0.0))[0]


class SimClock:
    """A monotonically advancing simulated clock with cost accounting.

    Components never sleep; they call :meth:`charge` with the name of a
    primitive from :class:`CostModel` (optionally scaled by a byte count or
    an explicit repeat factor) and the clock advances by the calibrated cost.
    """

    def __init__(self, cost_model: CostModel | None = None, start: float = 0.0):
        self.costs = cost_model if cost_model is not None else CostModel()
        self._now = float(start)
        self.stats = ClockStats()

    # -- time ----------------------------------------------------------------
    def now(self) -> float:
        """Current simulated time in seconds since the clock was created."""

        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by *seconds* (must be non-negative)."""

        if seconds < 0:
            raise ValueError("cannot move the simulated clock backwards")
        self._now += seconds
        return self._now

    # -- cost charging -------------------------------------------------------
    def charge(self, primitive: str, *, times: int = 1, nbytes: int = 0,
               scale: float = 1.0) -> float:
        """Charge the cost of *primitive* and advance the clock.

        ``times`` repeats the primitive; ``nbytes`` is used for per-byte
        primitives (``disk_transfer_per_byte``, ``archive_per_byte``) where
        the charged amount is ``cost * nbytes`` instead of ``cost * times``.
        ``scale`` multiplies the final amount (used e.g. for the DLFM's lean
        repository).  Returns the amount of simulated time charged.
        """

        unit = getattr(self.costs, primitive)
        amount = unit * nbytes if nbytes else unit * times
        amount *= scale
        self._now += amount
        self.stats.record(primitive, amount)
        return amount

    def measure(self) -> "Stopwatch":
        """Return a :class:`Stopwatch` started at the current simulated time."""

        return Stopwatch(self)


class Stopwatch:
    """Measures elapsed simulated time; usable as a context manager."""

    def __init__(self, clock: SimClock):
        self._clock = clock
        self.start = clock.now()
        self.stop: float | None = None

    def __enter__(self) -> "Stopwatch":
        self.start = self._clock.now()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop = self._clock.now()

    @property
    def elapsed(self) -> float:
        """Elapsed simulated seconds (to the stop point, or to now)."""

        end = self.stop if self.stop is not None else self._clock.now()
        return end - self.start

    @property
    def elapsed_ms(self) -> float:
        """Elapsed simulated milliseconds."""

        return self.elapsed * 1000.0
