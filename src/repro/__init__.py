"""Reproduction of *Database Managed External File Update* (Mittal & Hsiao, ICDE 2001).

The package implements IBM's DataLinks architecture extended with the paper's
update-in-place (UIP) mechanism, together with every substrate it relies on:

* :mod:`repro.storage`   -- a small relational database engine (the host DBMS
  and each DLFM repository): WAL, 2PL, ARIES-style recovery, 2PC, backup.
* :mod:`repro.fs`        -- a simulated UNIX file-system stack with a
  stackable VFS so DLFS can interpose on lookup/open/close/remove/rename.
* :mod:`repro.ipc`       -- daemons and latency-charging channels.
* :mod:`repro.datalinks` -- the DataLinks engine, DLFM, DLFS, tokens, control
  modes, update-in-place, coordinated backup/restore, and the Section 3
  baselines (check-in/check-out, copy-and-update, unlink/relink, BLOBs).
* :mod:`repro.api`       -- :class:`~repro.api.system.DataLinksSystem` and
  :class:`~repro.api.session.Session`, the public entry points.
* :mod:`repro.workloads` / :mod:`repro.bench` -- workload generators and the
  experiment harness reproducing the paper's evaluation claims.

Quickstart::

    from repro.api import DataLinksSystem
    from repro.storage.schema import Column, TableSchema
    from repro.storage.values import DataType
    from repro.datalinks import ControlMode
    from repro.datalinks.datalink_type import DatalinkOptions, datalink_column

    system = DataLinksSystem()
    system.add_file_server("fs1")
    system.create_table(TableSchema("docs", [
        Column("doc_id", DataType.INTEGER, nullable=False),
        datalink_column("body", DatalinkOptions(control_mode=ControlMode.RFD)),
    ], primary_key=("doc_id",)))

    user = system.session("alice", uid=1001)
    url = user.put_file("fs1", "/docs/page.html", b"<html>v1</html>")
    user.insert("docs", {"doc_id": 1, "body": url})

    write_url = user.get_datalink("docs", {"doc_id": 1}, "body", access="write")
    with user.update_file(write_url, truncate=True) as update:
        update.replace(b"<html>v2</html>")
"""

from repro.api import DataLinksSystem, Session
from repro.datalinks import ControlMode
from repro.datalinks.datalink_type import DatalinkOptions, OnUnlink, datalink_column
from repro.simclock import ClockDomain, ClockDomainGroup, CostModel, SimClock
from repro.storage import Column, DataType, Database, TableSchema

__version__ = "1.0.0"

__all__ = [
    "DataLinksSystem",
    "Session",
    "ControlMode",
    "DatalinkOptions",
    "OnUnlink",
    "datalink_column",
    "CostModel",
    "SimClock",
    "ClockDomain",
    "ClockDomainGroup",
    "Column",
    "DataType",
    "Database",
    "TableSchema",
    "__version__",
]
