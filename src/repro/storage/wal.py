"""Write-ahead log.

The log is the durability boundary of the simulated database: records appended
but not yet flushed are lost on :meth:`~repro.storage.database.Database.crash`,
while flushed records survive and drive redo during recovery.  Commit and
prepare force a flush, mirroring the usual WAL protocol.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.util.lsn import LSN


class LogRecordType(enum.Enum):
    BEGIN = "BEGIN"
    COMMIT = "COMMIT"
    ABORT = "ABORT"
    PREPARE = "PREPARE"            # two-phase-commit vote
    INSERT = "INSERT"
    UPDATE = "UPDATE"
    DELETE = "DELETE"
    CREATE_TABLE = "CREATE_TABLE"
    DROP_TABLE = "DROP_TABLE"
    CLR = "CLR"                    # compensation record written during undo
    CHECKPOINT = "CHECKPOINT"
    SAVEPOINT = "SAVEPOINT"


@dataclass
class LogRecord:
    """One WAL record.

    ``before``/``after`` carry full row images for data records, keeping undo
    and redo trivially idempotent.  ``extra`` carries record-type specific
    payload (schema for CREATE_TABLE, undone LSN for CLR, ...).
    """

    lsn: LSN
    txn_id: int
    type: LogRecordType
    table: str | None = None
    rid: int | None = None
    before: dict | None = None
    after: dict | None = None
    prev_lsn: LSN | None = None
    extra: dict = field(default_factory=dict)


class WriteAheadLog:
    """An append-only sequence of :class:`LogRecord` with an explicit flush point."""

    def __init__(self):
        self._records: list[LogRecord] = []
        self._next_lsn = 1
        self._flushed_count = 0

    # -- append / flush --------------------------------------------------------
    def append(self, txn_id: int, type: LogRecordType, **fields_) -> LogRecord:
        """Append a record, assigning the next LSN; does not flush."""

        record = LogRecord(lsn=LSN(self._next_lsn), txn_id=txn_id, type=type, **fields_)
        self._next_lsn += 1
        self._records.append(record)
        return record

    def flush(self) -> LSN:
        """Make every appended record durable; returns the tail LSN."""

        self._flushed_count = len(self._records)
        return self.tail_lsn()

    @property
    def flushed_lsn(self) -> LSN:
        """LSN of the last durable record (0 when nothing is durable)."""

        if self._flushed_count == 0:
            return LSN(0)
        return self._records[self._flushed_count - 1].lsn

    def tail_lsn(self) -> LSN:
        """LSN of the last appended record (0 when the log is empty)."""

        if not self._records:
            return LSN(0)
        return self._records[-1].lsn

    # -- reading ----------------------------------------------------------------
    def records(self, durable_only: bool = False) -> list[LogRecord]:
        """All records (or only the durable prefix)."""

        if durable_only:
            return list(self._records[: self._flushed_count])
        return list(self._records)

    def records_from(self, lsn: LSN, durable_only: bool = True) -> list[LogRecord]:
        """Records with LSN strictly greater than *lsn*."""

        source = self.records(durable_only)
        return [record for record in source if record.lsn > lsn]

    def records_of(self, txn_id: int, durable_only: bool = False) -> list[LogRecord]:
        source = self.records(durable_only)
        return [record for record in source if record.txn_id == txn_id]

    # -- crash simulation --------------------------------------------------------
    def lose_unflushed(self) -> int:
        """Discard records that were never flushed; returns how many were lost."""

        lost = len(self._records) - self._flushed_count
        del self._records[self._flushed_count:]
        self._next_lsn = (self._records[-1].lsn.value + 1) if self._records else 1
        return lost

    def __len__(self) -> int:
        return len(self._records)
