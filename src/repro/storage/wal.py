"""Write-ahead log.

The log is the durability boundary of the simulated database: records appended
but not yet flushed are lost on :meth:`~repro.storage.database.Database.crash`,
while flushed records survive and drive redo during recovery.  Prepare always
forces a flush (a two-phase-commit vote must be durable); commit flushes
according to the log's *flush policy*:

``FlushPolicy.IMMEDIATE``
    every commit forces its own flush -- the classic WAL protocol and the
    default;
``FlushPolicy.GROUP``
    commits enqueue and a single flush covers a batch of up to
    ``group_window`` commits (group commit).  A transaction whose COMMIT
    record has not yet been flushed can still be lost by a crash; recovery
    then treats it as a loser, and a prepared two-phase-commit branch of it
    is resolved from the coordinator's durable outcome.

Explicit :meth:`WriteAheadLog.flush` calls (checkpoint, backup, prepare)
always drain the pending group.

The flush point is also the *replication* boundary: listeners registered
with :meth:`WriteAheadLog.add_flush_listener` are notified whenever the
durable prefix grows, which is how a shard primary ships its repository WAL
stream to a witness replica (only durable records are ever shipped, so a
replica can never hold a transaction the primary could lose in a crash).
Shipping is a *pipelined* send in simulated time: the witness applies the
batch on its own clock domain and the primary does not wait, so replication
overlaps foreground work (see :mod:`repro.simclock`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.util.lsn import LSN


class FlushPolicy(enum.Enum):
    """When COMMIT records are forced to the durable log."""

    IMMEDIATE = "immediate"
    GROUP = "group"

    @classmethod
    def from_string(cls, value: "FlushPolicy | str") -> "FlushPolicy":
        if isinstance(value, FlushPolicy):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            raise ValueError(
                f"unknown flush policy {value!r}; "
                f"expected one of {[p.value for p in cls]}") from None


class LogRecordType(enum.Enum):
    BEGIN = "BEGIN"
    COMMIT = "COMMIT"
    ABORT = "ABORT"
    PREPARE = "PREPARE"            # two-phase-commit vote
    INSERT = "INSERT"
    UPDATE = "UPDATE"
    DELETE = "DELETE"
    CREATE_TABLE = "CREATE_TABLE"
    DROP_TABLE = "DROP_TABLE"
    CLR = "CLR"                    # compensation record written during undo
    CHECKPOINT = "CHECKPOINT"
    SAVEPOINT = "SAVEPOINT"


@dataclass(slots=True)
class LogRecord:
    """One WAL record.

    ``before``/``after`` carry full row images for data records, keeping undo
    and redo trivially idempotent.  ``extra`` carries record-type specific
    payload (schema for CREATE_TABLE, undone LSN for CLR, ...).
    """

    lsn: LSN
    txn_id: int
    type: LogRecordType
    table: str | None = None
    rid: int | None = None
    before: dict | None = None
    after: dict | None = None
    prev_lsn: LSN | None = None
    extra: dict = field(default_factory=dict)


class WriteAheadLog:
    """An append-only sequence of :class:`LogRecord` with an explicit flush point."""

    def __init__(self, flush_policy: FlushPolicy | str = FlushPolicy.IMMEDIATE,
                 group_window: int = 8):
        self._records: list[LogRecord] = []
        self._by_txn: dict[int, list[LogRecord]] = {}
        self._next_lsn = 1
        self._flushed_count = 0
        self.flush_policy = FlushPolicy.from_string(flush_policy)
        self.group_window = max(1, int(group_window))
        self._pending_commits = 0
        self.flush_count = 0
        self._flush_listeners: list = []

    # -- flush policy ----------------------------------------------------------
    def set_flush_policy(self, policy: FlushPolicy | str,
                         group_window: int | None = None) -> None:
        """Change the commit flush policy (and optionally the group window).

        Switching back to IMMEDIATE drains any pending group so no committed
        transaction stays non-durable longer than requested.
        """

        self.flush_policy = FlushPolicy.from_string(policy)
        if group_window is not None:
            self.group_window = max(1, int(group_window))
        if self.flush_policy is FlushPolicy.IMMEDIATE and self._pending_commits:
            self.flush()

    @property
    def pending_commits(self) -> int:
        """Commits appended since the last flush (0 under IMMEDIATE policy)."""

        return self._pending_commits

    # -- append / flush --------------------------------------------------------
    def append(self, txn_id: int, type: LogRecordType, **fields_) -> LogRecord:
        """Append a record, assigning the next LSN; does not flush."""

        record = LogRecord(lsn=LSN(self._next_lsn), txn_id=txn_id, type=type, **fields_)
        self._next_lsn += 1
        self._records.append(record)
        by_txn = self._by_txn
        try:
            by_txn[txn_id].append(record)
        except KeyError:
            by_txn[txn_id] = [record]
        return record

    def note_commit(self) -> bool:
        """Apply the flush policy after a COMMIT record was appended.

        Returns ``True`` when the log was actually forced (so the caller can
        charge the flush cost once per physical flush, not once per commit).
        """

        if self.flush_policy is FlushPolicy.IMMEDIATE:
            self.flush()
            return True
        self._pending_commits += 1
        if self._pending_commits >= self.group_window:
            self.flush()
            return True
        return False

    # -- replication hooks -----------------------------------------------------
    def add_flush_listener(self, listener) -> None:
        """Register *listener* to be called (with this log) after every flush.

        Listeners see the log only once the durable prefix has been
        extended, so :meth:`records_from` called from a listener returns
        exactly the newly durable records past the listener's cursor.
        """

        if listener not in self._flush_listeners:
            self._flush_listeners.append(listener)

    def remove_flush_listener(self, listener) -> None:
        if listener in self._flush_listeners:
            self._flush_listeners.remove(listener)

    def flush(self) -> LSN:
        """Make every appended record durable; returns the tail LSN."""

        records = self._records
        count = len(records)
        grew = self._flushed_count < count
        self._flushed_count = count
        self._pending_commits = 0
        self.flush_count += 1
        if grew and self._flush_listeners:
            for listener in list(self._flush_listeners):
                listener(self)
        # Tail is re-read after the listeners ran (``tail_lsn`` inlined).
        return records[-1].lsn if records else LSN(0)

    @property
    def flushed_lsn(self) -> LSN:
        """LSN of the last durable record (0 when nothing is durable)."""

        if self._flushed_count == 0:
            return LSN(0)
        return self._records[self._flushed_count - 1].lsn

    def tail_lsn(self) -> LSN:
        """LSN of the last appended record (0 when the log is empty)."""

        if not self._records:
            return LSN(0)
        return self._records[-1].lsn

    # -- reading ----------------------------------------------------------------
    def records(self, durable_only: bool = False) -> list[LogRecord]:
        """All records (or only the durable prefix)."""

        if durable_only:
            return list(self._records[: self._flushed_count])
        return list(self._records)

    def records_from(self, lsn: LSN, durable_only: bool = True) -> list[LogRecord]:
        """Records with LSN strictly greater than *lsn*.

        LSNs are append-ordered, so the start position is found by binary
        search -- a WAL shipper polling after every flush stays O(log n +
        shipped) instead of rescanning the whole log each time.
        """

        limit = self._flushed_count if durable_only else len(self._records)
        target = int(lsn)
        records = self._records
        low, high = 0, limit
        while low < high:
            mid = (low + high) // 2
            if records[mid].lsn > target:
                high = mid
            else:
                low = mid + 1
        return records[low:limit]

    def records_of(self, txn_id: int, durable_only: bool = False) -> list[LogRecord]:
        # Served from a per-transaction index: scanning the whole log here
        # made replica-staleness checks quadratic in log length.
        bucket = self._by_txn.get(txn_id)
        if bucket is None:
            return []
        if not durable_only:
            return list(bucket)
        if self._flushed_count == 0:
            return []
        durable = self._records[self._flushed_count - 1].lsn.value
        return [record for record in bucket if record.lsn.value <= durable]

    def outcome_of(self, txn_id: int) -> str:
        """The durable outcome of *txn_id* -- ``"committed"``, ``"aborted"``
        or ``"unknown"`` -- scanning the durable prefix backwards without
        copying the log (this runs on every 2PC in-doubt resolution)."""

        records = self._records
        for position in range(self._flushed_count - 1, -1, -1):
            record = records[position]
            if record.txn_id != txn_id:
                continue
            if record.type is LogRecordType.COMMIT:
                return "committed"
            if record.type is LogRecordType.ABORT:
                return "aborted"
        return "unknown"

    # -- crash simulation --------------------------------------------------------
    def lose_unflushed(self) -> int:
        """Discard records that were never flushed; returns how many were lost."""

        lost = len(self._records) - self._flushed_count
        durable = self.flushed_lsn.value
        for record in self._records[self._flushed_count:]:
            bucket = self._by_txn.get(record.txn_id)
            if bucket is None:
                continue
            while bucket and bucket[-1].lsn.value > durable:
                bucket.pop()
            if not bucket:
                del self._by_txn[record.txn_id]
        del self._records[self._flushed_count:]
        self._next_lsn = (self._records[-1].lsn.value + 1) if self._records else 1
        self._pending_commits = 0
        return lost

    def __len__(self) -> int:
        return len(self._records)
