"""Secondary indexes: hash indexes for equality and an ordered index for ranges."""

from __future__ import annotations

import bisect

from repro.errors import DuplicateKeyError


class HashIndex:
    """Equality index mapping a key tuple to the set of row ids holding it."""

    def __init__(self, name: str, table: str, columns: tuple[str, ...], unique: bool = False):
        self.name = name
        self.table = table
        self.columns = tuple(columns)
        self.unique = unique
        self._single = self.columns[0] if len(self.columns) == 1 else None
        self._entries: dict[tuple, set[int]] = {}

    def key_of(self, row: dict) -> tuple:
        single = self._single
        if single is not None:
            return (row[single],)
        return tuple(row[column] for column in self.columns)

    def insert(self, row: dict, rid: int) -> None:
        # ``key_of`` is inlined here (and in ``remove``): index maintenance
        # runs once per index per DML row and the extra frame was measurable.
        single = self._single
        key = (row[single],) if single is not None else \
            tuple(row[column] for column in self.columns)
        entries = self._entries
        try:
            bucket = entries[key]
        except KeyError:
            entries[key] = {rid}
            return
        if self.unique and bucket and rid not in bucket:
            raise DuplicateKeyError(
                f"index {self.name}: duplicate key {key!r} on table {self.table}")
        bucket.add(rid)

    def remove(self, row: dict, rid: int) -> None:
        single = self._single
        key = (row[single],) if single is not None else \
            tuple(row[column] for column in self.columns)
        entries = self._entries
        try:
            bucket = entries[key]
        except KeyError:
            return
        bucket.discard(rid)
        if not bucket:
            del entries[key]

    def lookup(self, key: tuple) -> set[int]:
        return set(self._entries.get(tuple(key), ()))

    def bucket(self, key: tuple):
        """The rid collection for *key* without copying (read-only view)."""

        return self._entries.get(tuple(key), ())

    def contains(self, key: tuple) -> bool:
        return tuple(key) in self._entries

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._entries.values())


class OrderedIndex:
    """A sorted (key, rid) index supporting range scans.

    Backed by a sorted list with binary search -- adequate for the table
    sizes the reproduction works with and entirely deterministic.
    """

    def __init__(self, name: str, table: str, columns: tuple[str, ...], unique: bool = False):
        self.name = name
        self.table = table
        self.columns = tuple(columns)
        self.unique = unique
        self._keys: list[tuple] = []
        self._rids: list[int] = []

    def key_of(self, row: dict) -> tuple:
        return tuple(row[column] for column in self.columns)

    def insert(self, row: dict, rid: int) -> None:
        key = self.key_of(row)
        position = bisect.bisect_left(self._keys, key)
        if self.unique:
            if position < len(self._keys) and self._keys[position] == key \
                    and self._rids[position] != rid:
                raise DuplicateKeyError(
                    f"index {self.name}: duplicate key {key!r} on table {self.table}")
        self._keys.insert(position, key)
        self._rids.insert(position, rid)

    def remove(self, row: dict, rid: int) -> None:
        key = self.key_of(row)
        position = bisect.bisect_left(self._keys, key)
        while position < len(self._keys) and self._keys[position] == key:
            if self._rids[position] == rid:
                del self._keys[position]
                del self._rids[position]
                return
            position += 1

    def lookup(self, key: tuple) -> set[int]:
        key = tuple(key)
        result: set[int] = set()
        position = bisect.bisect_left(self._keys, key)
        while position < len(self._keys) and self._keys[position] == key:
            result.add(self._rids[position])
            position += 1
        return result

    def bucket(self, key: tuple):
        """The rid collection for *key* (same contract as ``HashIndex.bucket``)."""

        return self.lookup(key)

    def range_scan(self, low: tuple | None = None, high: tuple | None = None,
                   include_low: bool = True, include_high: bool = True):
        """Iterate ``(key, rid)`` pairs with keys in ``[low, high]``."""

        if low is None:
            start = 0
        else:
            low = tuple(low)
            start = bisect.bisect_left(self._keys, low) if include_low \
                else bisect.bisect_right(self._keys, low)
        for position in range(start, len(self._keys)):
            key = self._keys[position]
            if high is not None:
                high_t = tuple(high)
                if include_high and key > high_t:
                    break
                if not include_high and key >= high_t:
                    break
            yield key, self._rids[position]

    def clear(self) -> None:
        self._keys.clear()
        self._rids.clear()

    def __len__(self) -> int:
        return len(self._keys)
