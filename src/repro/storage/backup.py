"""Point-in-time database backup and restore.

Section 4.4 of the paper keys each archived file version to a *database state
identifier* (for example the tail LSN) so that restoring the database to a
past point brings the linked files back to matching versions.  The backup
image therefore records the tail LSN at the time the backup was taken; the
DataLinks backup coordinator uses it to pick file versions on restore.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BackupError
from repro.util.lsn import LSN


@dataclass
class BackupImage:
    """A full, self-contained copy of the database at one point in time."""

    backup_id: int
    state_id: LSN
    taken_at: float
    catalog_snapshot: dict = field(repr=False, default_factory=dict)
    label: str = ""


class BackupManager:
    """Creates and restores full backups of one database."""

    def __init__(self, database):
        self._database = database
        self._images: dict[int, BackupImage] = {}
        self._next_id = 1

    def create_backup(self, label: str = "") -> BackupImage:
        """Take a full backup; the database must have no active transactions."""

        database = self._database
        if database.active_transactions():
            raise BackupError("cannot take a backup while transactions are active")
        if database.clock is not None:
            database.clock.charge("backup_per_row", times=max(1, database.total_rows()))
        image = BackupImage(
            backup_id=self._next_id,
            state_id=database.state_identifier(),
            taken_at=database.now(),
            catalog_snapshot=database.catalog.snapshot(),
            label=label,
        )
        self._next_id += 1
        self._images[image.backup_id] = image
        return image

    def restore(self, image: BackupImage) -> LSN:
        """Restore the database to *image*; returns the restored state id."""

        database = self._database
        if image.backup_id not in self._images and image.catalog_snapshot is None:
            raise BackupError(f"unknown backup image {image.backup_id}")
        if database.active_transactions():
            raise BackupError("cannot restore while transactions are active")
        if database.clock is not None:
            database.clock.charge("backup_per_row", times=max(1, database.total_rows()))
        database.catalog.load_snapshot(image.catalog_snapshot)
        database.note_restored_to(image.state_id)
        return image.state_id

    def images(self) -> list[BackupImage]:
        return [self._images[key] for key in sorted(self._images)]

    def latest(self) -> BackupImage | None:
        if not self._images:
            return None
        return self._images[max(self._images)]
