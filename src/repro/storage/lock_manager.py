"""Strict two-phase locking with deadlock detection.

The reproduction runs in a single Python thread: "concurrency" is simulated
by workload drivers that interleave operations of several logical
transactions.  Consequently the lock manager never blocks; an acquisition
that cannot be granted raises :class:`LockConflictError` (carrying the
current holders) and the caller decides whether to retry later, abort or
escalate.  Wait-for edges are recorded on conflict so cycles are detected and
reported as :class:`DeadlockError`, mirroring a conventional detector.
"""

from __future__ import annotations

import enum
from collections import defaultdict

from repro.errors import DeadlockError, LockConflictError


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"

    def compatible_with(self, other: "LockMode") -> bool:
        return self is LockMode.SHARED and other is LockMode.SHARED


class LockManager:
    """Tracks which transaction holds which resource in which mode."""

    def __init__(self):
        # resource -> {txn_id: LockMode}
        self._holders: dict[object, dict[int, LockMode]] = defaultdict(dict)
        # txn_id -> set of resources
        self._owned: dict[int, set[object]] = defaultdict(set)
        # waits-for edges recorded on conflict: waiter -> set of holders
        self._waits_for: dict[int, set[int]] = defaultdict(set)

    # -- acquisition -----------------------------------------------------------
    def acquire(self, txn_id: int, resource: object, mode: LockMode) -> bool:
        """Grant *resource* to *txn_id* in *mode* or raise.

        Returns ``True`` on success.  Raises :class:`DeadlockError` when the
        implied wait would close a cycle and :class:`LockConflictError` when
        the lock is simply unavailable.
        """

        holders = self._holders[resource]
        current = holders.get(txn_id)
        if current is not None:
            if current is LockMode.EXCLUSIVE or current is mode:
                return True
            # upgrade S -> X: allowed only if we are the sole holder
            others = [other for other in holders if other != txn_id]
            if not others:
                holders[txn_id] = LockMode.EXCLUSIVE
                return True
            self._record_wait(txn_id, others)
            raise LockConflictError(resource, mode, others)

        conflicting = [other for other, held in holders.items()
                       if other != txn_id and not held.compatible_with(mode)]
        if conflicting:
            self._record_wait(txn_id, conflicting)
            raise LockConflictError(resource, mode, conflicting)

        holders[txn_id] = mode
        self._owned[txn_id].add(resource)
        self._waits_for.pop(txn_id, None)
        return True

    def try_acquire(self, txn_id: int, resource: object, mode: LockMode) -> bool:
        """Like :meth:`acquire` but returns ``False`` instead of raising on conflict."""

        try:
            return self.acquire(txn_id, resource, mode)
        except (LockConflictError, DeadlockError):
            return False

    def _record_wait(self, waiter: int, holders: list[int]) -> None:
        self._waits_for[waiter].update(holders)
        if self._has_cycle(waiter):
            self._waits_for.pop(waiter, None)
            raise DeadlockError(
                f"transaction {waiter} would deadlock waiting for {sorted(holders)}")

    def _has_cycle(self, start: int) -> bool:
        seen: set[int] = set()
        stack = list(self._waits_for.get(start, ()))
        while stack:
            node = stack.pop()
            if node == start:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._waits_for.get(node, ()))
        return False

    # -- release ----------------------------------------------------------------
    def release(self, txn_id: int, resource: object) -> None:
        holders = self._holders.get(resource)
        if holders and txn_id in holders:
            del holders[txn_id]
            if not holders:
                self._holders.pop(resource, None)
        self._owned.get(txn_id, set()).discard(resource)

    def release_all(self, txn_id: int) -> None:
        """Release every lock held by *txn_id* (end of strict 2PL)."""

        for resource in list(self._owned.get(txn_id, ())):
            self.release(txn_id, resource)
        self._owned.pop(txn_id, None)
        self._waits_for.pop(txn_id, None)
        for waiters in self._waits_for.values():
            waiters.discard(txn_id)

    # -- inspection ---------------------------------------------------------------
    def holders_of(self, resource: object) -> dict[int, LockMode]:
        return dict(self._holders.get(resource, {}))

    def locks_of(self, txn_id: int) -> set[object]:
        return set(self._owned.get(txn_id, ()))

    def holds(self, txn_id: int, resource: object, mode: LockMode | None = None) -> bool:
        held = self._holders.get(resource, {}).get(txn_id)
        if held is None:
            return False
        if mode is None:
            return True
        return held is mode or held is LockMode.EXCLUSIVE

    def clear(self) -> None:
        self._holders.clear()
        self._owned.clear()
        self._waits_for.clear()
