"""Strict two-phase locking with deadlock detection.

The reproduction runs in a single Python thread: "concurrency" is simulated
by workload drivers that interleave operations of several logical
transactions.  Consequently the lock manager never blocks; an acquisition
that cannot be granted raises :class:`LockConflictError` (carrying the
current holders) and the caller decides whether to retry later, abort or
escalate.  Wait-for edges are recorded on conflict so cycles are detected and
reported as :class:`DeadlockError`, mirroring a conventional detector.
"""

from __future__ import annotations

import enum

from repro.errors import DeadlockError, LockConflictError


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"

    def compatible_with(self, other: "LockMode") -> bool:
        return self is LockMode.SHARED and other is LockMode.SHARED


class LockManager:
    """Tracks which transaction holds which resource in which mode."""

    def __init__(self):
        # Plain dicts (not defaultdicts): the hot paths below use
        # ``in``/``del``/try-except probes that must not materialize empty
        # entries as a side effect.
        # resource -> {txn_id: LockMode}
        self._holders: dict[object, dict[int, LockMode]] = {}
        # txn_id -> set of resources
        self._owned: dict[int, set[object]] = {}
        # waits-for edges recorded on conflict: waiter -> set of holders
        self._waits_for: dict[int, set[int]] = {}

    # -- acquisition -----------------------------------------------------------
    def acquire(self, txn_id: int, resource: object, mode: LockMode) -> bool:
        """Grant *resource* to *txn_id* in *mode* or raise.

        Returns ``True`` on success.  Raises :class:`DeadlockError` when the
        implied wait would close a cycle and :class:`LockConflictError` when
        the lock is simply unavailable.
        """

        holders_map = self._holders
        try:
            holders = holders_map[resource]
        except KeyError:
            holders = holders_map[resource] = {}
        if holders:
            try:
                current = holders[txn_id]
            except KeyError:
                current = None
            if current is not None:
                if current is LockMode.EXCLUSIVE or current is mode:
                    return True
                # upgrade S -> X: allowed only if we are the sole holder
                others = [other for other in holders if other != txn_id]
                if not others:
                    holders[txn_id] = LockMode.EXCLUSIVE
                    return True
                self._record_wait(txn_id, others)
                raise LockConflictError(resource, mode, others)

            conflicting = [other for other, held in holders.items()
                           if other != txn_id and not held.compatible_with(mode)]
            if conflicting:
                self._record_wait(txn_id, conflicting)
                raise LockConflictError(resource, mode, conflicting)

        holders[txn_id] = mode
        owned = self._owned
        try:
            owned[txn_id].add(resource)
        except KeyError:
            owned[txn_id] = {resource}
        if txn_id in self._waits_for:
            del self._waits_for[txn_id]
        return True

    def try_acquire(self, txn_id: int, resource: object, mode: LockMode) -> bool:
        """Like :meth:`acquire` but returns ``False`` instead of raising on conflict."""

        try:
            return self.acquire(txn_id, resource, mode)
        except (LockConflictError, DeadlockError):
            return False

    def _record_wait(self, waiter: int, holders: list[int]) -> None:
        waits = self._waits_for
        try:
            waits[waiter].update(holders)
        except KeyError:
            waits[waiter] = set(holders)
        if self._has_cycle(waiter):
            self._waits_for.pop(waiter, None)
            raise DeadlockError(
                f"transaction {waiter} would deadlock waiting for {sorted(holders)}")

    def _has_cycle(self, start: int) -> bool:
        seen: set[int] = set()
        stack = list(self._waits_for.get(start, ()))
        while stack:
            node = stack.pop()
            if node == start:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._waits_for.get(node, ()))
        return False

    # -- release ----------------------------------------------------------------
    def release(self, txn_id: int, resource: object) -> None:
        holders_map = self._holders
        try:
            holders = holders_map[resource]
        except KeyError:
            holders = None
        if holders and txn_id in holders:
            del holders[txn_id]
            if not holders:
                del holders_map[resource]
        owned = self._owned
        if txn_id in owned:
            owned[txn_id].discard(resource)

    def release_all(self, txn_id: int) -> None:
        """Release every lock held by *txn_id* (end of strict 2PL).

        :meth:`release` is inlined into the loop: this runs at the end of
        every transaction and the per-resource call overhead dominated.
        ``acquire`` keeps ``_owned`` and ``_holders`` in lockstep, so every
        owned resource is guarded defensively but normally present.
        """

        owned = self._owned
        if txn_id in owned:
            resources = owned[txn_id]
            del owned[txn_id]
            holders_map = self._holders
            for resource in resources:
                if resource in holders_map:
                    holders = holders_map[resource]
                    if txn_id in holders:
                        del holders[txn_id]
                        if not holders:
                            del holders_map[resource]
        waits = self._waits_for
        if txn_id in waits:
            del waits[txn_id]
        if waits:
            for waiters in waits.values():
                waiters.discard(txn_id)

    # -- inspection ---------------------------------------------------------------
    def holders_of(self, resource: object) -> dict[int, LockMode]:
        return dict(self._holders.get(resource, {}))

    def locks_of(self, txn_id: int) -> set[object]:
        return set(self._owned.get(txn_id, ()))

    def holds(self, txn_id: int, resource: object, mode: LockMode | None = None) -> bool:
        held = self._holders.get(resource, {}).get(txn_id)
        if held is None:
            return False
        if mode is None:
            return True
        return held is mode or held is LockMode.EXCLUSIVE

    def clear(self) -> None:
        self._holders.clear()
        self._owned.clear()
        self._waits_for.clear()
