"""Heap tables: unordered row storage addressed by row id."""

from __future__ import annotations

import copy

from repro.errors import NoSuchRowError
from repro.storage.schema import TableSchema


class HeapTable:
    """In-memory heap of rows for one table.

    Rows are plain dicts keyed by column name; the heap hands out
    monotonically increasing integer row ids.  The heap itself is *volatile*:
    durability comes from the write-ahead log and checkpoints managed by the
    database, which call :meth:`snapshot` / :meth:`load_snapshot`.
    """

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._rows: dict[int, dict] = {}
        self._next_rid = 1

    # -- basic operations ------------------------------------------------------
    def insert(self, row: dict, rid: int | None = None) -> int:
        """Store *row*; returns its row id.

        ``rid`` may be forced by recovery/undo so that row ids are stable
        across redo and rollback.
        """

        if rid is None:
            rid = self._next_rid
            self._next_rid += 1
        else:
            self._next_rid = max(self._next_rid, rid + 1)
        self._rows[rid] = dict(row)
        return rid

    def get(self, rid: int) -> dict:
        """Return a copy of the row stored under *rid*."""

        try:
            return dict(self._rows[rid])
        except KeyError:
            raise NoSuchRowError(f"table {self.schema.name}: no row {rid}") from None

    def exists(self, rid: int) -> bool:
        return rid in self._rows

    def update(self, rid: int, row: dict) -> None:
        """Replace the row stored under *rid*."""

        if rid not in self._rows:
            raise NoSuchRowError(f"table {self.schema.name}: no row {rid}")
        self._rows[rid] = dict(row)

    def delete(self, rid: int) -> dict:
        """Remove and return the row stored under *rid*."""

        try:
            return self._rows.pop(rid)
        except KeyError:
            raise NoSuchRowError(f"table {self.schema.name}: no row {rid}") from None

    def scan(self):
        """Iterate ``(rid, row copy)`` over all live rows (stable order)."""

        for rid in sorted(self._rows):
            yield rid, dict(self._rows[rid])

    def __len__(self) -> int:
        return len(self._rows)

    # -- checkpoint / backup support -------------------------------------------
    def snapshot(self) -> dict:
        """A deep copy of the heap contents, for checkpoints and backups."""

        return {
            "rows": copy.deepcopy(self._rows),
            "next_rid": self._next_rid,
        }

    def load_snapshot(self, snapshot: dict) -> None:
        """Replace the heap contents with a previously taken snapshot."""

        self._rows = copy.deepcopy(snapshot["rows"])
        self._next_rid = snapshot["next_rid"]

    def clear(self) -> None:
        """Drop all rows (used to simulate loss of volatile state)."""

        self._rows.clear()
        self._next_rid = 1
