"""Heap tables: unordered row storage addressed by row id."""

from __future__ import annotations

from repro.errors import NoSuchRowError
from repro.storage.schema import TableSchema


class HeapTable:
    """In-memory heap of rows for one table.

    Rows are plain dicts keyed by column name; the heap hands out
    monotonically increasing integer row ids.  The heap itself is *volatile*:
    durability comes from the write-ahead log and checkpoints managed by the
    database, which call :meth:`snapshot` / :meth:`load_snapshot`.

    Row *values* are always immutable scalars (``validate_value`` normalizes
    every stored value to int/float/str/bool/bytes/None), so per-row dict
    copies are as deep as a copy ever needs to be -- snapshots and scans
    exploit that instead of paying ``copy.deepcopy``.  The scan order
    (sorted row ids) is cached and invalidated only when the rid *set*
    changes, so repeated full scans skip the per-call sort.
    """

    __slots__ = ("schema", "_rows", "_next_rid", "_sorted_rids", "mutations")

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._rows: dict[int, dict] = {}
        self._next_rid = 1
        self._sorted_rids: list[int] | None = None
        #: Monotone mutation counter.  Every content change -- insert, update,
        #: delete, snapshot restore, clear -- bumps it, *whoever* the caller
        #: is (DML, replication redo, recovery, rollback), so derived caches
        #: such as the database's column-maximum trackers can validate
        #: against it instead of trusting that all writes funnel through one
        #: code path.
        self.mutations = 0

    # -- basic operations ------------------------------------------------------
    def insert(self, row: dict, rid: int | None = None) -> int:
        """Store *row*; returns its row id.

        ``rid`` may be forced by recovery/undo so that row ids are stable
        across redo and rollback.
        """

        self.mutations += 1
        if rid is None:
            rid = self._next_rid
            self._next_rid += 1
            # A fresh rid is always the largest: extend the cached order
            # in place instead of throwing it away.
            if self._sorted_rids is not None:
                self._sorted_rids.append(rid)
        else:
            self._next_rid = max(self._next_rid, rid + 1)
            self._sorted_rids = None
        self._rows[rid] = dict(row)
        return rid

    def get(self, rid: int) -> dict:
        """Return a copy of the row stored under *rid*."""

        try:
            return dict(self._rows[rid])
        except KeyError:
            raise NoSuchRowError(f"table {self.schema.name}: no row {rid}") from None

    def get_live(self, rid: int) -> dict:
        """The *stored* row dict under *rid* -- callers must not mutate it."""

        try:
            return self._rows[rid]
        except KeyError:
            raise NoSuchRowError(f"table {self.schema.name}: no row {rid}") from None

    def exists(self, rid: int) -> bool:
        return rid in self._rows

    def update(self, rid: int, row: dict) -> None:
        """Replace the row stored under *rid*."""

        if rid not in self._rows:
            raise NoSuchRowError(f"table {self.schema.name}: no row {rid}")
        self.mutations += 1
        self._rows[rid] = dict(row)

    def delete(self, rid: int) -> dict:
        """Remove and return the row stored under *rid*."""

        try:
            row = self._rows.pop(rid)
        except KeyError:
            raise NoSuchRowError(f"table {self.schema.name}: no row {rid}") from None
        self.mutations += 1
        self._sorted_rids = None
        return row

    def _scan_order(self) -> list[int]:
        order = self._sorted_rids
        if order is None:
            order = self._sorted_rids = sorted(self._rows)
        return order

    def scan(self):
        """Iterate ``(rid, row copy)`` over all live rows (stable order)."""

        rows = self._rows
        for rid in self._scan_order():
            yield rid, dict(rows[rid])

    def scan_live(self):
        """``(rid, stored row)`` pairs in stable (sorted rid) order -- the
        fast path for read-only predicate evaluation; callers must not
        mutate the returned dicts.  Returns a list, not a generator: the
        comprehension runs at C speed and the callers consume every pair
        anyway."""

        rows = self._rows
        order = self._sorted_rids
        if order is None:
            order = self._sorted_rids = sorted(rows)
        return [(rid, rows[rid]) for rid in order]

    def __len__(self) -> int:
        return len(self._rows)

    # -- checkpoint / backup support -------------------------------------------
    def snapshot(self) -> dict:
        """An isolated copy of the heap contents, for checkpoints and backups.

        Per-row shallow copies suffice: stored values are immutable scalars.
        """

        return {
            "rows": {rid: dict(row) for rid, row in self._rows.items()},
            "next_rid": self._next_rid,
        }

    def load_snapshot(self, snapshot: dict) -> None:
        """Replace the heap contents with a previously taken snapshot."""

        self._rows = {rid: dict(row) for rid, row in snapshot["rows"].items()}
        self._next_rid = snapshot["next_rid"]
        self._sorted_rids = None
        self.mutations += 1

    def clear(self) -> None:
        """Drop all rows (used to simulate loss of volatile state)."""

        self._rows.clear()
        self._next_rid = 1
        self._sorted_rids = None
        self.mutations += 1
