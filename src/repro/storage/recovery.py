"""ARIES-style crash recovery: analysis, redo, undo.

The database keeps its whole write-ahead log in memory, so recovery can be a
faithful (if simplified) ARIES: rebuild volatile state from the most recent
checkpoint snapshot, redo every durable record after the checkpoint, classify
transactions, then undo the losers while writing compensation records.
Transactions that voted PREPARE but had not been resolved at crash time are
*in doubt*: their effects are preserved and their locks re-acquired so the
two-phase-commit coordinator (the DataLinks engine) can later commit or abort
them -- this is what lets a DLFM act as a recoverable resource manager.
"""

from __future__ import annotations

from repro.storage.lock_manager import LockMode
from repro.storage.transaction import Transaction, TxnState
from repro.storage.wal import LogRecordType
from repro.util.lsn import LSN


class RecoveryManager:
    """Runs crash recovery against one :class:`~repro.storage.database.Database`."""

    def __init__(self, database):
        self._db = database

    # -- top level ---------------------------------------------------------------
    def recover(self) -> dict:
        """Perform analysis/redo/undo; returns a summary dict for inspection."""

        db = self._db
        checkpoint_lsn = self._load_checkpoint()
        durable = db.wal.records(durable_only=True)

        redo_count = self._redo(durable, checkpoint_lsn)
        committed, aborted, in_doubt, losers = self._analyze(durable)
        undo_count = self._undo_losers(durable, losers)
        self._reinstate_in_doubt(durable, in_doubt)

        db.catalog.rebuild_indexes()
        db.wal.flush()
        return {
            "checkpoint_lsn": checkpoint_lsn,
            "redo_records": redo_count,
            "committed": sorted(committed),
            "aborted": sorted(aborted),
            "in_doubt": sorted(in_doubt),
            "losers_undone": sorted(losers),
            "undo_records": undo_count,
        }

    # -- phases -------------------------------------------------------------------
    def _load_checkpoint(self) -> LSN:
        db = self._db
        checkpoint = db.last_checkpoint()
        if checkpoint is None:
            db.reset_catalog()
            return LSN(0)
        db.catalog.load_snapshot(checkpoint["snapshot"])
        return checkpoint["lsn"]

    def _redo(self, durable, checkpoint_lsn: LSN) -> int:
        db = self._db
        count = 0
        for record in durable:
            if record.lsn <= checkpoint_lsn:
                continue
            if record.type is LogRecordType.CREATE_TABLE:
                schema = record.extra["schema"]
                if not db.catalog.has_table(schema.name):
                    db.catalog.create_table(schema.copy())
            elif record.type is LogRecordType.DROP_TABLE:
                if db.catalog.has_table(record.table):
                    db.catalog.drop_table(record.table)
            elif record.type in (LogRecordType.INSERT, LogRecordType.UPDATE,
                                 LogRecordType.DELETE, LogRecordType.CLR):
                self._apply_redo(record)
            else:
                continue
            count += 1
        return count

    def _apply_redo(self, record) -> None:
        db = self._db
        if record.table is None or not db.catalog.has_table(record.table):
            return
        heap = db.catalog.heap(record.table)
        effective_type = record.type
        if record.type is LogRecordType.CLR:
            effective_type = LogRecordType(record.extra["redo_as"])
        if effective_type is LogRecordType.INSERT:
            heap.insert(record.after, rid=record.rid)
        elif effective_type is LogRecordType.UPDATE:
            if heap.exists(record.rid):
                heap.update(record.rid, record.after)
            else:
                heap.insert(record.after, rid=record.rid)
        elif effective_type is LogRecordType.DELETE:
            if heap.exists(record.rid):
                heap.delete(record.rid)

    def _analyze(self, durable):
        committed: set[int] = set()
        aborted: set[int] = set()
        prepared: set[int] = set()
        seen: set[int] = set()
        for record in durable:
            seen.add(record.txn_id)
            if record.type is LogRecordType.COMMIT:
                committed.add(record.txn_id)
                prepared.discard(record.txn_id)
            elif record.type is LogRecordType.ABORT:
                aborted.add(record.txn_id)
                prepared.discard(record.txn_id)
            elif record.type is LogRecordType.PREPARE:
                prepared.add(record.txn_id)
        in_doubt = prepared - committed - aborted
        losers = seen - committed - aborted - in_doubt
        # Transaction id 0 is the system/bootstrap pseudo-transaction.
        losers.discard(0)
        return committed, aborted, in_doubt, losers

    def _undo_losers(self, durable, losers: set[int]) -> int:
        db = self._db
        count = 0
        compensated: set[int] = set()
        for record in durable:
            if record.type is LogRecordType.CLR and "undone_lsn" in record.extra:
                compensated.add(record.extra["undone_lsn"])
        for record in reversed(durable):
            if record.txn_id not in losers:
                continue
            if record.type not in (LogRecordType.INSERT, LogRecordType.UPDATE,
                                   LogRecordType.DELETE):
                continue
            if record.lsn.value in compensated:
                continue
            db.apply_undo(record, during_recovery=True)
            count += 1
        for txn_id in losers:
            db.wal.append(txn_id, LogRecordType.ABORT)
        return count

    def _reinstate_in_doubt(self, durable, in_doubt: set[int]) -> None:
        db = self._db
        for txn_id in sorted(in_doubt):
            transaction = Transaction(txn_id=txn_id, state=TxnState.PREPARED)
            for record in durable:
                if record.txn_id != txn_id:
                    continue
                if record.type in (LogRecordType.INSERT, LogRecordType.UPDATE,
                                   LogRecordType.DELETE):
                    transaction.note_record(record)
                    db.locks.acquire(txn_id, ("row", record.table, record.rid),
                                     LockMode.EXCLUSIVE)
            db.register_recovered_transaction(transaction)
