"""Column data types and value validation/coercion.

The engine supports the handful of SQL types the DataLinks schemas need,
plus ``DATALINK`` itself: a URL-valued type whose semantics (linking,
tokens, control modes) are implemented by :mod:`repro.datalinks`; at the
storage layer a DATALINK is validated only for URL well-formedness.
"""

from __future__ import annotations

import enum

from repro.errors import TypeMismatchError
from repro.util.urls import parse_url


class DataType(enum.Enum):
    """Supported column types."""

    INTEGER = "INTEGER"
    REAL = "REAL"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"
    TIMESTAMP = "TIMESTAMP"   # stored as float seconds (simulated time)
    BLOB = "BLOB"             # stored as bytes
    DATALINK = "DATALINK"     # stored as URL text


def validate_value(dtype: DataType, value: object, column: str = "?") -> object:
    """Validate *value* against *dtype*, coercing where it is unambiguous.

    Returns the normalized value or raises :class:`TypeMismatchError`.
    ``None`` is always accepted here; NOT NULL enforcement happens in the
    schema layer which knows the column's nullability.
    """

    if value is None:
        return None

    # Exact-type tests first: ``type(value) is T`` is a zero-call check
    # and covers essentially every value the engine sees (this runs once
    # per column per inserted/updated row).  Subclasses fall through to
    # the ``isinstance`` slow path, so semantics are unchanged.
    kind = type(value)

    if dtype is DataType.INTEGER:
        if kind is int or (kind is not bool and isinstance(value, int)):
            return value
        raise TypeMismatchError(f"column {column}: expected INTEGER, got {value!r}")

    if dtype is DataType.REAL:
        if kind is float:
            return value
        if kind is int or (kind is not bool and isinstance(value, (int, float))):
            return float(value)
        raise TypeMismatchError(f"column {column}: expected REAL, got {value!r}")

    if dtype is DataType.TEXT:
        if kind is str or isinstance(value, str):
            return value
        raise TypeMismatchError(f"column {column}: expected TEXT, got {value!r}")

    if dtype is DataType.BOOLEAN:
        if kind is bool or isinstance(value, bool):
            return value
        raise TypeMismatchError(f"column {column}: expected BOOLEAN, got {value!r}")

    if dtype is DataType.TIMESTAMP:
        if kind is float:
            return value
        if kind is int or (kind is not bool and isinstance(value, (int, float))):
            return float(value)
        raise TypeMismatchError(
            f"column {column}: expected TIMESTAMP (seconds), got {value!r}")

    if dtype is DataType.BLOB:
        if kind is bytes:
            return value
        if isinstance(value, (bytes, bytearray)):
            return bytes(value)
        raise TypeMismatchError(f"column {column}: expected BLOB, got {value!r}")

    if dtype is DataType.DATALINK:
        if not isinstance(value, str):
            raise TypeMismatchError(f"column {column}: expected DATALINK URL, got {value!r}")
        try:
            parse_url(value)
        except ValueError as exc:
            raise TypeMismatchError(f"column {column}: malformed DATALINK URL: {exc}") from exc
        return value

    raise TypeMismatchError(f"column {column}: unsupported data type {dtype!r}")
