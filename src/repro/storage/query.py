"""Predicate helpers for the query interface.

The database exposes a programmatic query API (``select``/``update``/``delete``
take a *where* argument) rather than a SQL text parser.  A *where* may be:

* ``None`` -- match every row;
* a ``dict`` -- column-equality conjunction (the common case);
* a callable ``row -> bool``;
* a :class:`Condition` tree built from the combinators below, which is also
  introspectable so the planner can use an index for equality conjuncts.
"""

from __future__ import annotations

from dataclasses import dataclass


class Condition:
    """Base class for composable row predicates."""

    def matches(self, row: dict) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def __and__(self, other: "Condition") -> "Condition":
        return And(self, other)

    def __or__(self, other: "Condition") -> "Condition":
        return Or(self, other)

    def __invert__(self) -> "Condition":
        return Not(self)

    def equality_bindings(self) -> dict:
        """Column -> value bindings implied by this condition (for index use)."""

        return {}


@dataclass(frozen=True)
class Eq(Condition):
    column: str
    value: object

    def matches(self, row: dict) -> bool:
        return row.get(self.column) == self.value

    def equality_bindings(self) -> dict:
        return {self.column: self.value}


@dataclass(frozen=True)
class Ne(Condition):
    column: str
    value: object

    def matches(self, row: dict) -> bool:
        return row.get(self.column) != self.value


@dataclass(frozen=True)
class Gt(Condition):
    column: str
    value: object

    def matches(self, row: dict) -> bool:
        value = row.get(self.column)
        return value is not None and value > self.value


@dataclass(frozen=True)
class Ge(Condition):
    column: str
    value: object

    def matches(self, row: dict) -> bool:
        value = row.get(self.column)
        return value is not None and value >= self.value


@dataclass(frozen=True)
class Lt(Condition):
    column: str
    value: object

    def matches(self, row: dict) -> bool:
        value = row.get(self.column)
        return value is not None and value < self.value


@dataclass(frozen=True)
class Le(Condition):
    column: str
    value: object

    def matches(self, row: dict) -> bool:
        value = row.get(self.column)
        return value is not None and value <= self.value


@dataclass(frozen=True)
class Like(Condition):
    """Substring match (no wildcards beyond 'contains')."""

    column: str
    needle: str

    def matches(self, row: dict) -> bool:
        value = row.get(self.column)
        return isinstance(value, str) and self.needle in value


class And(Condition):
    def __init__(self, *parts: Condition):
        self.parts = parts

    def matches(self, row: dict) -> bool:
        return all(part.matches(row) for part in self.parts)

    def equality_bindings(self) -> dict:
        bindings: dict = {}
        for part in self.parts:
            bindings.update(part.equality_bindings())
        return bindings


class Or(Condition):
    def __init__(self, *parts: Condition):
        self.parts = parts

    def matches(self, row: dict) -> bool:
        return any(part.matches(row) for part in self.parts)


class Not(Condition):
    def __init__(self, part: Condition):
        self.part = part

    def matches(self, row: dict) -> bool:
        return not self.part.matches(row)


def _match_all(row: dict) -> bool:
    return True


def compile_where(where) -> tuple:
    """Normalize a *where* argument.

    Returns ``(predicate, equality_bindings)`` where *predicate* is a callable
    ``row -> bool`` and *equality_bindings* is a dict of column equality
    constraints usable for index selection (empty when unknown).
    """

    if where is None:
        return _match_all, {}
    if type(where) is dict or isinstance(where, dict):
        bindings = where
        # Specialized closures for the 1- and 2-column conjunctions that
        # dominate real traffic: a direct comparison beats a generator
        # expression per candidate row by a wide margin.  The bindings
        # alias the caller's dict (no defensive copy): both the planner
        # and these closures extract what they need before returning to
        # the caller, and the closures capture values, not the dict.
        if len(bindings) == 1:
            [(column, value)] = bindings.items()

            def predicate(row: dict, column=column, value=value) -> bool:
                return row.get(column) == value
        elif len(bindings) == 2:
            (col_a, val_a), (col_b, val_b) = bindings.items()

            def predicate(row: dict, col_a=col_a, val_a=val_a,
                          col_b=col_b, val_b=val_b) -> bool:
                return row.get(col_a) == val_a and row.get(col_b) == val_b
        else:
            items = tuple(bindings.items())

            def predicate(row: dict, items=items) -> bool:
                return all(row.get(column) == value for column, value in items)

        return predicate, bindings
    if isinstance(where, Condition):
        return where.matches, where.equality_bindings()
    if callable(where):
        return where, {}
    raise TypeError(f"unsupported where clause: {where!r}")
