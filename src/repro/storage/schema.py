"""Table schemas: column definitions, defaults and row validation."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NoSuchColumnError, NullViolationError, SchemaError
from repro.storage.values import DataType, validate_value


@dataclass(frozen=True)
class Column:
    """One column of a table.

    ``options`` is an opaque mapping used by higher layers; the DataLinks
    engine stores the per-column DATALINK control options (control mode,
    recovery, on-unlink behaviour) here.
    """

    name: str
    dtype: DataType
    nullable: bool = True
    default: object = None
    options: dict = field(default_factory=dict)


class TableSchema:
    """An ordered collection of columns plus an optional primary key."""

    def __init__(self, name: str, columns: list[Column],
                 primary_key: tuple[str, ...] | list[str] = ()):
        if not name:
            raise SchemaError("table name must be non-empty")
        if not columns:
            raise SchemaError(f"table {name}: at least one column is required")
        seen: set[str] = set()
        for column in columns:
            if column.name in seen:
                raise SchemaError(f"table {name}: duplicate column {column.name!r}")
            seen.add(column.name)
        self.name = name
        self.columns = list(columns)
        self._by_name = {column.name: column for column in columns}
        self.primary_key = tuple(primary_key)
        for key_column in self.primary_key:
            if key_column not in self._by_name:
                raise SchemaError(
                    f"table {name}: primary key column {key_column!r} is not defined")

    # -- lookup ---------------------------------------------------------------
    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise NoSuchColumnError(f"table {self.name}: no column {name!r}") from None

    def datalink_columns(self) -> list[Column]:
        """Columns declared with the DATALINK type."""

        return [column for column in self.columns if column.dtype is DataType.DATALINK]

    # -- validation -----------------------------------------------------------
    def validate_row(self, row: dict) -> dict:
        """Validate and normalize *row*.

        Unknown keys are rejected, missing columns receive their default,
        values are type-checked, and NOT NULL constraints are enforced.
        Returns a new dict laid out in column order.
        """

        for key in row:
            if key not in self._by_name:
                raise NoSuchColumnError(f"table {self.name}: no column {key!r}")
        normalized: dict = {}
        for column in self.columns:
            if column.name in row:
                value = row[column.name]
            else:
                value = column.default
            value = validate_value(column.dtype, value, column.name)
            if value is None and not column.nullable:
                raise NullViolationError(
                    f"table {self.name}: column {column.name!r} may not be null")
            normalized[column.name] = value
        return normalized

    def primary_key_of(self, row: dict) -> tuple:
        """Extract the primary-key tuple of a (validated) row."""

        return tuple(row[name] for name in self.primary_key)

    def copy(self) -> "TableSchema":
        """A structural copy of this schema (columns are immutable)."""

        return TableSchema(self.name, list(self.columns), self.primary_key)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(f"{c.name} {c.dtype.value}" for c in self.columns)
        return f"TableSchema({self.name}: {cols})"
