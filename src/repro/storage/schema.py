"""Table schemas: column definitions, defaults and row validation."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NoSuchColumnError, NullViolationError, SchemaError
from repro.storage.values import DataType, validate_value


@dataclass(frozen=True)
class Column:
    """One column of a table.

    ``options`` is an opaque mapping used by higher layers; the DataLinks
    engine stores the per-column DATALINK control options (control mode,
    recovery, on-unlink behaviour) here.
    """

    name: str
    dtype: DataType
    nullable: bool = True
    default: object = None
    options: dict = field(default_factory=dict)


#: Exact runtime type accepted without coercion per data type: when a value's
#: ``type()`` matches, ``validate_value`` would return it unchanged, so the
#: compiled validator below skips the call entirely.  DATALINK always takes
#: the slow path (URL well-formedness must be checked).  ``bool`` being an
#: ``int`` subclass is handled naturally: ``type(True) is int`` is False.
_EXACT_TYPES = {
    DataType.INTEGER: int,
    DataType.REAL: float,
    DataType.TEXT: str,
    DataType.BOOLEAN: bool,
    DataType.TIMESTAMP: float,
    DataType.BLOB: bytes,
}


class TableSchema:
    """An ordered collection of columns plus an optional primary key."""

    def __init__(self, name: str, columns: list[Column],
                 primary_key: tuple[str, ...] | list[str] = ()):
        if not name:
            raise SchemaError("table name must be non-empty")
        if not columns:
            raise SchemaError(f"table {name}: at least one column is required")
        seen: set[str] = set()
        for column in columns:
            if column.name in seen:
                raise SchemaError(f"table {name}: duplicate column {column.name!r}")
            seen.add(column.name)
        self.name = name
        self.columns = list(columns)
        self._by_name = {column.name: column for column in columns}
        self.primary_key = tuple(primary_key)
        for key_column in self.primary_key:
            if key_column not in self._by_name:
                raise SchemaError(
                    f"table {name}: primary key column {key_column!r} is not defined")
        # Pre-resolved per-column validation plan: (name, dtype, nullable,
        # default, exact_type).  Columns are immutable, so this is built once.
        self._validate_plan = tuple(
            (column.name, column.dtype, column.nullable, column.default,
             _EXACT_TYPES.get(column.dtype))
            for column in self.columns)

    # -- lookup ---------------------------------------------------------------
    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise NoSuchColumnError(f"table {self.name}: no column {name!r}") from None

    def datalink_columns(self) -> list[Column]:
        """Columns declared with the DATALINK type."""

        return [column for column in self.columns if column.dtype is DataType.DATALINK]

    # -- validation -----------------------------------------------------------
    def validate_row(self, row: dict) -> dict:
        """Validate and normalize *row*.

        Unknown keys are rejected, missing columns receive their default,
        values are type-checked, and NOT NULL constraints are enforced.
        Returns a new dict laid out in column order.
        """

        by_name = self._by_name
        for key in row:
            if key not in by_name:
                raise NoSuchColumnError(f"table {self.name}: no column {key!r}")
        normalized: dict = {}
        # The compiled plan makes the common case (value already of the
        # exact storage type) a zero-call check; only coercions, None values
        # and DATALINK URLs take the ``validate_value`` slow path, which
        # keeps semantics (and error messages) identical.
        for name, dtype, nullable, default, exact in self._validate_plan:
            value = row[name] if name in row else default
            if type(value) is exact:
                normalized[name] = value
                continue
            value = validate_value(dtype, value, name)
            if value is None and not nullable:
                raise NullViolationError(
                    f"table {self.name}: column {name!r} may not be null")
            normalized[name] = value
        return normalized

    def primary_key_of(self, row: dict) -> tuple:
        """Extract the primary-key tuple of a (validated) row."""

        return tuple(row[name] for name in self.primary_key)

    def copy(self) -> "TableSchema":
        """A structural copy of this schema (columns are immutable)."""

        return TableSchema(self.name, list(self.columns), self.primary_key)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(f"{c.name} {c.dtype.value}" for c in self.columns)
        return f"TableSchema({self.name}: {cols})"
