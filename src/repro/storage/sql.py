"""A small SQL text front-end for the storage engine.

The host database in the paper is DB2, so applications speak SQL.  The
programmatic API of :class:`~repro.storage.database.Database` (and of the
DataLinks engine) stays the primary interface of this reproduction, but this
module adds a compact SQL dialect on top of it so examples and tests can be
written the way the paper's applications would:

* ``CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY, body DATALINK MODE RFD, ...)``
* ``INSERT INTO t (id, body) VALUES (1, 'dlfs://fs1/f.dat')``
* ``SELECT id, body FROM t WHERE id = 1 AND title LIKE 'Welcome'``
* ``UPDATE t SET title = 'new' WHERE id = 1``
* ``DELETE FROM t WHERE id = 1``

Literals are integers, floats, single-quoted strings, TRUE/FALSE and NULL.
WHERE supports comparisons (=, <>, !=, <, <=, >, >=), LIKE (substring) and
AND/OR with the usual precedence.  When an executor is built with a DataLinks
engine, DML statements route through it so DATALINK columns get their
link/unlink and token processing.  A multi-row ``INSERT ... VALUES (...),
(...)`` routes through the batched ``insert_many`` pipeline -- one
parse/plan charge for the statement and, on the engine path, one batched
link message per enlisted file server instead of one round trip per row.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.datalinks.control_modes import ControlMode
from repro.datalinks.datalink_type import DatalinkOptions, datalink_column
from repro.errors import StorageError
from repro.storage.query import And, Condition, Eq, Ge, Gt, Le, Like, Lt, Ne, Or
from repro.storage.schema import Column, TableSchema
from repro.storage.values import DataType


class SQLSyntaxError(StorageError):
    """The statement text could not be parsed."""


# ---------------------------------------------------------------------------
# tokenizer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(r"""
    \s*(?:
        (?P<string>'(?:[^']|'')*')        |
        (?P<number>\d+\.\d+|\d+)          |
        (?P<word>[A-Za-z_][A-Za-z_0-9]*)  |
        (?P<op><=|>=|<>|!=|=|<|>|\(|\)|,|\*)
    )""", re.VERBOSE)


@dataclass
class _Token:
    kind: str
    text: str


def _tokenize(sql: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    text = sql.strip().rstrip(";")
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None or match.end() == position:
            raise SQLSyntaxError(f"cannot tokenize SQL near: {text[position:position + 20]!r}")
        position = match.end()
        for kind in ("string", "number", "word", "op"):
            value = match.group(kind)
            if value is not None:
                tokens.append(_Token(kind, value))
                break
    return tokens


class _TokenStream:
    def __init__(self, tokens: list[_Token]):
        self._tokens = tokens
        self._index = 0

    def peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise SQLSyntaxError("unexpected end of statement")
        self._index += 1
        return token

    def expect_word(self, *words: str) -> str:
        token = self.next()
        if token.kind != "word" or token.text.upper() not in words:
            raise SQLSyntaxError(f"expected {' or '.join(words)}, found {token.text!r}")
        return token.text.upper()

    def expect_op(self, op: str) -> None:
        token = self.next()
        if token.kind != "op" or token.text != op:
            raise SQLSyntaxError(f"expected {op!r}, found {token.text!r}")

    def accept_word(self, *words: str) -> str | None:
        token = self.peek()
        if token is not None and token.kind == "word" and token.text.upper() in words:
            self._index += 1
            return token.text.upper()
        return None

    def accept_op(self, op: str) -> bool:
        token = self.peek()
        if token is not None and token.kind == "op" and token.text == op:
            self._index += 1
            return True
        return False

    def identifier(self) -> str:
        token = self.next()
        if token.kind != "word":
            raise SQLSyntaxError(f"expected an identifier, found {token.text!r}")
        return token.text

    def at_end(self) -> bool:
        return self._index >= len(self._tokens)


# ---------------------------------------------------------------------------
# literals and expressions
# ---------------------------------------------------------------------------

def _literal(token: _Token):
    if token.kind == "string":
        return token.text[1:-1].replace("''", "'")
    if token.kind == "number":
        return float(token.text) if "." in token.text else int(token.text)
    if token.kind == "word":
        upper = token.text.upper()
        if upper == "NULL":
            return None
        if upper == "TRUE":
            return True
        if upper == "FALSE":
            return False
    raise SQLSyntaxError(f"expected a literal value, found {token.text!r}")


def _parse_comparison(stream: _TokenStream) -> Condition:
    column = stream.identifier()
    token = stream.next()
    if token.kind == "word" and token.text.upper() == "LIKE":
        needle = _literal(stream.next())
        return Like(column, str(needle).replace("%", ""))
    if token.kind != "op":
        raise SQLSyntaxError(f"expected a comparison operator, found {token.text!r}")
    value = _literal(stream.next())
    operators = {"=": Eq, "<>": Ne, "!=": Ne, "<": Lt, "<=": Le, ">": Gt, ">=": Ge}
    try:
        return operators[token.text](column, value)
    except KeyError:
        raise SQLSyntaxError(f"unsupported operator {token.text!r}") from None


def _parse_condition(stream: _TokenStream) -> Condition:
    return _parse_or(stream)


def _parse_or(stream: _TokenStream) -> Condition:
    left = _parse_and(stream)
    while stream.accept_word("OR"):
        left = Or(left, _parse_and(stream))
    return left


def _parse_and(stream: _TokenStream) -> Condition:
    left = _parse_primary(stream)
    while stream.accept_word("AND"):
        left = And(left, _parse_primary(stream))
    return left


def _parse_primary(stream: _TokenStream) -> Condition:
    if stream.accept_op("("):
        condition = _parse_or(stream)
        stream.expect_op(")")
        return condition
    return _parse_comparison(stream)


# ---------------------------------------------------------------------------
# statement parsing + execution
# ---------------------------------------------------------------------------

_TYPE_NAMES = {
    "INTEGER": DataType.INTEGER,
    "INT": DataType.INTEGER,
    "REAL": DataType.REAL,
    "FLOAT": DataType.REAL,
    "TEXT": DataType.TEXT,
    "VARCHAR": DataType.TEXT,
    "BOOLEAN": DataType.BOOLEAN,
    "TIMESTAMP": DataType.TIMESTAMP,
    "BLOB": DataType.BLOB,
    "DATALINK": DataType.DATALINK,
}


class SQLExecutor:
    """Parses and executes the supported SQL dialect.

    ``database`` handles DDL and is the fallback DML target; when ``engine``
    (a :class:`~repro.datalinks.engine.DataLinksEngine`) is supplied, INSERT,
    UPDATE and DELETE route through it so DATALINK values are linked and
    unlinked as part of the statement, exactly as in the paper's host DBMS.
    """

    def __init__(self, database, engine=None):
        self.database = database
        self.engine = engine

    # -- public entry point ------------------------------------------------------
    def execute(self, sql: str, txn=None):
        """Execute one statement; returns rows for SELECT, a count otherwise."""

        stream = _TokenStream(_tokenize(sql))
        keyword = stream.expect_word("CREATE", "INSERT", "SELECT", "UPDATE", "DELETE", "DROP")
        handler = {
            "CREATE": self._create_table,
            "DROP": self._drop_table,
            "INSERT": self._insert,
            "SELECT": self._select,
            "UPDATE": self._update,
            "DELETE": self._delete,
        }[keyword]
        result = handler(stream, txn)
        if not stream.at_end():
            raise SQLSyntaxError(f"unexpected trailing input: {stream.next().text!r}")
        return result

    # -- DDL ------------------------------------------------------------------------
    def _create_table(self, stream: _TokenStream, txn):
        stream.expect_word("TABLE")
        table = stream.identifier()
        stream.expect_op("(")
        columns: list[Column] = []
        primary_key: list[str] = []
        while True:
            name = stream.identifier()
            type_word = stream.identifier().upper()
            if type_word not in _TYPE_NAMES:
                raise SQLSyntaxError(f"unknown column type {type_word!r}")
            dtype = _TYPE_NAMES[type_word]
            if type_word == "VARCHAR" and stream.accept_op("("):
                stream.next()
                stream.expect_op(")")
            options: DatalinkOptions | None = None
            if dtype is DataType.DATALINK:
                options = self._datalink_options(stream)
            nullable = True
            while True:
                if stream.accept_word("NOT"):
                    stream.expect_word("NULL")
                    nullable = False
                    continue
                if stream.accept_word("PRIMARY"):
                    stream.expect_word("KEY")
                    primary_key.append(name)
                    nullable = False
                    continue
                break
            if dtype is DataType.DATALINK:
                columns.append(datalink_column(name, options, nullable=nullable))
            else:
                columns.append(Column(name, dtype, nullable=nullable))
            if stream.accept_op(","):
                continue
            stream.expect_op(")")
            break
        schema = TableSchema(table, columns, primary_key=tuple(primary_key))
        self.database.create_table(schema, txn)
        return 0

    def _datalink_options(self, stream: _TokenStream) -> DatalinkOptions:
        """Parse the non-standard but convenient ``MODE <code>`` suffix."""

        mode = ControlMode.RFF
        if stream.accept_word("MODE"):
            mode = ControlMode.from_string(stream.identifier())
        return DatalinkOptions(control_mode=mode)

    def _drop_table(self, stream: _TokenStream, txn):
        stream.expect_word("TABLE")
        self.database.drop_table(stream.identifier(), txn)
        return 0

    # -- DML ------------------------------------------------------------------------
    def _dml_target(self):
        return self.engine if self.engine is not None else self.database

    def _insert(self, stream: _TokenStream, txn):
        stream.expect_word("INTO")
        table = stream.identifier()
        stream.expect_op("(")
        columns = [stream.identifier()]
        while stream.accept_op(","):
            columns.append(stream.identifier())
        stream.expect_op(")")
        stream.expect_word("VALUES")
        rows = []
        while True:
            stream.expect_op("(")
            values = [_literal(stream.next())]
            while stream.accept_op(","):
                values.append(_literal(stream.next()))
            stream.expect_op(")")
            if len(values) != len(columns):
                raise SQLSyntaxError(
                    f"INSERT has {len(columns)} columns but {len(values)} values")
            rows.append(dict(zip(columns, values)))
            if not stream.accept_op(","):
                break
        # A multi-row statement is one statement: route it through the
        # batched pipeline (one parse/plan charge, and -- through the
        # DataLinks engine -- one link message per enlisted file server)
        # instead of one insert call per row tuple.
        if len(rows) == 1:
            self._dml_target().insert(table, rows[0], txn)
        else:
            self._dml_target().insert_many(table, rows, txn)
        return len(rows)

    def _where(self, stream: _TokenStream):
        if stream.accept_word("WHERE"):
            return _parse_condition(stream)
        return None

    def _select(self, stream: _TokenStream, txn):
        if stream.accept_op("*"):
            projection = None
        else:
            projection = [stream.identifier()]
            while stream.accept_op(","):
                projection.append(stream.identifier())
        stream.expect_word("FROM")
        table = stream.identifier()
        where = self._where(stream)
        rows = self._dml_target().select(table, where, txn)
        if projection is None:
            return [{k: v for k, v in row.items() if not k.startswith("_")} for row in rows]
        return [{name: row.get(name) for name in projection} for row in rows]

    def _update(self, stream: _TokenStream, txn):
        table = stream.identifier()
        stream.expect_word("SET")
        changes = {}
        while True:
            column = stream.identifier()
            stream.expect_op("=")
            changes[column] = _literal(stream.next())
            if not stream.accept_op(","):
                break
        where = self._where(stream)
        return self._dml_target().update(table, where, changes, txn)

    def _delete(self, stream: _TokenStream, txn):
        stream.expect_word("FROM")
        table = stream.identifier()
        where = self._where(stream)
        return self._dml_target().delete(table, where, txn)
