"""The database facade: transactions, DML, checkpoints, crash and backup.

One :class:`Database` instance plays the role of DB2 for the host database
and of the DLFM's private repository on each file server.  It provides:

* typed tables with primary keys and secondary indexes;
* strict two-phase locking at row granularity;
* write-ahead logging with explicit flush, ARIES-style recovery after a
  simulated crash, savepoints, and two-phase-commit participation
  (``prepare`` / ``commit_prepared`` / ``abort_prepared``);
* full backups tagged with the tail LSN -- the *database state identifier*
  the paper uses to coordinate file and database restore.

All costs are charged to the node's :class:`~repro.simclock.SimClock`
(clock domain) when one is supplied, so benchmarks can attribute latency to
SQL work; ``stats_prefix`` additionally keeps a scaled embedded store's
charges (the DLFM repository) separate from host-database charges in the
statistics.
"""

from __future__ import annotations

import contextlib

from repro.errors import (
    DuplicateKeyError,
    NoSuchTableError,
    PreparedStateError,
    TransactionNotActive,
)
from repro.simclock import SimClock
from repro.storage.backup import BackupImage, BackupManager
from repro.storage.catalog import Catalog
from repro.storage.lock_manager import LockManager, LockMode
from repro.storage.query import _match_all, compile_where
from repro.storage.recovery import RecoveryManager
from repro.storage.schema import TableSchema
from repro.storage.transaction import Transaction, TxnState
from repro.storage.wal import FlushPolicy, LogRecordType, WriteAheadLog
from repro.util.lsn import LSN

SYSTEM_TXN_ID = 0

#: Gates the statement fast paths that bypass the general scan machinery:
#: the point-SELECT short cut in :meth:`Database.select` and the cached
#: column-maximum scan behind :meth:`Database.scan_max` callers.  ``False``
#: routes every statement through the reference implementation; both modes
#: produce bit-identical rows and simulated charges (see
#: tests/test_bulk_fastpaths.py).
FAST_SCANS = True


class _TablePlan:
    """Pre-resolved per-table execution state for the DML hot paths.

    Everything a statement needs -- schema, heap row store, primary-key
    index internals, secondary-index enumeration order, unique constraints
    -- resolved once and validated per use against the owning catalog's
    ``version`` counter (and catalog identity, which changes on
    ``reset_catalog``).  ``rows`` aliases the heap's internal dict; the heap
    only rebinds it in ``load_snapshot``, which always happens on a fresh
    heap behind a catalog version bump.
    """

    __slots__ = ("catalog", "version", "schema", "heap", "rows", "pk_index",
                 "pk_entries", "pk_cols", "pk_single", "indexes",
                 "index_plans", "unique_plans")


class Database:
    """A single-node relational database with WAL, 2PL and recovery.

    ``flush_policy`` selects when COMMIT records are forced to the durable
    log: ``"immediate"`` (one log force per commit, the default) or
    ``"group"`` (a single force covers up to ``group_commit_window`` commits
    -- see :class:`~repro.storage.wal.FlushPolicy`).  Prepare votes,
    checkpoints and backups always force the log regardless of policy.
    """

    def __init__(self, name: str, clock: SimClock | None = None,
                 cost_scale: float = 1.0,
                 flush_policy: FlushPolicy | str = FlushPolicy.IMMEDIATE,
                 group_commit_window: int = 8,
                 stats_prefix: str = ""):
        self.name = name
        self.clock = clock
        self.cost_scale = cost_scale
        #: Prepended to every primitive name in clock statistics, so a scaled
        #: embedded store (the DLFM repository) never conflates its charges
        #: with the host database's charges for the same primitive.
        self.stats_prefix = stats_prefix
        self.catalog = Catalog()
        self.wal = WriteAheadLog(flush_policy=flush_policy,
                                 group_window=group_commit_window)
        self.locks = LockManager()
        self.backups = BackupManager(self)
        self._transactions: dict[int, Transaction] = {}
        self._charge_labels: dict[str, str | None] = {}
        self._lock_label = stats_prefix + "lock_acquire" if stats_prefix else None
        self._read_label = stats_prefix + "row_read" if stats_prefix else None
        self._write_label = stats_prefix + "row_write" if stats_prefix else None
        self._stmt_label = stats_prefix + "sql_statement_base" if stats_prefix else None
        self._log_label = stats_prefix + "log_write" if stats_prefix else None
        self._probe_label = stats_prefix + "index_probe" if stats_prefix else None
        # Lazily compiled per-row charge patterns (see SimClock.charge_batch):
        # DML loops defer their per-match charges and apply them as one
        # batch replay per statement instead of two clock calls per row.
        self._pair_lock_read = None
        self._pair_lock_write = None
        self._insert_pattern = None          # (lock, lock, row_write)
        self._insert_pattern_nokey = None    # (lock, row_write)
        #: Extended per-table plans (:class:`_TablePlan`), validated against
        #: the catalog's version counter on every probe.
        self._plans: dict[str, _TablePlan] = {}
        #: ``{table: {column: (max_value, heap_mutations_seen)}}`` -- the
        #: cached scan maxima behind :meth:`scan_max`.  A cached entry is
        #: valid only while its heap's mutation counter is unchanged, so
        #: writes that bypass this facade (replication redo, recovery,
        #: rollback) invalidate it implicitly.
        self._max_trackers: dict[str, dict[str, tuple]] = {}
        # Primed per-statement charge amounts (see _prime_charges).
        self._primed_charge_clock = None
        self._amt_stmt = 0.0
        self._amt_probe = 0.0
        self._amt_log = 0.0
        self._key_stmt = "sql_statement_base"
        self._key_probe = "index_probe"
        self._key_log = "log_write"
        self._key_read = "row_read"
        self._amt_read = 0.0
        self._next_txn_id = 1
        self._checkpoint: dict | None = None
        self._restored_to: LSN | None = None
        self._crashed = False

    # ------------------------------------------------------------------ utils --
    def now(self) -> float:
        clock = self.clock
        return clock._now if clock is not None else 0.0

    def _charge(self, primitive: str, *, times: int = 1, nbytes: int = 0) -> None:
        clock = self.clock
        if clock is None:
            return
        labels = self._charge_labels
        try:
            label = labels[primitive]
        except KeyError:
            label = labels[primitive] = \
                self.stats_prefix + primitive if self.stats_prefix else None
        # ``clock.charge(...)`` written out inline (identical arithmetic,
        # one frame fewer): _charge sits under every DDL/abort/force path.
        try:
            unit = clock._units[primitive]
        except KeyError:
            unit = getattr(clock.costs, primitive)
        amount = unit * nbytes if nbytes else unit * times
        amount *= self.cost_scale
        clock._now += amount
        key = label or primitive
        cells = clock.stats._cells
        try:
            cell = cells[key]
            cell[0] += 1
            cell[1] += amount
        except KeyError:
            cells[key] = [1, amount]
        mirror = clock._mirror_stats
        if mirror is not None:
            mcells = mirror._cells
            try:
                cell = mcells[key]
                cell[0] += 1
                cell[1] += amount
            except KeyError:
                mcells[key] = [1, amount]

    def _prime_charges(self, clock) -> None:
        """Cache the fixed statement-shaped charge amounts for *clock*.

        ``sql_statement_base``, ``index_probe``, ``row_read`` and
        ``log_write`` amounts are constant products of the clock's unit
        costs and this database's ``cost_scale``; the per-statement entry
        points (begin/commit/insert/select/scan_max and the point-select
        short cut) write the clock advance out inline against these
        precomputed amounts -- the same unrolling the physical file system
        applies to its fixed per-syscall charges.
        """

        units = clock._units
        scale = self.cost_scale
        self._amt_stmt = units["sql_statement_base"] * scale
        self._amt_probe = units["index_probe"] * scale
        self._amt_log = units["log_write"] * scale
        self._amt_read = units["row_read"] * scale
        self._key_stmt = self._stmt_label or "sql_statement_base"
        self._key_probe = self._probe_label or "index_probe"
        self._key_log = self._log_label or "log_write"
        self._key_read = self._read_label or "row_read"
        self._primed_charge_clock = clock

    def _build_plan(self, table: str) -> _TablePlan:
        """Build (and cache) the extended :class:`_TablePlan` for *table*."""

        catalog = self.catalog
        schema, heap, pk_index, indexes = catalog.plan_info(table)
        plan = _TablePlan()
        plan.catalog = catalog
        plan.version = catalog.version
        plan.schema = schema
        plan.heap = heap
        plan.rows = heap._rows
        plan.pk_index = pk_index
        plan.pk_entries = getattr(pk_index, "_entries", None)
        pk_cols = schema.primary_key
        plan.pk_cols = pk_cols
        plan.pk_single = pk_cols[0] if len(pk_cols) == 1 else None
        plan.indexes = indexes
        plan.index_plans = tuple(
            (index, index.columns,
             index.columns[0] if len(index.columns) == 1 else None,
             getattr(index, "_entries", None))
            for index in indexes)
        plan.unique_plans = tuple(
            entry for entry in plan.index_plans if entry[0].unique)
        self._plans[table] = plan
        return plan

    def _plan(self, table: str) -> _TablePlan:
        """The cached :class:`_TablePlan` for *table* (rebuilt after DDL)."""

        catalog = self.catalog
        try:
            plan = self._plans[table]
        except KeyError:
            return self._build_plan(table)
        if plan.catalog is not catalog or plan.version != catalog.version:
            return self._build_plan(table)
        return plan

    def total_rows(self) -> int:
        return sum(len(self.catalog.heap(name)) for name in self.catalog.table_names())

    def state_identifier(self) -> LSN:
        """The current database state identifier (tail LSN)."""

        return self.wal.tail_lsn()

    def set_flush_policy(self, policy: FlushPolicy | str,
                         group_commit_window: int | None = None) -> None:
        """Change the WAL commit flush policy at runtime."""

        self.wal.set_flush_policy(policy, group_commit_window)

    def force_log(self) -> LSN:
        """Force the WAL if commits are pending, charging one log write.

        Two-phase-commit coordinators call this before telling participants
        to commit: the coordinator's COMMIT record must be durable first,
        and under group commit the force piggybacks every pending commit.
        """

        if self.wal.pending_commits:
            self.wal.flush()
            self._charge("log_write")
        return self.wal.flushed_lsn

    def note_restored_to(self, state_id: LSN) -> None:
        self._restored_to = state_id

    @property
    def restored_to(self) -> LSN | None:
        return self._restored_to

    # ----------------------------------------------------------- transactions --
    def begin(self) -> Transaction:
        """Start a new transaction."""

        if self._crashed:
            raise TransactionNotActive(f"database {self.name} crashed; run recover() first")
        transaction = Transaction(txn_id=self._next_txn_id)
        self._next_txn_id += 1
        self._transactions[transaction.txn_id] = transaction
        self.wal.append(transaction.txn_id, LogRecordType.BEGIN)
        clock = self.clock
        if clock is not None:
            if self._primed_charge_clock is not clock:
                self._prime_charges(clock)
            amount = self._amt_stmt
            clock._now += amount
            key = self._key_stmt
            cells = clock.stats._cells
            try:
                cell = cells[key]
                cell[0] += 1
                cell[1] += amount
            except KeyError:
                cells[key] = [1, amount]
            mirror = clock._mirror_stats
            if mirror is not None:
                mcells = mirror._cells
                try:
                    cell = mcells[key]
                    cell[0] += 1
                    cell[1] += amount
                except KeyError:
                    mcells[key] = [1, amount]
        return transaction

    def transaction(self, txn_id: int) -> Transaction:
        try:
            return self._transactions[txn_id]
        except KeyError:
            raise TransactionNotActive(f"unknown transaction {txn_id}") from None

    def active_transactions(self) -> list[Transaction]:
        return [t for t in self._transactions.values() if t.state is TxnState.ACTIVE]

    def register_recovered_transaction(self, transaction: Transaction) -> None:
        """Used by recovery to reinstate an in-doubt (prepared) transaction."""

        self._transactions[transaction.txn_id] = transaction
        self._next_txn_id = max(self._next_txn_id, transaction.txn_id + 1)

    def commit(self, txn: Transaction) -> LSN:
        """Commit *txn*: force the log (per flush policy), run callbacks, release locks.

        Under the ``group`` flush policy the COMMIT record may stay in the
        unflushed log tail until the group window fills (or an explicit
        flush); a crash in that window loses the commit and recovery undoes
        the transaction.
        """

        state = txn.state
        if state is not TxnState.ACTIVE and state is not TxnState.PREPARED:
            txn.require_active_or_prepared()
        self.wal.append(txn.txn_id, LogRecordType.COMMIT)
        if self.wal.note_commit():
            clock = self.clock
            if clock is not None:
                if self._primed_charge_clock is not clock:
                    self._prime_charges(clock)
                amount = self._amt_log
                clock._now += amount
                key = self._key_log
                cells = clock.stats._cells
                try:
                    cell = cells[key]
                    cell[0] += 1
                    cell[1] += amount
                except KeyError:
                    cells[key] = [1, amount]
                mirror = clock._mirror_stats
                if mirror is not None:
                    mcells = mirror._cells
                    try:
                        cell = mcells[key]
                        cell[0] += 1
                        cell[1] += amount
                    except KeyError:
                        mcells[key] = [1, amount]
        txn.state = TxnState.COMMITTED
        # ``_finish`` inlined: commit is the per-transaction hot path.
        self.locks.release_all(txn.txn_id)
        callbacks = txn.on_commit
        if callbacks:
            for callback in callbacks:
                callback()
            callbacks.clear()
        return self.wal.tail_lsn()

    def commit_many(self, txns: list[Transaction]) -> LSN:
        """Group-commit a batch: one log force covers every transaction.

        This is the explicit form of group commit used by the sharded
        deployment's commit queue; it forces the log exactly once no matter
        how many transactions are in the batch (and regardless of policy).
        """

        for txn in txns:
            txn.require_active_or_prepared()
        for txn in txns:
            self.wal.append(txn.txn_id, LogRecordType.COMMIT)
        if txns:
            self.wal.flush()
            self._charge("log_write")
        for txn in txns:
            txn.state = TxnState.COMMITTED
            self._finish(txn, txn.on_commit)
        return self.wal.tail_lsn()

    def abort(self, txn: Transaction) -> None:
        """Roll back *txn*: undo its effects, force the log, release locks."""

        if txn.state in (TxnState.COMMITTED, TxnState.ABORTED):
            raise TransactionNotActive(f"transaction {txn.txn_id} already finished")
        for record in reversed(txn.records):
            self.apply_undo(record)
        self.wal.append(txn.txn_id, LogRecordType.ABORT)
        self.wal.flush()
        self._charge("log_write")
        txn.state = TxnState.ABORTED
        self._finish(txn, txn.on_abort)

    def _finish(self, txn: Transaction, callbacks: list) -> None:
        self.locks.release_all(txn.txn_id)
        for callback in callbacks:
            callback()
        callbacks.clear()

    # two-phase commit -----------------------------------------------------------
    def prepare(self, txn: Transaction, extra: dict | None = None) -> None:
        """First phase of 2PC: make the transaction's effects durable, keep locks.

        ``extra`` is stored in the durable PREPARE record; resource managers
        use it to persist the coordinator's transaction id so an in-doubt
        branch can be mapped back to its host transaction after a crash.
        """

        txn.require_active()
        self.wal.append(txn.txn_id, LogRecordType.PREPARE,
                        extra=dict(extra) if extra else {})
        self.wal.flush()
        self._charge("log_write")
        txn.state = TxnState.PREPARED

    def commit_prepared(self, txn: Transaction) -> LSN:
        if txn.state is not TxnState.PREPARED:
            raise PreparedStateError(f"transaction {txn.txn_id} is not prepared")
        return self.commit(txn)

    def abort_prepared(self, txn: Transaction) -> None:
        if txn.state is not TxnState.PREPARED:
            raise PreparedStateError(f"transaction {txn.txn_id} is not prepared")
        # A prepared transaction recovered after a crash carries durable log
        # records; an in-memory one carries the same records list.  Both undo
        # identically.
        txn.state = TxnState.ACTIVE
        self.abort(txn)

    def in_doubt_transactions(self) -> list[Transaction]:
        return [t for t in self._transactions.values() if t.state is TxnState.PREPARED]

    def txn_outcome(self, txn_id: int) -> str:
        """The durable outcome of *txn_id*: ``"committed"``, ``"aborted"`` or
        ``"unknown"`` (no durable COMMIT/ABORT record -- presumed abort).

        Used by two-phase-commit participants to resolve in-doubt branches
        from the coordinator's log after a crash.
        """

        return self.wal.outcome_of(txn_id)

    # savepoints -------------------------------------------------------------------
    def savepoint(self, txn: Transaction, name: str) -> None:
        txn.require_active()
        self.wal.append(txn.txn_id, LogRecordType.SAVEPOINT, extra={"name": name})
        txn.add_savepoint(name)

    def rollback_to_savepoint(self, txn: Transaction, name: str) -> None:
        """Undo every change made after the named savepoint."""

        txn.require_active()
        savepoint = txn.find_savepoint(name)
        if savepoint is None:
            raise TransactionNotActive(
                f"transaction {txn.txn_id}: no savepoint named {name!r}")
        while len(txn.records) > savepoint.record_count:
            record = txn.records.pop()
            self.apply_undo(record)
        txn.drop_savepoints_after(savepoint)

    # ------------------------------------------------------------------- DDL --
    def create_table(self, schema: TableSchema, txn: Transaction | None = None):
        """Create a table (auto-committed when no transaction is supplied)."""

        with self._autotxn(txn) as active:
            self._charge("sql_statement_base")
            heap = self.catalog.create_table(schema)
            self.wal.append(active.txn_id, LogRecordType.CREATE_TABLE,
                            table=schema.name, extra={"schema": schema.copy()})
            return heap

    def drop_table(self, name: str, txn: Transaction | None = None) -> None:
        with self._autotxn(txn) as active:
            self._charge("sql_statement_base")
            schema = self.catalog.schema(name)
            self.catalog.drop_table(name)
            self.wal.append(active.txn_id, LogRecordType.DROP_TABLE,
                            table=name, extra={"schema": schema.copy()})

    def create_index(self, index_name: str, table: str, columns, *,
                     unique: bool = False, ordered: bool = False):
        self._charge("sql_statement_base")
        return self.catalog.create_index(index_name, table, columns,
                                         unique=unique, ordered=ordered)

    # ------------------------------------------------------------------- DML --
    def insert(self, table: str, row: dict, txn: Transaction | None = None) -> int:
        """Insert *row* into *table*; returns the new row id."""

        if txn is not None and txn.state is TxnState.ACTIVE:
            clock = self.clock
            if clock is not None:
                if self._primed_charge_clock is not clock:
                    self._prime_charges(clock)
                amount = self._amt_stmt
                clock._now += amount
                key = self._key_stmt
                cells = clock.stats._cells
                try:
                    cell = cells[key]
                    cell[0] += 1
                    cell[1] += amount
                except KeyError:
                    cells[key] = [1, amount]
                mirror = clock._mirror_stats
                if mirror is not None:
                    mcells = mirror._cells
                    try:
                        cell = mcells[key]
                        cell[0] += 1
                        cell[1] += amount
                    except KeyError:
                        mcells[key] = [1, amount]
            try:
                plan = self._plans[table]
            except KeyError:
                plan = self._build_plan(table)
            else:
                catalog = self.catalog
                if plan.catalog is not catalog or \
                        plan.version != catalog.version:
                    plan = self._build_plan(table)
            return self._insert_row(table, row, txn, plan)
        with self._autotxn(txn) as active:
            active.require_active()
            self._charge("sql_statement_base")
            return self._insert_row(table, row, active, self._plan(table))

    def insert_many(self, table: str, rows: list[dict],
                    txn: Transaction | None = None) -> list[int]:
        """Multi-row INSERT: one statement, many rows; returns the new row ids.

        Parsing/planning (``sql_statement_base``) is charged once for the
        whole statement instead of once per row, which is what makes batched
        ingest measurably cheaper than row-at-a-time inserts.
        """

        with self._autotxn(txn) as active:
            active.require_active()
            self._charge("sql_statement_base")
            plan = self._plan(table)
            return [self._insert_row(table, row, active, plan) for row in rows]

    def _insert_row(self, table: str, row: dict, active: Transaction,
                    plan: _TablePlan) -> int:
        normalized = plan.schema.validate_row(self._strip_internal(row))
        self._check_unique(table, normalized, None, plan)
        # The per-row charges -- lock_acquire for the key lock (when the
        # table has a primary key), lock_acquire for the row lock, and
        # row_write -- are contiguous in clock time (nothing between them
        # touches the clock), so they are deferred and replayed as one
        # compiled batch when the insert completes.  On a partial failure
        # (a lock conflict, a duplicate secondary key) only the lock
        # charges actually incurred are replayed, exactly matching the
        # per-row reference.
        clock = self.clock
        txn_id = active.txn_id
        acquire = self.locks.acquire
        locks_taken = 0
        try:
            pk_single = plan.pk_single
            if pk_single is not None:
                acquire(txn_id, ("key", table, (normalized[pk_single],)),
                        LockMode.EXCLUSIVE)
                locks_taken = 1
            elif plan.pk_cols:
                key = tuple(normalized[name] for name in plan.pk_cols)
                acquire(txn_id, ("key", table, key), LockMode.EXCLUSIVE)
                locks_taken = 1
            rid = plan.heap.insert(normalized)
            trackers = self._max_trackers.get(table)
            if trackers:
                # Keep warm scan maxima warm: if nothing else touched the
                # heap since the tracker was taken, this insert's value is
                # the only candidate for a new maximum.  Otherwise leave the
                # tracker stale -- scan_max rescans on the counter mismatch.
                heap_mutations = plan.heap.mutations
                for column, cached in trackers.items():
                    if cached[1] == heap_mutations - 1:
                        best = cached[0]
                        value = normalized[column]
                        if best is None or \
                                (value is not None and value > best):
                            best = value
                        trackers[column] = (best, heap_mutations)
            acquire(txn_id, ("row", table, rid), LockMode.EXCLUSIVE)
            locks_taken += 1
            for index in plan.indexes:
                index.insert(normalized, rid)
            record = self.wal.append(txn_id, LogRecordType.INSERT, table=table,
                                     rid=rid, after=dict(normalized))
            active.records.append(record)
        except BaseException:
            if clock is not None and locks_taken:
                clock.charge_run("lock_acquire", locks_taken,
                                 scale=self.cost_scale, label=self._lock_label)
            raise
        if clock is not None:
            if locks_taken == 2:
                pattern = self._insert_pattern
                if pattern is None:
                    pattern = self._insert_pattern = clock.compile_charges(
                        (("lock_acquire", self.cost_scale, self._lock_label),
                         ("lock_acquire", self.cost_scale, self._lock_label),
                         ("row_write", self.cost_scale, self._write_label)))
            else:
                pattern = self._insert_pattern_nokey
                if pattern is None:
                    pattern = self._insert_pattern_nokey = clock.compile_charges(
                        (("lock_acquire", self.cost_scale, self._lock_label),
                         ("row_write", self.cost_scale, self._write_label)))
            clock.charge_batch(pattern, 1)
        return rid

    def select(self, table: str, where=None, txn: Transaction | None = None, *,
               for_update: bool = False, lock: bool = True) -> list[dict]:
        """Return matching rows (each carries its row id under ``"_rid"``).

        When called inside a transaction with ``lock=True`` the matched rows
        are locked shared (or exclusive with ``for_update=True``) following
        strict two-phase locking.
        """

        clock = self.clock
        if clock is not None:
            if self._primed_charge_clock is not clock:
                self._prime_charges(clock)
            amount = self._amt_stmt
            clock._now += amount
            key = self._key_stmt
            cells = clock.stats._cells
            try:
                cell = cells[key]
                cell[0] += 1
                cell[1] += amount
            except KeyError:
                cells[key] = [1, amount]
            mirror = clock._mirror_stats
            if mirror is not None:
                mcells = mirror._cells
                try:
                    cell = mcells[key]
                    cell[0] += 1
                    cell[1] += amount
                except KeyError:
                    mcells[key] = [1, amount]
        # ``self._plan(table)`` written out inline: the cache probe is two
        # attribute loads on the hot hit path, and select is the single
        # most-issued statement on the million-link tier.
        try:
            plan = self._plans[table]
        except KeyError:
            plan = self._build_plan(table)
        else:
            catalog = self.catalog
            if plan.catalog is not catalog or plan.version != catalog.version:
                plan = self._build_plan(table)
        if FAST_SCANS and type(where) is dict and where and \
                (txn is None or not lock):
            matched = self._point_select(plan, where, clock)
            if matched is not None:
                return matched
        predicate, bindings = compile_where(where)
        candidates = self._candidate_rows(plan, bindings, clock)
        # Per-match charges are deferred and applied as one batch replay
        # after the loop: nothing between two matches touches the clock, so
        # the aggregate is float-identical to charging inside the loop (see
        # SimClock.charge_batch).  When an acquire raises mid-statement the
        # ``finally`` still replays the completed matches -- exactly the
        # charges the per-row reference would have made before the raise.
        # Candidates are the *stored* row dicts: the predicate filters them
        # without a per-candidate copy, and only matches are materialized.
        if txn is not None and lock:
            mode = LockMode.EXCLUSIVE if for_update else LockMode.SHARED
            txn_id = txn.txn_id
            acquire = self.locks.acquire
            rows = []
            if clock is not None:
                matched_count = 0
                try:
                    if predicate is _match_all:
                        for rid, row in candidates:
                            acquire(txn_id, ("row", table, rid), mode)
                            matched_count += 1
                            rows.append(dict(row, _rid=rid))
                    else:
                        for rid, row in candidates:
                            if not predicate(row):
                                continue
                            acquire(txn_id, ("row", table, rid), mode)
                            matched_count += 1
                            rows.append(dict(row, _rid=rid))
                finally:
                    if matched_count:
                        pattern = self._pair_lock_read
                        if pattern is None:
                            pattern = self._pair_lock_read = clock.compile_charges(
                                (("lock_acquire", self.cost_scale, self._lock_label),
                                 ("row_read", self.cost_scale, self._read_label)))
                        clock.charge_batch(pattern, matched_count)
                return rows
            for rid, row in candidates:
                if not predicate(row):
                    continue
                acquire(txn_id, ("row", table, rid), mode)
                rows.append(dict(row, _rid=rid))
            return rows
        if predicate is _match_all:
            rows = [dict(row, _rid=rid) for rid, row in candidates]
        else:
            rows = [dict(row, _rid=rid) for rid, row in candidates
                    if predicate(row)]
        if clock is not None and rows:
            clock.charge_run("row_read", len(rows), scale=self.cost_scale,
                             label=self._read_label)
        return rows

    def select_one(self, table: str, where=None, txn: Transaction | None = None,
                   **kwargs) -> dict | None:
        rows = self.select(table, where, txn, **kwargs)
        return rows[0] if rows else None

    def _point_select(self, plan: _TablePlan, where: dict, clock):
        """Unlocked point-SELECT short cut (:data:`FAST_SCANS`).

        Handles the dominant statement shape -- an equality ``where`` dict
        whose keys are exactly one index's columns -- without compiling a
        predicate or materializing a candidate list, replaying the general
        path's charges verbatim: an ``index_probe`` for a complete
        primary-key probe, nothing for secondary-index enumeration, and a
        ``row_read`` per match.  Returns ``None``, before any charge beyond
        the caller's ``sql_statement_base``, when the shape is not covered
        (the caller falls back to the general path).
        """

        rows = plan.rows
        bucket = None
        pk_single = plan.pk_single
        if pk_single is not None:
            if len(where) != 1:
                return None
            if pk_single in where and plan.pk_index is not None:
                if clock is not None:
                    amount = self._amt_probe
                    clock._now += amount
                    key = self._key_probe
                    cells = clock.stats._cells
                    try:
                        cell = cells[key]
                        cell[0] += 1
                        cell[1] += amount
                    except KeyError:
                        cells[key] = [1, amount]
                    mirror = clock._mirror_stats
                    if mirror is not None:
                        mcells = mirror._cells
                        try:
                            cell = mcells[key]
                            cell[0] += 1
                            cell[1] += amount
                        except KeyError:
                            mcells[key] = [1, amount]
                entries = plan.pk_entries
                if entries is None:
                    bucket = plan.pk_index.bucket((where[pk_single],))
                else:
                    try:
                        bucket = entries[(where[pk_single],)]
                    except KeyError:
                        return []
        elif plan.pk_cols and len(where) == len(plan.pk_cols):
            complete = True
            for column in plan.pk_cols:
                if column not in where:
                    complete = False
                    break
            if complete and plan.pk_index is not None:
                if clock is not None:
                    amount = self._amt_probe
                    clock._now += amount
                    label = self._key_probe
                    cells = clock.stats._cells
                    try:
                        cell = cells[label]
                        cell[0] += 1
                        cell[1] += amount
                    except KeyError:
                        cells[label] = [1, amount]
                    mirror = clock._mirror_stats
                    if mirror is not None:
                        mcells = mirror._cells
                        try:
                            cell = mcells[label]
                            cell[0] += 1
                            cell[1] += amount
                        except KeyError:
                            mcells[label] = [1, amount]
                key = tuple(where[column] for column in plan.pk_cols)
                entries = plan.pk_entries
                if entries is None:
                    bucket = plan.pk_index.bucket(key)
                else:
                    try:
                        bucket = entries[key]
                    except KeyError:
                        return []
        if bucket is None:
            if len(where) != 1:
                return None
            # Single-column secondary probe: the first index on exactly the
            # bound column, enumeration deliberately uncharged (matching
            # ``_candidate_rows``).
            for index, columns, single, entries in plan.index_plans:
                if single is None or single not in where:
                    continue
                if entries is None:
                    return None
                try:
                    bucket = entries[(where[single],)]
                except KeyError:
                    return []
                break
            if bucket is None:
                return None
        if len(bucket) == 1:
            for rid in bucket:
                break
            row = rows.get(rid)
            if row is None:
                return []
            matched = [dict(row, _rid=rid)]
        else:
            matched = [dict(rows[rid], _rid=rid)
                       for rid in sorted(bucket) if rid in rows]
            if not matched:
                return []
        if clock is not None:
            if len(matched) == 1:
                # The single-match case dominates; ``charge_run(..., 1)``
                # written out inline (identical arithmetic either way).
                amount = self._amt_read
                clock._now += amount
                key = self._key_read
                cells = clock.stats._cells
                try:
                    cell = cells[key]
                    cell[0] += 1
                    cell[1] += amount
                except KeyError:
                    cells[key] = [1, amount]
                mirror = clock._mirror_stats
                if mirror is not None:
                    mcells = mirror._cells
                    try:
                        cell = mcells[key]
                        cell[0] += 1
                        cell[1] += amount
                    except KeyError:
                        mcells[key] = [1, amount]
            else:
                clock.charge_run("row_read", len(matched),
                                 scale=self.cost_scale,
                                 label=self._read_label)
        return matched

    def scan_max(self, table: str, column: str):
        """Maximum of *column* over *table*'s live rows (``None`` if empty).

        Charged exactly like the unlocked full-table ``select`` a caller
        would otherwise issue -- one ``sql_statement_base`` plus a
        ``row_read`` per live row -- but the value comes from a cached
        per-column maximum validated against the heap's mutation counter,
        so repeated scans of a monotonically growing table (the DLFM's id
        allocation) stop re-walking every row.  A mutation that bypassed
        this facade (replication redo, recovery, rollback, snapshot
        restore) bumps the counter and forces a rescan, so the cached
        maximum can never go stale.
        """

        clock = self.clock
        if clock is not None:
            if self._primed_charge_clock is not clock:
                self._prime_charges(clock)
            amount = self._amt_stmt
            clock._now += amount
            key = self._key_stmt
            cells = clock.stats._cells
            try:
                cell = cells[key]
                cell[0] += 1
                cell[1] += amount
            except KeyError:
                cells[key] = [1, amount]
            mirror = clock._mirror_stats
            if mirror is not None:
                mcells = mirror._cells
                try:
                    cell = mcells[key]
                    cell[0] += 1
                    cell[1] += amount
                except KeyError:
                    mcells[key] = [1, amount]
        try:
            plan = self._plans[table]
        except KeyError:
            plan = self._build_plan(table)
        else:
            catalog = self.catalog
            if plan.catalog is not catalog or plan.version != catalog.version:
                plan = self._build_plan(table)
        rows = plan.rows
        if clock is not None and rows:
            clock.charge_run("row_read", len(rows), scale=self.cost_scale,
                             label=self._read_label)
        mutations = plan.heap.mutations
        trackers = self._max_trackers.get(table)
        if trackers is None:
            trackers = self._max_trackers[table] = {}
        else:
            cached = trackers.get(column)
            if cached is not None and cached[1] == mutations:
                return cached[0]
        best = None
        for row in rows.values():
            value = row[column]
            if value is not None and (best is None or value > best):
                best = value
        trackers[column] = (best, mutations)
        return best

    def update(self, table: str, where, changes: dict,
               txn: Transaction | None = None) -> int:
        """Update matching rows with *changes*; returns the number touched."""

        with self._autotxn(txn) as active:
            active.require_active()
            clock = self.clock
            if clock is not None:
                clock.charge("sql_statement_base", scale=self.cost_scale,
                             label=self._stmt_label)
            plan = self._plan(table)
            schema = plan.schema
            heap = plan.heap
            indexes = plan.indexes
            predicate, bindings = compile_where(where)
            changes = self._strip_internal(changes)
            touched = 0
            # Charges are deferred exactly as in ``select``: each finished
            # row owes a (lock_acquire, row_write) pair, and a row that got
            # its lock but failed validation owes the lone lock_acquire the
            # per-row reference would have charged before raising.
            acquired = False
            acquire = self.locks.acquire
            txn_id = active.txn_id
            try:
                for rid, row in self._candidate_rows(plan, bindings, clock):
                    if not predicate(row):
                        continue
                    acquire(txn_id, ("row", table, rid), LockMode.EXCLUSIVE)
                    acquired = True
                    new_row = dict(row)
                    new_row.update(changes)
                    normalized = schema.validate_row(new_row)
                    self._check_unique(table, normalized, rid, plan)
                    for index in indexes:
                        index.remove(row, rid)
                    heap.update(rid, normalized)
                    for index in indexes:
                        index.insert(normalized, rid)
                    record = self.wal.append(txn_id, LogRecordType.UPDATE,
                                             table=table, rid=rid, before=dict(row),
                                             after=dict(normalized))
                    active.records.append(record)
                    acquired = False
                    touched += 1
            finally:
                self._settle_write_charges(touched, acquired)
            return touched

    def delete(self, table: str, where, txn: Transaction | None = None) -> int:
        """Delete matching rows; returns the number removed."""

        with self._autotxn(txn) as active:
            active.require_active()
            clock = self.clock
            if clock is not None:
                clock.charge("sql_statement_base", scale=self.cost_scale,
                             label=self._stmt_label)
            plan = self._plan(table)
            heap = plan.heap
            indexes = plan.indexes
            predicate, bindings = compile_where(where)
            removed = 0
            acquired = False
            acquire = self.locks.acquire
            txn_id = active.txn_id
            try:
                for rid, row in self._candidate_rows(plan, bindings, clock):
                    if not predicate(row):
                        continue
                    acquire(txn_id, ("row", table, rid), LockMode.EXCLUSIVE)
                    acquired = True
                    for index in indexes:
                        index.remove(row, rid)
                    heap.delete(rid)
                    record = self.wal.append(txn_id, LogRecordType.DELETE,
                                             table=table, rid=rid, before=dict(row))
                    active.records.append(record)
                    acquired = False
                    removed += 1
            finally:
                self._settle_write_charges(removed, acquired)
            return removed

    def count(self, table: str, where=None) -> int:
        return len(self.select(table, where, txn=None, lock=False))

    # ------------------------------------------------------------ DML helpers --
    def _settle_write_charges(self, finished: int, acquired_pending: bool) -> None:
        """Apply the deferred charges of an update/delete loop.

        *finished* rows each owe a (lock_acquire, row_write) pair;
        *acquired_pending* marks a row whose lock was taken but whose write
        never completed (validation or uniqueness raised), which owes the
        lone lock_acquire the per-row reference charged before raising.
        """

        clock = self.clock
        if clock is None:
            return
        if finished:
            pattern = self._pair_lock_write
            if pattern is None:
                pattern = self._pair_lock_write = clock.compile_charges(
                    (("lock_acquire", self.cost_scale, self._lock_label),
                     ("row_write", self.cost_scale, self._write_label)))
            clock.charge_batch(pattern, finished)
        if acquired_pending:
            self._charge("lock_acquire")

    @staticmethod
    def _strip_internal(row: dict) -> dict:
        # Fast path: rows without internal ("_"-prefixed) keys -- the vast
        # majority -- are returned as-is (callers only read the result).
        # ``key[:1]`` is a zero-call prefix test, unlike ``startswith``.
        for key in row:
            if key[:1] == "_":
                return {k: v for k, v in row.items() if k[:1] != "_"}
        return row

    def _candidate_rows(self, plan: _TablePlan, bindings: dict, clock):
        """(rid, row) candidates, using the primary-key index when possible.

        Returns a fully materialized list rather than a generator: the
        callers drive tight loops and the generator resumption cost was
        measurable.  The rows are the heap's *stored* dicts (no copy): DML
        callers materialize copies only for rows that actually match, and
        the heap replaces (never mutates) stored dicts on update, so a
        reference taken here stays pre-update even while the statement
        mutates the table.
        """

        if bindings:
            rows = plan.rows
            # Single-column keys dominate; the plan pre-resolves the single
            # key column so the common probe is two dict tests.
            key = None
            pk_single = plan.pk_single
            if pk_single is not None:
                if pk_single in bindings:
                    key = (bindings[pk_single],)
            elif plan.pk_cols:
                complete = True
                for column in plan.pk_cols:
                    if column not in bindings:
                        complete = False
                        break
                if complete:
                    key = tuple(bindings[c] for c in plan.pk_cols)
            if key is not None and plan.pk_index is not None:
                if clock is not None:
                    clock.charge("index_probe", scale=self.cost_scale,
                                 label=self._probe_label)
                entries = plan.pk_entries
                if entries is not None:
                    try:
                        bucket = entries[key]
                    except KeyError:
                        return ()
                else:
                    bucket = plan.pk_index.bucket(key)
                if len(bucket) == 1:
                    for rid in bucket:
                        break
                    return [(rid, rows[rid])] if rid in rows else []
                return [(rid, rows[rid])
                        for rid in sorted(bucket) if rid in rows]
            # Enumerate through any secondary index whose columns are all
            # bound by equality.  This is deliberately NOT charged: the
            # historical cost model full-scanned here without a probe, and
            # candidate enumeration is free (only *matches* are charged
            # ``row_read``).  Sorting the bucket reproduces the heap's
            # stable scan order, so matches, locks and charges come out in
            # exactly the same sequence as the scan they replace.
            for index, columns, single, entries in plan.index_plans:
                if single is not None:
                    if single not in bindings:
                        continue
                    key = (bindings[single],)
                else:
                    complete = True
                    for column in columns:
                        if column not in bindings:
                            complete = False
                            break
                    if not complete:
                        continue
                    key = tuple(bindings[column] for column in columns)
                if entries is not None:
                    try:
                        bucket = entries[key]
                    except KeyError:
                        return ()
                else:
                    bucket = index.bucket(key)
                if len(bucket) == 1:
                    for rid in bucket:
                        break
                    return [(rid, rows[rid])] if rid in rows else []
                return [(rid, rows[rid])
                        for rid in sorted(bucket) if rid in rows]
        # Full scan (``HeapTable.scan_live`` inlined, including its cached
        # sorted-rid order maintenance).
        heap = plan.heap
        rows = heap._rows
        order = heap._sorted_rids
        if order is None:
            order = heap._sorted_rids = sorted(rows)
        return [(rid, rows[rid]) for rid in order]

    def _check_unique(self, table: str, row: dict, exclude_rid: int | None,
                      plan: _TablePlan | None = None) -> None:
        if plan is None:
            plan = self._plan(table)
        for index, columns, single, entries in plan.unique_plans:
            key = (row[single],) if single is not None else \
                tuple(row[column] for column in columns)
            if entries is not None:
                try:
                    bucket = entries[key]
                except KeyError:
                    continue
            else:
                bucket = index.bucket(key)
            for rid in bucket:
                if rid != exclude_rid:
                    raise DuplicateKeyError(
                        f"table {table}: duplicate key {key!r} for index {index.name}")

    def _autotxn(self, txn: Transaction | None) -> "_AutoTxn":
        return _AutoTxn(self, txn)

    # ---------------------------------------------------------------- undo ----
    def apply_undo(self, record, during_recovery: bool = False) -> None:
        """Apply the inverse of a data log record and write a CLR."""

        if record.table is None or not self.catalog.has_table(record.table):
            return
        heap = self.catalog.heap(record.table)
        if record.type is LogRecordType.INSERT:
            if heap.exists(record.rid):
                row = heap.get(record.rid)
                self.catalog.index_remove(record.table, row, record.rid)
                heap.delete(record.rid)
            redo_as, before, after = LogRecordType.DELETE, record.after, None
        elif record.type is LogRecordType.DELETE:
            if not heap.exists(record.rid):
                heap.insert(record.before, rid=record.rid)
                self.catalog.index_insert(record.table, record.before, record.rid)
            redo_as, before, after = LogRecordType.INSERT, None, record.before
        elif record.type is LogRecordType.UPDATE:
            if heap.exists(record.rid):
                current = heap.get(record.rid)
                self.catalog.index_remove(record.table, current, record.rid)
                heap.update(record.rid, record.before)
            else:
                heap.insert(record.before, rid=record.rid)
            self.catalog.index_insert(record.table, record.before, record.rid)
            redo_as, before, after = LogRecordType.UPDATE, record.after, record.before
        else:
            return
        self.wal.append(record.txn_id, LogRecordType.CLR, table=record.table,
                        rid=record.rid, before=before, after=after,
                        extra={"undone_lsn": record.lsn.value, "redo_as": redo_as.value})
        self._charge("row_write")

    # ------------------------------------------------------- checkpoint/crash --
    def checkpoint(self) -> LSN:
        """Force the log and snapshot volatile state (a fuzzy checkpoint)."""

        self.wal.flush()
        self._charge("log_write")
        record = self.wal.append(SYSTEM_TXN_ID, LogRecordType.CHECKPOINT)
        self.wal.flush()
        self._checkpoint = {
            "lsn": record.lsn,
            "snapshot": self.catalog.snapshot(),
            "next_txn_id": self._next_txn_id,
        }
        return record.lsn

    def last_checkpoint(self) -> dict | None:
        return self._checkpoint

    def reset_catalog(self) -> None:
        self.catalog = Catalog()
        # The rebuilt catalog gets fresh heaps whose mutation counters
        # restart, so a surviving scan-max tracker could validate against a
        # coincidentally equal count while holding a pre-crash maximum.
        self._max_trackers.clear()

    def crash(self) -> None:
        """Simulate a crash: volatile state and unflushed log records are lost."""

        self.wal.lose_unflushed()
        self.reset_catalog()
        self._transactions.clear()
        self.locks.clear()
        self._crashed = True

    def recover(self) -> dict:
        """Run crash recovery; returns the recovery summary."""

        # Recovery rebuilds the catalog (checkpoint snapshot or reset), so
        # every heap gets a fresh mutation counter; see reset_catalog.
        self._max_trackers.clear()
        summary = RecoveryManager(self).recover()
        checkpoint = self._checkpoint
        if checkpoint is not None:
            self._next_txn_id = max(self._next_txn_id, checkpoint["next_txn_id"])
        for record in self.wal.records(durable_only=True):
            self._next_txn_id = max(self._next_txn_id, record.txn_id + 1)
        self._crashed = False
        return summary

    @property
    def crashed(self) -> bool:
        return self._crashed

    # -------------------------------------------------------------------- SQL --
    def execute(self, sql: str, txn: Transaction | None = None):
        """Execute one SQL statement (see :mod:`repro.storage.sql` for the dialect)."""

        from repro.storage.sql import SQLExecutor

        return SQLExecutor(self).execute(sql, txn)

    # ----------------------------------------------------------------- backup --
    def backup(self, label: str = "") -> BackupImage:
        """Take a full backup tagged with the current state identifier."""

        self.wal.flush()
        return self.backups.create_backup(label)

    def restore(self, image: BackupImage) -> LSN:
        """Restore from *image*; returns the database state identifier restored to.

        A checkpoint is taken immediately after the restore so that a later
        crash recovers to the restored state rather than replaying log
        records that describe the pre-restore history.
        """

        state_id = self.backups.restore(image)
        # The snapshot load rebuilt every heap (fresh mutation counters);
        # surviving scan-max trackers would validate against stale counts.
        self._max_trackers.clear()
        self.checkpoint()
        return state_id


class _AutoTxn:
    """Plain context manager behind :meth:`Database._autotxn`.

    Hand-rolled instead of ``@contextlib.contextmanager``: auto-transactions
    wrap every DML statement, and the generator-based manager's frame
    juggling showed up in profiles.
    """

    __slots__ = ("_database", "_txn", "_auto")

    def __init__(self, database: Database, txn: Transaction | None):
        self._database = database
        self._txn = txn
        self._auto: Transaction | None = None

    def __enter__(self) -> Transaction:
        if self._txn is not None:
            return self._txn
        self._auto = self._database.begin()
        return self._auto

    def __exit__(self, exc_type, exc, tb) -> bool:
        auto = self._auto
        if auto is None:
            return False
        if exc_type is not None:
            if not auto.is_finished:
                self._database.abort(auto)
            return False
        self._database.commit(auto)
        return False
