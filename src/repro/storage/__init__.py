"""A small relational storage engine used as the host DBMS and DLFM repository.

This package provides everything the DataLinks reproduction needs from a
relational database: typed tables (including the ``DATALINK`` column type),
strict two-phase locking, write-ahead logging, ARIES-style crash recovery,
savepoints, two-phase-commit participation, and point-in-time backup/restore
keyed by a log sequence number (the paper's "database state identifier").

The public entry point is :class:`repro.storage.database.Database`.
"""

from repro.storage.values import DataType
from repro.storage.schema import Column, TableSchema
from repro.storage.database import Database
from repro.storage.transaction import Transaction, TxnState
from repro.storage.backup import BackupImage

__all__ = [
    "DataType",
    "Column",
    "TableSchema",
    "Database",
    "Transaction",
    "TxnState",
    "BackupImage",
]
