"""The catalog: table schemas, heaps, and their indexes."""

from __future__ import annotations

from repro.errors import NoSuchTableError, TableExistsError
from repro.storage.heap import HeapTable
from repro.storage.index import HashIndex, OrderedIndex
from repro.storage.schema import TableSchema


class Catalog:
    """Owns every table's schema, heap storage and index set."""

    def __init__(self):
        self._schemas: dict[str, TableSchema] = {}
        self._heaps: dict[str, HeapTable] = {}
        self._indexes: dict[str, list] = {}
        self._index_by_name: dict[tuple[str, str], object] = {}
        # ``(schema, heap, pk_index, indexes)`` per table, built lazily:
        # the query planner asks for all four on every statement.
        self._plan_cache: dict[str, tuple] = {}
        #: Bumped on every DDL change (create/drop table, create index,
        #: snapshot load).  Callers holding derived per-table plans (the
        #: database's extended plan cache) validate against this counter
        #: instead of re-probing the catalog per statement.
        self.version = 0

    # -- tables -----------------------------------------------------------------
    def create_table(self, schema: TableSchema) -> HeapTable:
        if schema.name in self._schemas:
            raise TableExistsError(f"table {schema.name!r} already exists")
        self.version += 1
        self._schemas[schema.name] = schema
        heap = HeapTable(schema)
        self._heaps[schema.name] = heap
        self._indexes[schema.name] = []
        if schema.primary_key:
            self.create_index(f"{schema.name}_pk", schema.name,
                              schema.primary_key, unique=True)
        return heap

    def drop_table(self, name: str) -> None:
        self._require(name)
        self.version += 1
        del self._schemas[name]
        del self._heaps[name]
        self._plan_cache.pop(name, None)
        for index in self._indexes.pop(name):
            self._index_by_name.pop((name, index.name), None)

    def has_table(self, name: str) -> bool:
        return name in self._schemas

    def schema(self, name: str) -> TableSchema:
        self._require(name)
        return self._schemas[name]

    def heap(self, name: str) -> HeapTable:
        self._require(name)
        return self._heaps[name]

    def table_names(self) -> list[str]:
        return sorted(self._schemas)

    def _require(self, name: str) -> None:
        if name not in self._schemas:
            raise NoSuchTableError(f"no such table: {name!r}")

    # -- indexes ------------------------------------------------------------------
    def create_index(self, index_name: str, table: str, columns, *,
                     unique: bool = False, ordered: bool = False):
        self._require(table)
        self.version += 1
        index_cls = OrderedIndex if ordered else HashIndex
        index = index_cls(index_name, table, tuple(columns), unique=unique)
        for rid, row in self._heaps[table].scan_live():
            index.insert(row, rid)
        self._indexes[table].append(index)
        self._index_by_name[(table, index_name)] = index
        self._plan_cache.pop(table, None)
        return index

    def indexes_of(self, table: str) -> list:
        self._require(table)
        return list(self._indexes[table])

    def iter_indexes(self, table: str):
        """The internal index list for *table* (no copy; do not mutate)."""

        return self._indexes.get(table, ())

    def index_by_name(self, table: str, index_name: str):
        return self._index_by_name.get((table, index_name))

    def plan_info(self, table: str) -> tuple:
        """``(schema, heap, pk_index, indexes)`` for *table*, cached.

        One dict probe replaces the four separate catalog lookups every
        DML/SELECT statement performs; invalidated on any DDL.
        """

        info = self._plan_cache.get(table)
        if info is None:
            self._require(table)
            info = (self._schemas[table], self._heaps[table],
                    self._index_by_name.get((table, f"{table}_pk")),
                    tuple(self._indexes[table]))
            self._plan_cache[table] = info
        return info

    # -- maintenance hooks ----------------------------------------------------------
    def index_insert(self, table: str, row: dict, rid: int) -> None:
        for index in self._indexes.get(table, ()):
            index.insert(row, rid)

    def index_remove(self, table: str, row: dict, rid: int) -> None:
        for index in self._indexes.get(table, ()):
            index.remove(row, rid)

    def rebuild_indexes(self, table: str | None = None) -> None:
        """Rebuild indexes from heap contents (after restore or recovery)."""

        tables = [table] if table else list(self._schemas)
        for name in tables:
            for index in self._indexes.get(name, ()):
                index.clear()
                for rid, row in self._heaps[name].scan_live():
                    index.insert(row, rid)

    # -- checkpoint / backup ------------------------------------------------------
    def snapshot(self) -> dict:
        """Deep snapshot of schemas and heap contents (indexes are derivable)."""

        return {
            "schemas": {name: schema.copy() for name, schema in self._schemas.items()},
            "heaps": {name: heap.snapshot() for name, heap in self._heaps.items()},
            "index_defs": {
                name: [
                    {
                        "name": index.name,
                        "columns": index.columns,
                        "unique": index.unique,
                        "ordered": isinstance(index, OrderedIndex),
                    }
                    for index in indexes
                ]
                for name, indexes in self._indexes.items()
            },
        }

    def load_snapshot(self, snapshot: dict) -> None:
        """Replace the whole catalog with *snapshot* (restore / recovery)."""

        self.version += 1
        self._schemas = {}
        self._heaps = {}
        self._indexes = {}
        self._index_by_name = {}
        self._plan_cache = {}
        for name, schema in snapshot["schemas"].items():
            self._schemas[name] = schema.copy()
            heap = HeapTable(self._schemas[name])
            heap.load_snapshot(snapshot["heaps"][name])
            self._heaps[name] = heap
            self._indexes[name] = []
        for name, definitions in snapshot["index_defs"].items():
            for definition in definitions:
                self.create_index(definition["name"], name, definition["columns"],
                                  unique=definition["unique"],
                                  ordered=definition["ordered"])
