"""Transaction objects and their state machine.

The database (see :mod:`repro.storage.database`) owns the transaction life
cycle; this module defines the per-transaction bookkeeping: state, the chain
of log records written on its behalf (used for rollback), and savepoints.
Two-phase commit is supported through the PREPARED state so a DLFM can act as
a transactional resource manager for the host database, exactly as the paper
describes ("the operations done in DLFM are treated as a sub-transaction of
the host database transaction").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import TransactionNotActive
from repro.storage.wal import LogRecord


class TxnState(enum.Enum):
    ACTIVE = "ACTIVE"
    PREPARED = "PREPARED"
    COMMITTED = "COMMITTED"
    ABORTED = "ABORTED"


@dataclass
class Savepoint:
    """Marks a position in the transaction's undo chain."""

    name: str
    record_count: int


@dataclass
class Transaction:
    """One database transaction."""

    txn_id: int
    state: TxnState = TxnState.ACTIVE
    records: list[LogRecord] = field(default_factory=list)
    savepoints: list[Savepoint] = field(default_factory=list)
    # Callbacks run after commit / after abort (used by higher layers to
    # release external resources such as file ownership).
    on_commit: list = field(default_factory=list)
    on_abort: list = field(default_factory=list)

    @property
    def is_active(self) -> bool:
        return self.state is TxnState.ACTIVE

    @property
    def is_finished(self) -> bool:
        return self.state in (TxnState.COMMITTED, TxnState.ABORTED)

    def require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionNotActive(
                f"transaction {self.txn_id} is {self.state.value}, not ACTIVE")

    def require_active_or_prepared(self) -> None:
        if self.state not in (TxnState.ACTIVE, TxnState.PREPARED):
            raise TransactionNotActive(
                f"transaction {self.txn_id} is {self.state.value}")

    # -- undo chain -------------------------------------------------------------
    def note_record(self, record: LogRecord) -> None:
        """Remember a data log record for potential rollback."""

        self.records.append(record)

    def add_savepoint(self, name: str) -> Savepoint:
        savepoint = Savepoint(name=name, record_count=len(self.records))
        self.savepoints.append(savepoint)
        return savepoint

    def find_savepoint(self, name: str) -> Savepoint | None:
        for savepoint in reversed(self.savepoints):
            if savepoint.name == name:
                return savepoint
        return None

    def drop_savepoints_after(self, savepoint: Savepoint) -> None:
        while self.savepoints and self.savepoints[-1] is not savepoint:
            self.savepoints.pop()
