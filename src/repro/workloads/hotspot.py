"""Skewed-placement workload (experiment E14): static hash vs the balancer.

Drives a :class:`~repro.datalinks.sharding.ShardedDataLinksDeployment`
with zipfian link/read traffic over many URL prefixes, in two variants:

* **static** -- plain hash placement, no control plane.  The zipf head
  lands wherever the hash put it, and whichever shard co-hashes several
  popular prefixes stays the hotspot for the whole run.
* **balanced** -- the same traffic (same seeds) with the
  :class:`~repro.datalinks.balancer.PlacementBalancer` enabled and ticked
  once per round.  The balancer sees the skew in the router's per-prefix
  counters, moves hot prefixes off the loaded shard within its move
  budget, and *splits* a prefix that dominates its shard so the next
  window can spread the subtree.

Per round the workload issues ``links_per_round`` file uploads and
``reads_per_round`` token-validated reads as one **concurrent burst**
inside a scatter-gather window on the host clock (the E12 idiom: every
operation departs together, queues on its target node's own clock
domain, and the round costs the *bottleneck node's* busy time, the way a
fleet of concurrent clients loads the cluster).  Each operation's
latency is its completion time on the node that served it, relative to
the burst start -- so the k-th operation queued behind a hot node pays k
service times, which is exactly what placement skew costs.  Token
handout happens before the window and the links' SQL transactions commit
serially after it (host-side work, placement-independent), mirroring how
E12's follower-read batches are measured.

Each operation is attributed to the shard that owns its path *at issue
time*, so the per-round shard load profile
(:attr:`HotspotWorkload.round_loads`) reflects placement as it evolves.
Latencies are recorded separately for the warm-up half and the
steady-state half of the run (``link_steady`` / ``read_steady``), so the
comparison ignores the rounds the balancer spends converging.

The scoreboard the experiment compares:

* ``max_shard_load_share`` -- the busiest shard's fraction of
  steady-state operations (1/shards is perfect balance);
* steady-state p99 link/read latency -- the tail of the in-burst
  queueing delays, which concentrates on whichever node serves the zipf
  head under static placement and flattens once the balancer spreads the
  hot prefixes;
* ``committed_links_lost`` -- end-of-run audit that every committed
  DATALINK row still resolves (moves and splits must not lose links).

Links refused mid-move with a retryable
:class:`~repro.errors.PlacementError` are counted as ``links_blocked``
(back-pressure, not loss) and excluded from the latency samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datalinks.balancer import BalancerConfig
from repro.datalinks.control_modes import ControlMode
from repro.datalinks.datalink_type import DatalinkOptions, datalink_column
from repro.datalinks.sharding import ShardedDataLinksDeployment
from repro.errors import PlacementError, ReproError
from repro.util.urls import parse_url
from repro.workloads.audit import audit_committed_links
from repro.workloads.clients import ClientPool
from repro.workloads.generator import (UniformChooser, WorkloadMetrics,
                                       ZipfChooser, make_content)

DOCS_TABLE = "hotspot_docs"
READER_UID = 8101
POOL_READER_UID = 8201


@dataclass
class HotspotConfig:
    """Parameters of the skewed-placement workload."""

    shards: int = 4
    witnesses: int = 1
    prefixes: int = 8
    subdirs: int = 4
    seed_files_per_prefix: int = 2
    rounds: int = 8
    links_per_round: int = 8
    reads_per_round: int = 24
    file_size: int = 512
    theta: float = 1.1              # zipf skew over the prefixes
    seed: int = 42
    control_mode: ControlMode = ControlMode.RDB
    flush_policy: str = "group"
    group_commit_window: int = 1
    token_ttl: float = 1e9
    #: ``None`` runs the static-placement variant; a config enables the
    #: balancer, ticked once per round.
    balancer: BalancerConfig | None = None
    #: ``0`` (the default) keeps the classic host-session scatter-gather
    #: burst.  A positive count instead drives each round's reads
    #: through that many reader sessions on their own client clock
    #: domains (a :class:`~repro.workloads.clients.ClientPool`): reads
    #: queue on the serving node's domain per client, honour any host
    #: admission limit, and their latency is measured on the client's
    #: own timeline.  Links still burst from the host session (uploads
    #: are webmaster-side work).
    reader_sessions: int = 0


class HotspotWorkload:
    """Zipf-skewed link/read traffic, optionally under the balancer."""

    def __init__(self, config: HotspotConfig,
                 deployment: ShardedDataLinksDeployment | None = None):
        self.config = config
        self.deployment = deployment if deployment is not None else \
            ShardedDataLinksDeployment(
                config.shards,
                flush_policy=config.flush_policy,
                group_commit_window=config.group_commit_window,
                replication=True,
                witnesses=config.witnesses)
        self.balancer = None
        if config.balancer is not None:
            self.balancer = self.deployment.enable_balancer(config.balancer)
        self._session = None
        self._reader_pool = None
        self._prefix_chooser = ZipfChooser(config.prefixes, theta=config.theta,
                                           seed=config.seed)
        self._subdir_chooser = UniformChooser(config.subdirs,
                                              seed=config.seed + 1)
        self._doc_urls: dict[int, str] = {}
        self._docs_by_prefix: dict[int, list[int]] = {
            index: [] for index in range(config.prefixes)}
        self._read_cursor = 0
        self._next_doc = 0
        self._uploaded: list[tuple[int, str, int]] = []
        #: One ``{shard: operations}`` profile per round, placement as of
        #: issue time.
        self.round_loads: list[dict[str, int]] = []
        #: Per-tick balancer summaries (empty for the static variant).
        self.tick_summaries: list[dict] = []

    # -------------------------------------------------------------------- setup --
    def setup(self) -> "HotspotWorkload":
        from repro.storage.schema import Column, TableSchema
        from repro.storage.values import DataType

        config = self.config
        deployment = self.deployment
        deployment.create_table(TableSchema(DOCS_TABLE, [
            Column("doc_id", DataType.INTEGER, nullable=False),
            datalink_column("body",
                            DatalinkOptions(control_mode=config.control_mode,
                                            recovery=True)),
        ], primary_key=("doc_id",)))
        self._session = deployment.session("hotspot", uid=READER_UID)
        self._reader_pool = None
        if config.reader_sessions > 0:
            self._reader_pool = ClientPool(
                deployment.system, config.reader_sessions,
                prefix="hsreader", username="hsreader",
                uid_base=POOL_READER_UID)
        return self

    def _path(self, prefix_index: int) -> str:
        subdir = self._subdir_chooser.choose()
        return (f"/p{prefix_index:02d}/d{subdir}"
                f"/doc{self._next_doc:05d}.dat")

    # --------------------------------------------------------------- operations --
    def _link(self, prefix_index: int, metrics: WorkloadMetrics,
              kind: str, loads: dict[str, int]) -> None:
        """One serial link transaction (used for the seeding phase)."""

        deployment = self.deployment
        path = self._path(prefix_index)
        shard = deployment.shard_of(path)
        loads[shard] = loads.get(shard, 0) + 1
        doc_id = self._next_doc
        self._next_doc += 1
        content = make_content(self.config.file_size, tag=f"doc{doc_id}",
                               version=0)
        host_txn = None
        try:
            with deployment.clock.measure() as timer:
                url = deployment.put_file(self._session, path, content)
                host_txn = deployment.engine.begin()
                deployment.engine.insert(DOCS_TABLE,
                                         {"doc_id": doc_id, "body": url},
                                         host_txn)
                deployment.engine.commit(host_txn)
                host_txn = None
            metrics.record(kind, timer.elapsed)
            metrics.bump("links_ok")
            self._doc_urls[doc_id] = url
            self._docs_by_prefix[prefix_index].append(doc_id)
        except PlacementError:
            # The prefix is mid-move: retryable back-pressure.
            if host_txn is not None:
                self._abort_quietly(host_txn)
            metrics.bump("links_blocked")
        except ReproError:
            if host_txn is not None:
                self._abort_quietly(host_txn)
            metrics.bump("links_failed")

    def _abort_quietly(self, host_txn) -> None:
        try:
            self.deployment.engine.abort(host_txn)
        except ReproError:
            pass

    def _shard_domains(self, shard: str) -> list:
        """Clock domains of every node an upload to *shard* touches
        (serving node plus witnesses -- mirroring is part of the write)."""

        deployment = self.deployment
        replica = deployment.replicas.get(shard)
        names = [node.name for node in replica.nodes.values()] \
            if replica is not None else [shard]
        return [deployment.system.clocks.domain(name) for name in names]

    def _burst_link(self, prefix_index: int, metrics: WorkloadMetrics,
                    kind: str, loads: dict[str, int]) -> None:
        """One upload inside the scatter-gather window.

        Latency is the write's completion on the slowest node it touched
        (serving node + witness mirrors), relative to the burst start --
        uploads queued behind a hot shard pay the queue.  The SQL side of
        the link commits after the window (:meth:`_commit_uploaded`).
        """

        deployment = self.deployment
        path = self._path(prefix_index)
        shard = deployment.shard_of(path)
        doc_id = self._next_doc
        self._next_doc += 1
        content = make_content(self.config.file_size, tag=f"doc{doc_id}",
                               version=0)
        fork = deployment.clock.send_time()
        try:
            url = deployment.put_file(self._session, path, content)
        except PlacementError:
            metrics.bump("links_blocked")
            return
        except ReproError:
            metrics.bump("links_failed")
            return
        loads[shard] = loads.get(shard, 0) + 1
        done = max(domain.now() for domain in self._shard_domains(shard))
        metrics.record(kind, max(0.0, done - fork))
        metrics.bump("links_ok")
        self._uploaded.append((doc_id, url, prefix_index))

    def _commit_uploaded(self, metrics: WorkloadMetrics) -> None:
        """Serially commit the SQL rows of the burst's uploads."""

        deployment = self.deployment
        for doc_id, url, prefix_index in self._uploaded:
            host_txn = None
            try:
                host_txn = deployment.engine.begin()
                deployment.engine.insert(DOCS_TABLE,
                                         {"doc_id": doc_id, "body": url},
                                         host_txn)
                deployment.engine.commit(host_txn)
                self._doc_urls[doc_id] = url
                self._docs_by_prefix[prefix_index].append(doc_id)
            except ReproError:
                if host_txn is not None:
                    self._abort_quietly(host_txn)
                metrics.bump("links_failed")
        self._uploaded = []

    def _handout_wheres(self, read_plan) -> list[dict]:
        """The key of each scheduled read that has a target to read."""

        wheres = []
        docs_by_prefix = self._docs_by_prefix
        for prefix_index in read_plan:
            docs = docs_by_prefix[prefix_index]
            if not docs:
                continue
            wheres.append({"doc_id": docs[self._read_cursor % len(docs)]})
            self._read_cursor += 1
        return wheres

    def _burst_read(self, url: str, metrics: WorkloadMetrics,
                    kind: str, loads: dict[str, int]) -> None:
        """One routed read inside the scatter-gather window.

        Routes exactly like
        :meth:`~repro.datalinks.sharding.ShardedDataLinksDeployment.read_url`
        but keeps hold of the chosen node so the read's latency can be
        taken from *that node's* clock domain: its completion time
        relative to the burst start, queueing included.
        """

        deployment = self.deployment
        router = deployment.router
        parsed = parse_url(url)
        shard = router.owner_shard(parsed.server, parsed.path)
        fork = deployment.clock.send_time()
        try:
            server = router.route_read(shard, path=parsed.path)
            router.note_read(parsed.path)
            loads[shard] = loads.get(shard, 0) + 1
            self._session.read_url(url, server=server.name)
        except ReproError:
            metrics.bump("reads_failed")
            return
        domain = deployment.system.clocks.domain(server.name)
        metrics.record(kind, max(0.0, domain.now() - fork))
        metrics.bump("reads_ok")

    def _domain_read(self, session, url: str, metrics: WorkloadMetrics,
                     kind: str, loads: dict[str, int]) -> None:
        """One routed read on a reader's own clock domain.

        The per-client counterpart of :meth:`_burst_read`: the read
        departs at the reader's current time, syncs client <-> serving
        node, and its latency is the reader's own elapsed time --
        admission queue delay (if enabled) included.
        """

        deployment = self.deployment
        router = deployment.router
        parsed = parse_url(url)
        shard = router.owner_shard(parsed.server, parsed.path)
        fork = session.clock.now()
        try:
            server = router.route_read(shard, path=parsed.path)
            router.note_read(parsed.path)
            loads[shard] = loads.get(shard, 0) + 1
            session.read_url(url, server=server.name)
        except ReproError:
            metrics.bump("reads_failed")
            return
        metrics.record(kind, max(0.0, session.clock.now() - fork))
        metrics.bump("reads_ok")

    def _pooled_reads(self, read_urls: list[str], metrics: WorkloadMetrics,
                      kind: str, loads: dict[str, int]) -> None:
        """Spread the round's reads round-robin over the reader pool."""

        pool = self._reader_pool
        pool.sync_clients()
        assignments = [read_urls[index::pool.count]
                       for index in range(pool.count)]

        def read_op(session, reader_index, op_index):
            self._domain_read(session, assignments[reader_index][op_index],
                              metrics, kind, loads)

        pool.run([len(urls) for urls in assignments], read_op)

    def _audit_committed_links(self, metrics: WorkloadMetrics) -> None:
        metrics.counters["committed_links_lost"] = audit_committed_links(
            self.deployment, self._session, DOCS_TABLE, "doc_id", "body",
            self.config.token_ttl)

    # ---------------------------------------------------------------------- run --
    def run(self) -> WorkloadMetrics:
        config = self.config
        deployment = self.deployment
        metrics = WorkloadMetrics(started_at=deployment.clock.now())

        # Seed every prefix so moves have bytes to carry and reads have
        # targets from round one.
        seed_loads: dict[str, int] = {}
        for prefix_index in range(config.prefixes):
            for _ in range(config.seed_files_per_prefix):
                self._link(prefix_index, metrics, "link_seed", seed_loads)
        deployment.drain()
        deployment.system.run_archiver()
        deployment.system.flush_logs()

        steady_from = config.rounds // 2
        clock = deployment.clock
        for round_index in range(config.rounds):
            stage = "steady" if round_index >= steady_from else "early"
            loads: dict[str, int] = {}
            # The round's zipf schedule is drawn as two vectorized batches
            # (reads first, then links -- the same chooser order the
            # per-operation draws used), then replayed.  Token handout
            # (host-side SQL) happens before the window, like E12's
            # follower batches.
            read_plan = self._prefix_chooser.choose_many(
                config.reads_per_round)
            link_plan = self._prefix_chooser.choose_many(
                config.links_per_round)
            read_urls = [url for url in self._session.get_datalink_many(
                             DOCS_TABLE, self._handout_wheres(read_plan),
                             "body", access="read", ttl=config.token_ttl)
                         if url is not None]
            if self._reader_pool is not None:
                # Links burst from the host session; reads run per
                # reader clock domain through the pool.
                with clock.overlap():
                    for prefix_index in link_plan:
                        self._burst_link(prefix_index, metrics,
                                         f"link_{stage}", loads)
                if read_urls:
                    self._pooled_reads(read_urls, metrics, f"read_{stage}",
                                       loads)
            else:
                reads_per_link = max(1, len(read_urls) //
                                     max(1, len(link_plan)))
                with clock.overlap():
                    # Interleave uploads and reads so node queues build
                    # the way mixed concurrent traffic builds them.
                    cursor = 0
                    for prefix_index in link_plan:
                        self._burst_link(prefix_index, metrics,
                                         f"link_{stage}", loads)
                        for url in read_urls[cursor:cursor + reads_per_link]:
                            self._burst_read(url, metrics, f"read_{stage}",
                                             loads)
                        cursor += reads_per_link
                    for url in read_urls[cursor:]:
                        self._burst_read(url, metrics, f"read_{stage}", loads)
            self._commit_uploaded(metrics)
            deployment.drain()
            self.round_loads.append(loads)
            if self.balancer is not None:
                self.tick_summaries.append(self.balancer.tick())

        deployment.drain()
        self._audit_committed_links(metrics)
        metrics.counters["placement_epoch"] = \
            deployment.router.placement.epoch
        if self.balancer is not None:
            for key, value in self.balancer.stats().items():
                metrics.counters[f"balancer_{key}"] = value
        metrics.finished_at = deployment.clock.now()
        return metrics

    # ------------------------------------------------------------------ derived --
    def max_shard_load_share(self) -> float:
        """The busiest shard's fraction of steady-state operations."""

        steady_from = self.config.rounds // 2
        totals: dict[str, int] = {}
        for loads in self.round_loads[steady_from:]:
            for shard, count in loads.items():
                totals[shard] = totals.get(shard, 0) + count
        grand = sum(totals.values())
        if grand == 0:
            return 0.0
        return max(totals.values()) / grand
