"""The video-merchant scenario from the paper's introduction.

"A video merchant stores attributes associated with movies, such as cast,
category, inventory and price, in an RDBMS that could be used for search and
analysis.  In addition, (s)he stores clips of the same movies as files in the
file system for preview purposes.  Later, if the merchant stops selling a
movie, both the clip, stored in the file system, and the metadata, stored in
the RDBMS, for the movie should be deleted or archived." (Section 1)

The workload exercises the whole life cycle: add a movie (insert + link),
browse the catalogue (SQL), preview clips (file-system reads), refresh clips
in place (the paper's new capability), and retire movies (delete + unlink).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.system import DataLinksSystem
from repro.datalinks.control_modes import ControlMode
from repro.datalinks.datalink_type import DatalinkOptions, OnUnlink, datalink_column
from repro.storage.schema import Column, TableSchema
from repro.storage.values import DataType
from repro.workloads.generator import UniformChooser, WorkloadMetrics, make_content

MOVIES_TABLE = "movies"
MERCHANT_UID = 2101
CUSTOMER_UID = 3101


@dataclass
class VideoStoreConfig:
    movies: int = 20
    clip_size: int = 64 * 1024
    operations: int = 200
    preview_fraction: float = 0.80
    refresh_fraction: float = 0.10
    control_mode: ControlMode = ControlMode.RDD
    on_unlink: OnUnlink = OnUnlink.RESTORE
    server: str = "videofs"
    seed: int = 7


class VideoStoreWorkload:
    """Catalogue + clips with database-managed updates."""

    def __init__(self, config: VideoStoreConfig, system: DataLinksSystem | None = None):
        self.config = config
        self.system = system if system is not None else DataLinksSystem()
        self.merchant = None
        self.customer = None
        self._next_movie_id = 0

    # -------------------------------------------------------------------- setup --
    def setup(self) -> "VideoStoreWorkload":
        config = self.config
        if config.server not in self.system.file_servers:
            self.system.add_file_server(config.server)
        self.system.create_table(TableSchema(MOVIES_TABLE, [
            Column("movie_id", DataType.INTEGER, nullable=False),
            Column("title", DataType.TEXT, nullable=False),
            Column("category", DataType.TEXT),
            Column("price", DataType.REAL),
            Column("inventory", DataType.INTEGER, default=0),
            datalink_column("clip", DatalinkOptions(control_mode=config.control_mode,
                                                    on_unlink=config.on_unlink)),
            Column("clip_size", DataType.INTEGER),
            Column("clip_mtime", DataType.TIMESTAMP),
        ], primary_key=("movie_id",)))
        self.system.register_metadata_columns(MOVIES_TABLE, "clip",
                                              "clip_size", "clip_mtime")
        self.merchant = self.system.session("merchant", uid=MERCHANT_UID)
        self.customer = self.system.session("customer", uid=CUSTOMER_UID)
        for _ in range(config.movies):
            self.add_movie()
        self.system.run_archiver()
        return self

    # ----------------------------------------------------------------- operations --
    def add_movie(self) -> int:
        """Insert a new movie and link its preview clip."""

        config = self.config
        movie_id = self._next_movie_id
        self._next_movie_id += 1
        path = f"/clips/movie{movie_id:05d}.mpg"
        content = make_content(config.clip_size, tag=f"clip{movie_id}", version=0)
        url = self.merchant.put_file(config.server, path, content)
        self.merchant.insert(MOVIES_TABLE, {
            "movie_id": movie_id,
            "title": f"Movie {movie_id}",
            "category": ("drama", "comedy", "action")[movie_id % 3],
            "price": 9.99 + (movie_id % 5),
            "inventory": 10,
            "clip": url,
            "clip_size": len(content),
            "clip_mtime": 0.0,
        })
        return movie_id

    def browse(self, category: str) -> list[dict]:
        """Catalogue search by category (pure SQL path)."""

        return self.customer.select(MOVIES_TABLE, {"category": category}, lock=False)

    def preview(self, movie_id: int) -> int:
        """Read a movie's clip through the file-system path; returns byte count."""

        url = self.customer.get_datalink(MOVIES_TABLE, {"movie_id": movie_id}, "clip",
                                         access="read")
        if url is None:
            return 0
        return len(self.customer.read_url(url))

    def refresh_clip(self, movie_id: int, version: int) -> None:
        """Replace a movie's clip in place under database control."""

        config = self.config
        url = self.merchant.get_datalink(MOVIES_TABLE, {"movie_id": movie_id}, "clip",
                                         access="write")
        content = make_content(config.clip_size, tag=f"clip{movie_id}", version=version)
        with self.merchant.update_file(url, truncate=True) as update:
            update.replace(content)
        self.system.run_archiver()

    def retire_movie(self, movie_id: int) -> None:
        """Stop selling a movie: delete the row, which unlinks the clip."""

        self.merchant.delete(MOVIES_TABLE, {"movie_id": movie_id})

    # ----------------------------------------------------------------------- run --
    def run(self) -> WorkloadMetrics:
        config = self.config
        clock = self.system.clock
        metrics = WorkloadMetrics(started_at=clock.now())
        chooser = UniformChooser(config.movies, config.seed)
        movie_schedule = chooser.choose_many(config.operations)
        version = 1
        for op_index in range(config.operations):
            movie_id = movie_schedule[op_index]
            roll = (op_index % 100) / 100.0
            if roll < config.preview_fraction:
                with clock.measure() as timer:
                    self.preview(movie_id)
                metrics.record("preview_clip", timer.elapsed)
            elif roll < config.preview_fraction + config.refresh_fraction:
                with clock.measure() as timer:
                    self.refresh_clip(movie_id, version)
                metrics.record("refresh_clip", timer.elapsed)
                version += 1
            else:
                with clock.measure() as timer:
                    self.browse(("drama", "comedy", "action")[op_index % 3])
                metrics.record("browse", timer.elapsed)
        metrics.finished_at = clock.now()
        return metrics
