"""End-of-run committed-link audit, shared by the E13/E14 workloads.

The audit walks every committed DATALINK row and proves it still resolves
end to end: mint a fresh read token on the host, then read the URL through
the routing layer.  On the large tier this is one of the dominant phases,
so :data:`BATCHED_AUDIT` gates a bulk fast path.

The fast path keeps the *exact* scalar operation order -- mint row 0, read
row 0, mint row 1, ... -- because each routed read advances the host clock
through the synced file-system proxies, so row *i+1*'s token expiry depends
on read *i* having completed; a literal mint-all-then-read-all batch would
change the token stream.  What batching buys instead is hoisting the
per-row Python machinery out of the loop: the session/engine dispatch
frames, schema and datalink-option resolution, the router method lookups,
and the per-server synced proxy methods (resolved once per server, not once
per row).  Simulated charges and audit outcomes are bit-identical either
way (see tests/test_bulk_fastpaths.py).
"""

from __future__ import annotations

from repro.api.session import synced_lfs
from repro.datalinks.datalink_type import options_of_column
from repro.datalinks.tokens import TokenType
from repro.datalinks.uip import tokenized_path
from repro.errors import ControlModeError, DataLinksError, ReproError
from repro.fs.vfs import OpenFlags
from repro.storage.values import DataType
from repro.util.urls import parse_url

#: Gates the bulk audit fast path.  ``False`` replays the audit through the
#: scalar per-row ``get_datalink`` + ``read_url`` reference loop.
BATCHED_AUDIT = True


def audit_committed_links(deployment, session, table: str, key_column: str,
                          column: str, ttl: float) -> int:
    """Count committed DATALINK rows of *table* that no longer resolve.

    For every committed row the audit mints a fresh read token through the
    host engine and reads the resulting URL through the deployment's
    routing layer; a row whose mint or read fails with a
    :class:`~repro.errors.ReproError` counts as lost.
    """

    if not BATCHED_AUDIT:
        lost = 0
        for row in deployment.host_db.select(table, lock=False):
            url = row.get(column)
            if not url:
                continue
            try:
                tokenized = session.get_datalink(
                    table, {key_column: row[key_column]}, column,
                    access="read", ttl=ttl)
                deployment.read_url(session, tokenized)
            except ReproError:
                lost += 1
        return lost
    return _audit_batched(deployment, session, table, key_column, column, ttl)


def _audit_batched(deployment, session, table: str, key_column: str,
                   column: str, ttl: float) -> int:
    """The scalar audit with its per-row machinery hoisted out of the loop.

    Each row still runs mint -> routed read in the scalar order; only the
    Python-frame plumbing around those simulated operations is batched.
    """

    engine = deployment.engine
    db = engine.db
    clock = engine.clock
    router = engine.router
    servers = engine._servers
    token_cache = engine.token_cache
    system = session.system
    cred = session.cred
    host_txn = session._txn
    txn = host_txn.txn if host_txn is not None else None
    schema_column = db.catalog.schema(table).column(column)
    is_datalink = schema_column.dtype is DataType.DATALINK
    options = options_of_column(schema_column)
    mode = options.control_mode
    token_ttl = ttl if ttl is not None else options.token_ttl
    needs_token = mode.requires_read_token
    # Per-server (open, read, close) triplets through the clock-synced
    # proxies -- the attribute loads resolve the cached ``synced_call``
    # wrappers once per server instead of once per row.
    proxies: dict = {}
    lost = 0
    for row in deployment.host_db.select(table, lock=False):
        url = row.get(column)
        if not url:
            continue
        try:
            # -- mint (``session.get_datalink`` inlined) -------------------
            if clock is not None:
                clock.charge("datalink_engine_dispatch")
            matched = db.select(table, {key_column: row[key_column]}, txn)
            if not matched:
                tokenized = None
            else:
                if not is_datalink:
                    raise ControlModeError(
                        f"column {column!r} is not a DATALINK column")
                url_text = matched[0].get(column)
                if not url_text:
                    tokenized = None
                else:
                    parsed = parse_url(url_text)
                    server = parsed.server if router is None else \
                        router.owner_shard(parsed.server, parsed.path)
                    name = server if router is None else \
                        router.writable_node(server)
                    try:
                        entry = servers[name]
                    except KeyError:
                        raise DataLinksError(
                            f"no file server registered under "
                            f"{server!r}") from None
                    if needs_token:
                        path = parsed.path
                        if token_cache is not None:
                            token = token_cache.lookup(
                                server, path, TokenType.READ, token_ttl)
                            if token is None:
                                token = entry.tokens.generate(
                                    path, TokenType.READ, token_ttl)
                                token_cache.store(server, path,
                                                  TokenType.READ, token_ttl,
                                                  token)
                        else:
                            token = entry.tokens.generate(
                                path, TokenType.READ, token_ttl)
                    else:
                        token = None
                    tokenized = parsed.with_token(token).render()
            # -- routed read (``deployment.read_url`` inlined) -------------
            parsed = parse_url(tokenized)
            shard = router.owner_shard(parsed.server, parsed.path)
            node = router.route_read(shard, path=parsed.path)
            router.note_read(parsed.path)
            node_name = node.name
            methods = proxies.get(node_name)
            if methods is None:
                lfs = synced_lfs(system, node_name)
                methods = proxies[node_name] = (lfs.open, lfs.read, lfs.close)
            fd = methods[0](tokenized_path(tokenized), OpenFlags.READ, cred)
            try:
                methods[1](fd)
            finally:
                methods[2](fd)
        except ReproError:
            lost += 1
    return lost
