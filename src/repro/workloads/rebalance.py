"""Online prefix-rebalancing workload (experiment E13).

Drives a replicated :class:`~repro.datalinks.sharding.ShardedDataLinksDeployment`
through a live prefix move while foreground traffic keeps flowing:

1. **ingest**: link ``hot_files`` token-protected files under one *hot*
   prefix plus ``cold_files`` spread over the other prefixes, archive the
   initial versions and settle the cluster;
2. **before**: a measured slice of mixed foreground traffic (token-handout
   reads through the routing layer plus link transactions to non-moving
   prefixes) establishes the baseline;
3. **during**: the hot prefix is rebalanced to another shard
   (:meth:`~repro.datalinks.sharding.ShardedDataLinksDeployment.rebalance_prefix`,
   timed), and the *same* foreground slice runs **inside the hand-off**:
   hooks on the ``rebalance:export`` / ``rebalance:archive`` /
   ``rebalance:import`` / ``rebalance:fence`` failpoints issue reads and
   links mid-protocol, so the during-phase numbers are genuinely
   concurrent with the move.  Reads of the *moving* prefix keep being
   served on the source from the pre-export snapshot (dual-serve: the
   move is read-invisible, asserted as 100% during-phase read
   availability); links aimed at it are refused with a retryable
   :class:`~repro.errors.PlacementError` and counted separately
   (``links_blocked``) -- back-pressure, not unavailability;
4. **after**: the foreground slice repeats with the prefix on its new
   owner; old URLs (which still name the old shard) must keep resolving,
   and new links to the moved prefix must land on the destination;
5. **witness hand-off probe**: the destination's serving node crashes and
   the shard fails over -- the moved prefix must now serve from the
   *destination's* witness set, proving witness placement followed the
   prefix through the move.

``committed_links_lost`` counts committed DATALINK rows whose URL can no
longer be read at the end of a phase -- the zero-loss acceptance criterion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datalinks.control_modes import ControlMode
from repro.datalinks.datalink_type import DatalinkOptions, datalink_column
from repro.datalinks.sharding import ShardedDataLinksDeployment
from repro.errors import PlacementError, ReproError
from repro.storage.schema import Column, TableSchema
from repro.storage.values import DataType
from repro.util.urls import parse_url
from repro.workloads.audit import audit_committed_links
from repro.workloads.generator import WorkloadMetrics, make_content

DOCS_TABLE = "rebalanced_docs"
READER_UID = 8001

#: The hand-off failpoints the during-phase foreground slices ride on.
_DURING_POINTS = ("rebalance:export", "rebalance:archive",
                  "rebalance:import", "rebalance:fence")


@dataclass
class RebalanceConfig:
    """Parameters of the online-rebalance workload."""

    shards: int = 3
    witnesses: int = 1
    hot_prefix: str = "/hot"
    hot_files: int = 8
    cold_files: int = 8
    file_size: int = 1024
    reads_per_phase: int = 12
    links_per_phase: int = 4
    hot_link_attempts: int = 2     # links aimed at the moving prefix (blocked)
    control_mode: ControlMode = ControlMode.RDB   # reads need a valid token
    flush_policy: str = "group"
    group_commit_window: int = 4
    prefix_depth: int = 1
    token_ttl: float = 1e9


class RebalanceWorkload:
    """Foreground link/read traffic across a live prefix move."""

    def __init__(self, config: RebalanceConfig,
                 deployment: ShardedDataLinksDeployment | None = None):
        self.config = config
        self.deployment = deployment if deployment is not None else \
            ShardedDataLinksDeployment(
                config.shards,
                prefix_depth=config.prefix_depth,
                flush_policy=config.flush_policy,
                group_commit_window=config.group_commit_window,
                replication=True,
                witnesses=config.witnesses)
        self._session = None
        self._doc_urls: dict[int, str] = {}
        self._next_doc = 0
        self._next_cold = 0
        self._read_cursor = 0
        self.source: str | None = None
        self.dest: str | None = None

    # -------------------------------------------------------------------- setup --
    def setup(self) -> "RebalanceWorkload":
        config = self.config
        deployment = self.deployment
        deployment.create_table(TableSchema(DOCS_TABLE, [
            Column("doc_id", DataType.INTEGER, nullable=False),
            datalink_column("body",
                            DatalinkOptions(control_mode=config.control_mode,
                                            recovery=True)),
        ], primary_key=("doc_id",)))
        self._session = deployment.session("mover", uid=READER_UID)
        self.source = deployment.shard_of(f"{config.hot_prefix}/probe")
        self.dest = next(name for name in deployment.shard_names
                         if name != self.source)
        return self

    def _cold_path(self) -> str:
        """A path in a non-hot prefix (round-robined over the zones)."""

        index = self._next_cold
        self._next_cold += 1
        while True:
            path = f"/zone{index % 16}/doc{index:05d}.dat"
            if self.deployment.router.prefix_of(path) != self.config.hot_prefix:
                return path
            index += 1

    def _link(self, path: str, metrics: WorkloadMetrics, phase: str) -> None:
        doc_id = self._next_doc
        self._next_doc += 1
        deployment = self.deployment
        content = make_content(self.config.file_size, tag=f"doc{doc_id}",
                               version=0)
        host_txn = None
        try:
            with deployment.clock.measure() as timer:
                url = deployment.put_file(self._session, path, content)
                host_txn = deployment.engine.begin()
                deployment.engine.insert(DOCS_TABLE,
                                         {"doc_id": doc_id, "body": url},
                                         host_txn)
                deployment.engine.commit(host_txn)
                host_txn = None
            metrics.record(f"link_{phase}", timer.elapsed)
            metrics.bump(f"links_ok_{phase}")
            self._doc_urls[doc_id] = url
        except PlacementError:
            # The moving prefix refuses new links until the hand-off
            # commits: retryable back-pressure, counted apart from real
            # failures.
            if host_txn is not None:
                self._abort_quietly(host_txn)
            metrics.bump(f"links_blocked_{phase}")
        except ReproError:
            if host_txn is not None:
                self._abort_quietly(host_txn)
            metrics.bump(f"links_failed_{phase}")

    def _abort_quietly(self, host_txn) -> None:
        try:
            self.deployment.engine.abort(host_txn)
        except ReproError:
            pass

    def _read(self, doc_id: int, metrics: WorkloadMetrics, phase: str) -> None:
        deployment = self.deployment
        try:
            url = self._session.get_datalink(
                DOCS_TABLE, {"doc_id": doc_id}, "body", access="read",
                ttl=self.config.token_ttl)
            if url is None:
                metrics.bump(f"reads_failed_{phase}")
                return
            with deployment.clock.measure() as timer:
                deployment.read_url(self._session, url)
            metrics.record(f"read_{phase}", timer.elapsed)
            metrics.bump(f"reads_ok_{phase}")
        except ReproError:
            metrics.bump(f"reads_failed_{phase}")

    def _foreground_slice(self, metrics: WorkloadMetrics, phase: str,
                          *, reads: int, links: int,
                          hot_links: int = 0) -> None:
        """One slice of mixed foreground traffic attributed to *phase*."""

        doc_ids = sorted(self._doc_urls)
        for _ in range(reads):
            if doc_ids:
                # A persistent rotation, so every phase's reads cover hot
                # and cold prefixes alike (mid-move, hot reads are served
                # on the source from the pre-export dual-serve snapshot,
                # so the during-phase availability must stay at 100%).
                self._read(doc_ids[self._read_cursor % len(doc_ids)],
                           metrics, phase)
                self._read_cursor += 1
        for _ in range(links):
            self._link(self._cold_path(), metrics, phase)
        for attempt in range(hot_links):
            self._link(f"{self.config.hot_prefix}/live{attempt:04d}"
                       f"-{self._next_doc:05d}.dat", metrics, phase)

    def _audit_committed_links(self, metrics: WorkloadMetrics) -> None:
        """Count committed DATALINK rows that can no longer be read."""

        metrics.counters["committed_links_lost"] = audit_committed_links(
            self.deployment, self._session, DOCS_TABLE, "doc_id", "body",
            self.config.token_ttl)

    # ---------------------------------------------------------------------- run --
    def run(self) -> WorkloadMetrics:
        config = self.config
        deployment = self.deployment
        clock = deployment.clock
        metrics = WorkloadMetrics(started_at=clock.now())

        # -- ingest ----------------------------------------------------------
        for index in range(config.hot_files):
            self._link(f"{config.hot_prefix}/doc{index:05d}.dat", metrics,
                       "ingest")
        for _ in range(config.cold_files):
            self._link(self._cold_path(), metrics, "ingest")
        deployment.drain()
        deployment.system.run_archiver()
        deployment.system.flush_logs()

        # -- before ----------------------------------------------------------
        self._foreground_slice(metrics, "before",
                               reads=config.reads_per_phase,
                               links=config.links_per_phase)
        deployment.drain()

        # -- during: foreground ops fire inside the hand-off -----------------
        per_point_reads = max(1, config.reads_per_phase // len(_DURING_POINTS))
        per_point_links = max(1, config.links_per_phase // len(_DURING_POINTS))
        hot_per_point = [config.hot_link_attempts if point == "rebalance:import"
                         else 0 for point in _DURING_POINTS]

        def make_hook(hot_links: int):
            def hook():
                self._foreground_slice(metrics, "during",
                                       reads=per_point_reads,
                                       links=per_point_links,
                                       hot_links=hot_links)
            return hook

        for point, hot_links in zip(_DURING_POINTS, hot_per_point):
            deployment.rebalance_failpoints[point] = make_hook(hot_links)
        try:
            with clock.measure() as timer:
                summary = deployment.rebalance_prefix(config.hot_prefix,
                                                      self.dest)
        finally:
            deployment.rebalance_failpoints.clear()
        metrics.record("rebalance", timer.elapsed)
        metrics.counters["moved_files"] = summary["moved_files"]
        metrics.counters["moved_versions"] = summary["moved_versions"]
        metrics.counters["placement_epoch"] = summary["epoch"]
        metrics.counters["swept_files"] = summary["swept_files"]

        # -- after: old URLs resolve, new hot links land on the destination --
        self._foreground_slice(metrics, "after",
                               reads=config.reads_per_phase,
                               links=config.links_per_phase,
                               hot_links=config.hot_link_attempts)
        deployment.drain()
        self._audit_committed_links(metrics)

        # -- witness hand-off probe: promotion serves the moved prefix -------
        deployment.system.flush_logs()
        deployment.crash_shard(self.dest)
        with clock.measure() as timer:
            promotion = deployment.fail_over(self.dest)
        metrics.record("promotion", timer.elapsed)
        metrics.counters["promoted_serving"] = promotion["serving"]
        hot_docs = [doc_id for doc_id, url in self._doc_urls.items()
                    if deployment.router.prefix_of(parse_url(url).path)
                    == config.hot_prefix]
        for doc_id in hot_docs[:config.reads_per_phase]:
            self._read(doc_id, metrics, "failover")

        metrics.finished_at = clock.now()
        return metrics

    # ------------------------------------------------------------------ derived --
    @staticmethod
    def availability(metrics: WorkloadMetrics, phase: str, kind: str) -> float:
        """Fraction of *kind* (``reads``/``links``) that succeeded in *phase*.

        Blocked links (retryable back-pressure on the moving prefix) do not
        count against availability; real failures do.
        """

        ok = metrics.counters.get(f"{kind}_ok_{phase}", 0)
        failed = metrics.counters.get(f"{kind}_failed_{phase}", 0)
        if ok + failed == 0:
            return 0.0
        return ok / (ok + failed)

    @staticmethod
    def phase_throughput(metrics: WorkloadMetrics, phase: str) -> float:
        """Foreground operations per simulated second within *phase*."""

        elapsed = metrics.stats(f"read_{phase}").total + \
            metrics.stats(f"link_{phase}").total
        ops = metrics.counters.get(f"reads_ok_{phase}", 0) + \
            metrics.counters.get(f"links_ok_{phase}", 0)
        if elapsed <= 0:
            return 0.0
        return ops / elapsed
