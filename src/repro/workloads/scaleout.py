"""High-concurrency link-ingest workload over a sharded deployment.

Drives experiment E11: many concurrent client sessions ingest files through
a :class:`~repro.datalinks.sharding.ShardedDataLinksDeployment`, linking
every file inside an SQL transaction.  The knobs isolate the three scale-out
levers:

``shards``               how many DLFM file servers the files spread over;
``batch_links``          multi-row INSERT with one batched link message per
                         enlisted shard (``True``) versus row-at-a-time
                         INSERTs with one IPC round trip per row (``False``);
``flush_policy`` /       WAL group commit: with ``"group"`` and a window > 1
``group_commit_window``  the deployment's commit queue resolves a batch of
                         transactions with one prepare/commit message per
                         shard and one host log force.

The baseline configuration of E11 is ``shards=1, batch_links=False,
flush_policy="immediate", group_commit_window=1`` -- a single file server
driven one row and one log force at a time.

Clients are interleaved round-robin (client 0 commits, client 1 commits,
...) so the group-commit queue sees the concurrent commit stream a real
multi-user system would produce.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datalinks.control_modes import ControlMode
from repro.datalinks.datalink_type import DatalinkOptions, datalink_column
from repro.datalinks.sharding import ShardedDataLinksDeployment
from repro.errors import ReproError
from repro.storage.schema import Column, TableSchema
from repro.storage.values import DataType
from repro.workloads.clients import ClientPool
from repro.workloads.generator import WorkloadMetrics, make_content

DOCS_TABLE = "ingested_docs"
FIRST_CLIENT_UID = 5001


@dataclass
class ScaleOutConfig:
    """Parameters of the sharded link-ingest workload."""

    shards: int = 8
    clients: int = 8
    transactions_per_client: int = 4
    rows_per_transaction: int = 16
    file_size: int = 1024
    batch_links: bool = True
    flush_policy: str = "group"
    group_commit_window: int = 8
    control_mode: ControlMode = ControlMode.RFF
    prefix_depth: int = 1
    serial_clock: bool = False


class ScaleOutWorkload:
    """Concurrent clients linking files across N DLFM shards."""

    def __init__(self, config: ScaleOutConfig,
                 deployment: ShardedDataLinksDeployment | None = None):
        self.config = config
        self.deployment = deployment if deployment is not None else \
            ShardedDataLinksDeployment(
                config.shards,
                prefix_depth=config.prefix_depth,
                flush_policy=config.flush_policy,
                group_commit_window=config.group_commit_window,
                serial_clock=config.serial_clock)
        self._sessions = []
        self._staged: list[list[tuple[int, str]]] = []

    # -------------------------------------------------------------------- setup --
    def setup(self) -> "ScaleOutWorkload":
        """Create the table, the client sessions and the to-be-linked files.

        File creation happens here, outside the measured window: the workload
        measures link throughput, not file-transfer bandwidth.
        """

        config = self.config
        deployment = self.deployment
        deployment.create_table(TableSchema(DOCS_TABLE, [
            Column("doc_id", DataType.INTEGER, nullable=False),
            datalink_column("body",
                            DatalinkOptions(control_mode=config.control_mode,
                                            recovery=False)),
            Column("body_size", DataType.INTEGER),
        ], primary_key=("doc_id",)))
        self._sessions = [
            deployment.session(f"client{index}", uid=FIRST_CLIENT_UID + index)
            for index in range(config.clients)
        ]
        doc_id = 0
        self._staged = []
        for client in range(config.clients):
            for txn_index in range(config.transactions_per_client):
                rows = []
                for row_index in range(config.rows_per_transaction):
                    path = (f"/ingest{doc_id % (config.shards * 4)}"
                            f"/doc{doc_id:06d}.dat")
                    content = make_content(config.file_size,
                                           tag=f"doc{doc_id}", version=0)
                    deployment.put_file(self._sessions[client], path, content)
                    rows.append((doc_id, path))
                    doc_id += 1
                self._staged.append(rows)
        return self

    # ---------------------------------------------------------------------- run --
    def run(self) -> WorkloadMetrics:
        """Ingest every staged transaction; returns metrics with link counts.

        ``metrics.counters["links"] / metrics.elapsed`` is the link
        throughput in links per simulated second.
        """

        config = self.config
        deployment = self.deployment
        clock = deployment.clock
        metrics = WorkloadMetrics(started_at=clock.now())
        # Interleave clients round-robin: txn 0 of every client, then txn 1...
        order = [client * config.transactions_per_client + txn_index
                 for txn_index in range(config.transactions_per_client)
                 for client in range(config.clients)]
        for slot in order:
            rows = self._staged[slot]
            with clock.measure() as timer:
                host_txn = deployment.begin()
                payload = [{"doc_id": doc_id,
                            "body": deployment.url_for(path),
                            "body_size": config.file_size}
                           for doc_id, path in rows]
                if config.batch_links:
                    deployment.engine.insert_many(DOCS_TABLE, payload, host_txn)
                else:
                    for row in payload:
                        deployment.engine.insert(DOCS_TABLE, row, host_txn)
                deployment.commit(host_txn)
            metrics.record("link_txn", timer.elapsed)
            metrics.bump("links", len(rows))
        with clock.measure() as timer:
            deployment.drain()
        if timer.elapsed:
            metrics.record("final_drain", timer.elapsed)
        metrics.finished_at = clock.now()
        return metrics

    def link_throughput(self, metrics: WorkloadMetrics) -> float:
        """Links per simulated second over the whole run."""

        if metrics.elapsed <= 0:
            return 0.0
        return metrics.counters.get("links", 0) / metrics.elapsed

    # ------------------------------------------------------------- client sweep --
    def run_client_sweep(self, client_counts, *,
                         transactions_per_client: int = 1,
                         rows_per_transaction: int | None = None,
                         admission_limit: int | None = None,
                         think_s: float = 0.0,
                         domain_pool: int | None = None,
                         step_hook=None) -> list[dict]:
        """Sweep concurrent ingest clients, each on its own clock domain.

        The per-client replacement for the round-robin host-clock
        interleaving of :meth:`run`: each step stages fresh files
        (unmeasured, through a host-side stager session), then drives
        ``clients`` writers through a
        :class:`~repro.workloads.clients.ClientPool`.  Every writer is
        admitted through the host connection gate, thinks, and commits
        one multi-row link transaction through *its own* session -- the
        SQL path barriers client <-> host per call, so concurrent
        commits genuinely queue on the host's 2PC timeline and the
        curve saturates on whichever is tighter, the admission limit or
        the host commit path.  Requires :meth:`setup` (the table must
        exist).  ``step_hook`` (when given) is called once after each
        step and its return recorded as the step's ``profile_calls``.
        Returns one summary dict per step with transaction latency and
        queue-delay percentiles.
        """

        config = self.config
        deployment = self.deployment
        system = deployment.system
        rows_per_txn = config.rows_per_transaction \
            if rows_per_transaction is None else rows_per_transaction
        admission = None
        if admission_limit is not None:
            admission = system.enable_admission(admission_limit)
        stager = deployment.session("sweep_stager", uid=FIRST_CLIENT_UID - 1)
        next_doc = 1_000_000
        steps = []
        for step_index, clients in enumerate(client_counts):
            staged: list[list[list[dict]]] = []
            for _ in range(clients):
                txns = []
                for _ in range(transactions_per_client):
                    payload = []
                    for _ in range(rows_per_txn):
                        path = (f"/ingest{next_doc % (config.shards * 4)}"
                                f"/sweep{next_doc:07d}.dat")
                        content = make_content(config.file_size,
                                               tag=f"sweep{next_doc}",
                                               version=0)
                        deployment.put_file(stager, path, content)
                        payload.append({"doc_id": next_doc,
                                        "body": deployment.url_for(path),
                                        "body_size": config.file_size})
                        next_doc += 1
                    txns.append(payload)
                staged.append(txns)
            # The pool is created after staging so its clients arrive at
            # the cluster's current time, not before the staged files
            # existed.
            pool = ClientPool(system, clients, limit=domain_pool,
                              think_s=think_s,
                              username=f"ingest{step_index}c",
                              uid_base=FIRST_CLIENT_UID + 1000)
            flushes_before = system.host_db.wal.flush_count
            linked_before = dict(
                deployment.stats()["linked_files_per_shard"])
            failures = [0]

            def link_txn(session, client_index, txn_index):
                try:
                    session.begin()
                    session.insert_many(DOCS_TABLE,
                                        staged[client_index][txn_index])
                    session.commit()
                except ReproError:
                    failures[0] += 1
                    if session.in_transaction:
                        session.abort()

            pool.run(transactions_per_client, link_txn)
            deployment.drain()
            summary = pool.summary()
            committed = summary["operations"] - failures[0]
            elapsed = pool.elapsed_s
            linked_after = deployment.stats()["linked_files_per_shard"]
            steps.append({
                "clients": clients,
                "transactions": committed,
                "links": committed * rows_per_txn,
                "txn_mean_ms": round(summary["latency_mean_ms"], 3),
                "txn_p50_ms": round(summary["latency_p50_ms"], 3),
                "txn_p99_ms": round(summary["latency_p99_ms"], 3),
                "queue_p50_ms": round(summary["queue_p50_ms"], 3),
                "queue_p99_ms": round(summary["queue_p99_ms"], 3),
                "links_per_sim_s": round(
                    committed * rows_per_txn / elapsed, 1)
                    if elapsed > 0 else 0.0,
                "host_log_flushes": system.host_db.wal.flush_count
                    - flushes_before,
                "max_links_per_shard": max(
                    linked_after[name] - linked_before.get(name, 0)
                    for name in linked_after) if linked_after else 0,
            })
            if step_hook is not None:
                steps[-1]["profile_calls"] = step_hook()
        if admission is not None:
            system.disable_admission()
        return steps
