"""Concurrent editors: update-in-place vs. check-in/check-out vs. copy-and-update.

Section 3 motivates update-in-place by comparing it against CICO (long-lived
database locks, poor concurrency if applications hoard files) and CAU
(private copies, no locks, lost updates "believe it or not ... used by many
development labs").  This workload simulates a team of editors repeatedly
editing a shared set of files under each scheme and measures:

* completed edits and edits per simulated second,
* acquisition conflicts (a writer was turned away),
* lost updates (CAU with blind overwrite) / merge conflicts (CAU with detect),
* mean time a file stays unavailable to other writers.

Concurrency is simulated by interleaving editor state machines on a global
tick; every tick advances the simulated clock by ``think_seconds`` so lock
hold times reflect human think time, not just code path length.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.api.system import DataLinksSystem
from repro.datalinks.baselines.cau import CopyAndUpdateManager
from repro.datalinks.baselines.cico import CheckInCheckOutManager
from repro.datalinks.control_modes import ControlMode
from repro.datalinks.datalink_type import DatalinkOptions, datalink_column
from repro.errors import CheckoutConflictError, FileSystemError, MergeConflictError
from repro.storage.schema import Column, TableSchema
from repro.storage.values import DataType
from repro.workloads.generator import WorkloadMetrics, make_content

DOCUMENTS_TABLE = "documents"
FIRST_EDITOR_UID = 4000
SHARED_GID = 100

SCHEME_UIP = "uip"
SCHEME_CICO = "cico"
SCHEME_CAU_OVERWRITE = "cau-overwrite"
SCHEME_CAU_DETECT = "cau-detect"
ALL_SCHEMES = (SCHEME_UIP, SCHEME_CICO, SCHEME_CAU_OVERWRITE, SCHEME_CAU_DETECT)


@dataclass
class EditorConfig:
    editors: int = 4
    files: int = 2
    edits_per_editor: int = 5
    think_ticks: int = 3
    think_seconds: float = 0.5
    file_size: int = 4 * 1024
    scheme: str = SCHEME_UIP
    server: str = "teamfs"
    seed: int = 11
    max_ticks: int = 10_000


@dataclass
class _Editor:
    userid: int
    session: object
    remaining: int
    state: str = "idle"                 # idle | editing
    ticks_left: int = 0
    target: int | None = None
    context: dict = field(default_factory=dict)
    acquired_at: float = 0.0


class ConcurrentEditorsWorkload:
    """Interleaved editors working on shared files under one update scheme."""

    def __init__(self, config: EditorConfig, system: DataLinksSystem | None = None):
        if config.scheme not in ALL_SCHEMES:
            raise ValueError(f"unknown scheme {config.scheme!r}")
        self.config = config
        self.system = system if system is not None else DataLinksSystem()
        self.paths: list[str] = []
        self.urls: list[str] = []
        self._editors: list[_Editor] = []
        self._rng = random.Random(config.seed)
        self.cico: CheckInCheckOutManager | None = None
        self.cau: CopyAndUpdateManager | None = None
        self._versions = 0

    # -------------------------------------------------------------------- setup --
    def setup(self) -> "ConcurrentEditorsWorkload":
        config = self.config
        if config.server not in self.system.file_servers:
            self.system.add_file_server(config.server)
        file_server = self.system.file_server(config.server)

        # With UIP the files are linked in rfd mode (database-managed update);
        # the baselines work on unlinked, group-writable files so that the
        # scheme itself is the only difference.
        link = config.scheme == SCHEME_UIP
        self.system.create_table(TableSchema(DOCUMENTS_TABLE, [
            Column("doc_id", DataType.INTEGER, nullable=False),
            datalink_column("body", DatalinkOptions(control_mode=ControlMode.RFD)),
            Column("body_size", DataType.INTEGER),
            Column("body_mtime", DataType.TIMESTAMP),
        ], primary_key=("doc_id",)))
        self.system.register_metadata_columns(DOCUMENTS_TABLE, "body",
                                              "body_size", "body_mtime")

        owner = self.system.session("teamlead", uid=FIRST_EDITOR_UID - 1, gid=SHARED_GID)
        for doc_id in range(config.files):
            path = f"/team/doc{doc_id:04d}.txt"
            content = make_content(config.file_size, tag=f"doc{doc_id}", version=0)
            url = owner.put_file(config.server, path, content)
            file_server.raw_lfs.chmod(path, 0o664, owner_cred(self.system))
            self.paths.append(path)
            self.urls.append(url)
            if link:
                owner.insert(DOCUMENTS_TABLE, {
                    "doc_id": doc_id, "body": url,
                    "body_size": len(content), "body_mtime": 0.0,
                })
        if link:
            self.system.run_archiver()

        if config.scheme == SCHEME_CICO:
            self.cico = CheckInCheckOutManager(self.system.host_db, self.system.clock)
        if config.scheme in (SCHEME_CAU_OVERWRITE, SCHEME_CAU_DETECT):
            self.cau = CopyAndUpdateManager(
                {config.server: file_server.files})

        for index in range(config.editors):
            uid = FIRST_EDITOR_UID + index
            session = self.system.session(f"editor{index}", uid=uid, gid=SHARED_GID)
            self._editors.append(_Editor(userid=uid, session=session,
                                         remaining=config.edits_per_editor))
        return self

    # ---------------------------------------------------------------------- run --
    def run(self) -> WorkloadMetrics:
        config = self.config
        clock = self.system.clock
        metrics = WorkloadMetrics(started_at=clock.now())
        ticks = 0
        while any(e.remaining > 0 or e.state == "editing" for e in self._editors):
            ticks += 1
            if ticks > config.max_ticks:
                metrics.bump("aborted_run")
                break
            clock.advance(config.think_seconds)
            for editor in self._editors:
                self._step(editor, metrics)
        metrics.finished_at = clock.now()
        metrics.bump("ticks", ticks)
        if self.cau is not None:
            metrics.counters["lost_updates"] = self.cau.lost_updates
            metrics.counters["merge_conflicts"] = self.cau.conflicts_detected
        if self.cico is not None:
            metrics.counters["checkout_conflicts"] = self.cico.conflicts
        self.system.run_archiver()
        return metrics

    # -------------------------------------------------------------- state machine --
    def _step(self, editor: _Editor, metrics: WorkloadMetrics) -> None:
        if editor.state == "idle":
            if editor.remaining <= 0:
                return
            target = self._rng.randrange(self.config.files)
            if self._try_acquire(editor, target, metrics):
                editor.state = "editing"
                editor.ticks_left = self.config.think_ticks
                editor.target = target
                editor.acquired_at = self.system.clock.now()
            return
        # editing
        editor.ticks_left -= 1
        if editor.ticks_left > 0:
            return
        self._finish_edit(editor, metrics)
        editor.state = "idle"
        editor.remaining -= 1
        editor.target = None
        editor.context = {}

    def _try_acquire(self, editor: _Editor, target: int, metrics: WorkloadMetrics) -> bool:
        scheme = self.config.scheme
        path = self.paths[target]
        try:
            if scheme == SCHEME_UIP:
                url = editor.session.get_datalink(DOCUMENTS_TABLE, {"doc_id": target},
                                                  "body", access="write")
                update = editor.session.update_file(url, truncate=True)
                update.begin()
                editor.context = {"update": update}
            elif scheme == SCHEME_CICO:
                self.cico.check_out(self.config.server, path, editor.userid)
                editor.context = {}
            else:
                copy = self.cau.make_copy(self.config.server, path, editor.userid)
                editor.context = {"copy": copy}
            metrics.bump("acquisitions")
            return True
        except (FileSystemError, CheckoutConflictError):
            metrics.bump("conflicts")
            return False

    def _finish_edit(self, editor: _Editor, metrics: WorkloadMetrics) -> None:
        scheme = self.config.scheme
        config = self.config
        path = self.paths[editor.target]
        self._versions += 1
        content = make_content(config.file_size, tag=f"edit{editor.userid}",
                               version=self._versions)
        clock = self.system.clock
        try:
            if scheme == SCHEME_UIP:
                update = editor.context["update"]
                update.replace(content)
                update.commit()
                self.system.run_archiver()
            elif scheme == SCHEME_CICO:
                self._write_shared(path, editor, content)
                self.cico.check_in(config.server, path, editor.userid)
            else:
                copy = editor.context["copy"]
                self.cau.write_copy(copy, content)
                policy = "overwrite" if scheme == SCHEME_CAU_OVERWRITE else "detect"
                try:
                    self.cau.check_in(copy, policy=policy)
                except MergeConflictError:
                    metrics.bump("rejected_checkins")
                    return
            metrics.bump("completed_edits")
            metrics.record("edit_session", clock.now() - editor.acquired_at)
        except FileSystemError:
            metrics.bump("failed_edits")

    def _write_shared(self, path: str, editor: _Editor, content: bytes) -> None:
        file_server = self.system.file_server(self.config.server)
        file_server.lfs.write_file(path, content, editor.session.cred, create=False)


def owner_cred(system: DataLinksSystem):
    """Superuser credentials used for one-off permission fixes during setup."""

    from repro.fs.vfs import Credentials

    return Credentials(uid=0, gid=0, username="root")


def compare_schemes(config: EditorConfig | None = None) -> dict[str, WorkloadMetrics]:
    """Run the same editor population under every scheme; returns per-scheme metrics."""

    base = config if config is not None else EditorConfig()
    results: dict[str, WorkloadMetrics] = {}
    for scheme in ALL_SCHEMES:
        scheme_config = EditorConfig(**{**base.__dict__, "scheme": scheme})
        workload = ConcurrentEditorsWorkload(scheme_config).setup()
        results[scheme] = workload.run()
    return results
