"""Workload generators driving the benchmark experiments.

Each workload exercises the public API (:class:`repro.api.DataLinksSystem` /
:class:`repro.api.Session`) the way the paper's motivating applications
would: a read-mostly static web site, the video merchant of the introduction,
and a team of concurrent editors comparing the Section 3 update schemes.
"""

from repro.workloads.generator import WorkloadMetrics, ZipfChooser
from repro.workloads.webserver import WebSiteConfig, WebServerWorkload
from repro.workloads.videostore import VideoStoreConfig, VideoStoreWorkload
from repro.workloads.editors import EditorConfig, ConcurrentEditorsWorkload
from repro.workloads.scaleout import ScaleOutConfig, ScaleOutWorkload
from repro.workloads.failover import FailoverConfig, FailoverWorkload
from repro.workloads.rebalance import RebalanceConfig, RebalanceWorkload
from repro.workloads.hotspot import HotspotConfig, HotspotWorkload

__all__ = [
    "WorkloadMetrics",
    "ZipfChooser",
    "WebSiteConfig",
    "WebServerWorkload",
    "VideoStoreConfig",
    "VideoStoreWorkload",
    "EditorConfig",
    "ConcurrentEditorsWorkload",
    "ScaleOutConfig",
    "ScaleOutWorkload",
    "FailoverConfig",
    "FailoverWorkload",
    "RebalanceConfig",
    "RebalanceWorkload",
    "HotspotConfig",
    "HotspotWorkload",
]
