"""Workload building blocks: metrics collection and access-skew generators."""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np


@dataclass
class OperationStats:
    """Latency samples (simulated seconds) for one kind of operation."""

    samples: list = field(default_factory=list)

    def record(self, elapsed: float) -> None:
        self.samples.append(elapsed)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples)) if self.samples else 0.0

    @property
    def p50(self) -> float:
        return float(np.percentile(self.samples, 50)) if self.samples else 0.0

    @property
    def p95(self) -> float:
        return float(np.percentile(self.samples, 95)) if self.samples else 0.0

    @property
    def p99(self) -> float:
        return float(np.percentile(self.samples, 99)) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return float(max(self.samples)) if self.samples else 0.0

    @property
    def total(self) -> float:
        return float(sum(self.samples))


@dataclass
class WorkloadMetrics:
    """Aggregated results of one workload run."""

    operations: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    started_at: float = 0.0
    finished_at: float = 0.0

    def record(self, kind: str, elapsed: float) -> None:
        self.operations.setdefault(kind, OperationStats()).record(elapsed)

    def bump(self, counter: str, amount: int = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + amount

    def stats(self, kind: str) -> OperationStats:
        return self.operations.get(kind, OperationStats())

    @property
    def elapsed(self) -> float:
        return max(0.0, self.finished_at - self.started_at)

    def throughput(self) -> float:
        """Operations per simulated second across all kinds."""

        total_ops = sum(stats.count for stats in self.operations.values())
        if self.elapsed <= 0:
            return 0.0
        return total_ops / self.elapsed

    def summary_rows(self) -> list[dict]:
        """One row per operation kind, in milliseconds, for table printing."""

        rows = []
        for kind in sorted(self.operations):
            stats = self.operations[kind]
            rows.append({
                "operation": kind,
                "count": stats.count,
                "mean_ms": round(stats.mean * 1000, 3),
                "p95_ms": round(stats.p95 * 1000, 3),
                "p99_ms": round(stats.p99 * 1000, 3),
                "max_ms": round(stats.maximum * 1000, 3),
            })
        return rows


class ZipfChooser:
    """Zipf-skewed choice over ``n`` items (item 0 is the most popular)."""

    def __init__(self, n: int, theta: float = 0.99, seed: int = 42):
        if n <= 0:
            raise ValueError("n must be positive")
        self._n = n
        ranks = np.arange(1, n + 1, dtype=float)
        weights = 1.0 / np.power(ranks, theta)
        self._probabilities = weights / weights.sum()
        # ``Generator.choice(n, p=...)`` re-validates and re-accumulates the
        # probability vector on every draw.  Precomputing the CDF and
        # inverting one uniform sample reproduces choice() exactly (same
        # searchsorted over the same cumulative weights, same single draw
        # from the bit stream), so seeded traffic is unchanged.
        self._cdf = self._probabilities.cumsum()
        self._cdf /= self._cdf[-1]
        self._rng = np.random.default_rng(seed)

    def choose(self) -> int:
        return int(self._cdf.searchsorted(self._rng.random(), side="right"))

    def choose_many(self, count: int) -> list[int]:
        """*count* draws as one vectorized batch.

        ``Generator.random(count)`` consumes exactly the same bit-stream
        positions as *count* successive scalar ``random()`` calls, and the
        vectorized ``searchsorted`` inverts each uniform against the same
        CDF -- so the returned schedule is element-for-element identical to
        calling :meth:`choose` *count* times, at a fraction of the cost.
        Workload drivers precompute their per-round/per-run operation
        schedules through this and replay them.
        """

        if count <= 0:
            return []
        draws = self._cdf.searchsorted(self._rng.random(count), side="right")
        return draws.astype(int).tolist()


class UniformChooser:
    """Uniform choice over ``n`` items (kept API-compatible with ZipfChooser)."""

    def __init__(self, n: int, seed: int = 42):
        self._n = n
        self._rng = random.Random(seed)

    def choose(self) -> int:
        return self._rng.randrange(self._n)

    def choose_many(self, count: int) -> list[int]:
        """*count* draws in call order (``random.Random`` has no vector API,
        but precomputing the schedule still hoists the per-operation call
        out of the measured loop)."""

        randrange = self._rng.randrange
        n = self._n
        return [randrange(n) for _ in range(count)]


def make_content(size: int, tag: str = "x", version: int = 0) -> bytes:
    """Deterministic file content of exactly *size* bytes."""

    header = f"[{tag} v{version}] ".encode("utf-8")
    if size <= len(header):
        return header[:size]
    body = (tag.encode("utf-8") or b"x") * ((size - len(header)) // max(1, len(tag)) + 1)
    return (header + body)[:size]
